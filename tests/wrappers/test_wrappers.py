"""Tests of the wrapper classes bridging services and WebdamLog relations."""

import pytest

from repro.core.facts import Fact
from repro.runtime.peer import Peer
from repro.runtime.system import WebdamLogSystem
from repro.wrappers.base import PseudoPeerWrapper, RelationWatchingWrapper, Wrapper
from repro.wrappers.dropbox import DropboxService, DropboxWrapper
from repro.wrappers.email import EmailService, EmailWrapper
from repro.wrappers.facebook import (
    FacebookGroupWrapper,
    FacebookService,
    FacebookUserWrapper,
)
from repro.wrappers.registry import WrapperRegistry


class TestFacebookUserWrapper:
    def test_exports_friends_and_pictures(self):
        service = FacebookService()
        service.add_user("Emilien")
        service.add_user("Jules")
        service.add_friendship("Emilien", "Jules")
        service.post_photo("Emilien", "sea.jpg", "0101")

        system = WebdamLogSystem()
        fb_peer = system.add_peer("EmilienFB")
        wrapper = FacebookUserWrapper(service, "Emilien", peer_name="EmilienFB")
        fb_peer.attach_wrapper(wrapper)
        system.step()

        friends = fb_peer.query("friends")
        pictures = fb_peer.query("pictures")
        assert friends == (Fact("friends", "EmilienFB", ("Emilien", "Jules")),)
        assert len(pictures) == 1
        assert pictures[0].values[1] == "Emilien"

    def test_rules_can_read_wrapper_relations(self):
        service = FacebookService()
        service.add_user("Emilien")
        service.add_user("Jules")
        service.add_friendship("Emilien", "Jules")

        system = WebdamLogSystem()
        fb_peer = system.add_peer("EmilienFB")
        fb_peer.attach_wrapper(FacebookUserWrapper(service, "Emilien", peer_name="EmilienFB"))
        me = system.add_peer("Emilien")
        me.add_rule("friendNames@Emilien($f) :- friends@EmilienFB($me, $f)")
        system.converge()
        assert me.query("friendNames") == (Fact("friendNames", "Emilien", ("Jules",)),)


class TestFacebookGroupWrapper:
    def test_photos_posted_into_group_become_facts(self):
        service = FacebookService()
        service.add_user("Emilien")
        service.create_group("sigmod")
        service.join_group("sigmod", "Emilien")
        service.post_photo("Emilien", "sea.jpg", "0101", group="sigmod")

        system = WebdamLogSystem()
        group = system.add_peer("SigmodFB")
        group.attach_wrapper(FacebookGroupWrapper(service, "sigmod", peer_name="SigmodFB"))
        system.step()
        assert len(group.query("pictures")) == 1

    def test_facts_inserted_by_peers_are_posted_to_group(self):
        service = FacebookService()
        system = WebdamLogSystem()
        group = system.add_peer("SigmodFB")
        group.attach_wrapper(FacebookGroupWrapper(service, "sigmod", peer_name="SigmodFB"))
        publisher = system.add_peer("sigmod")
        publisher.insert_fact(Fact("pictures", "SigmodFB", (5, "sea.jpg", "Emilien", "01")))
        system.converge()
        photos = service.photos_in_group("sigmod")
        assert len(photos) == 1
        assert photos[0].owner == "Emilien"

    def test_comments_and_tags_exported(self):
        service = FacebookService()
        service.add_user("Emilien")
        service.create_group("sigmod")
        service.join_group("sigmod", "Emilien")
        photo = service.post_photo("Emilien", "sea.jpg", "0", group="sigmod")
        service.add_comment(photo.photo_id, "Jules", "great")
        service.add_tag(photo.photo_id, "Julia")

        system = WebdamLogSystem()
        group = system.add_peer("SigmodFB")
        group.attach_wrapper(FacebookGroupWrapper(service, "sigmod", peer_name="SigmodFB"))
        system.step()
        assert len(group.query("comments")) == 1
        assert len(group.query("tags")) == 1


class TestEmailWrapper:
    def test_facts_in_email_relation_are_sent(self):
        service = EmailService()
        peer = Peer("Jules")
        peer.attach_wrapper(EmailWrapper(service))
        peer.insert_fact(Fact("email", "Jules", ("Emilien", "sea.jpg", 1, "Jules")))
        peer.run_stage()
        assert service.sent_count == 1
        inbox = service.inbox("Emilien@wepic.example")
        assert len(inbox) == 1
        assert "sea.jpg" in inbox[0].body
        # The outbox relation is consumed.
        assert peer.query("email") == ()

    def test_each_fact_sent_exactly_once(self):
        service = EmailService()
        peer = Peer("Jules")
        peer.attach_wrapper(EmailWrapper(service))
        peer.insert_fact(Fact("email", "Jules", ("Emilien", "a.jpg", 1, "Jules")))
        peer.run_stage()
        peer.run_stage()
        assert service.sent_count == 1

    def test_explicit_address_kept(self):
        service = EmailService()
        peer = Peer("Jules")
        peer.attach_wrapper(EmailWrapper(service, sender_address="jules@conference.org"))
        peer.insert_fact(Fact("email", "Jules", ("emilien@inria.fr", "a.jpg", 1, "Jules")))
        peer.run_stage()
        message = service.inbox("emilien@inria.fr")[0]
        assert message.sender == "jules@conference.org"


class TestDropboxWrapper:
    def test_service_files_become_facts(self):
        service = DropboxService()
        service.upload("Jules", "/photos/sea.jpg", "sea.jpg", 64)
        system = WebdamLogSystem()
        box = system.add_peer("JulesDropbox")
        box.attach_wrapper(DropboxWrapper(service, "Jules", peer_name="JulesDropbox"))
        system.step()
        files = box.query("files")
        assert files == (Fact("files", "JulesDropbox", ("/photos/sea.jpg", "sea.jpg", 64)),)

    def test_facts_pushed_back_to_service(self):
        service = DropboxService()
        system = WebdamLogSystem()
        box = system.add_peer("JulesDropbox")
        box.attach_wrapper(DropboxWrapper(service, "Jules", peer_name="JulesDropbox"))
        uploader = system.add_peer("Jules")
        uploader.insert_fact(Fact("files", "JulesDropbox", ("/backup/a.jpg", "a.jpg", 12)))
        system.converge()
        assert service.get("Jules", "/backup/a.jpg") is not None


class TestWrapperBase:
    def test_base_wrapper_hooks_are_noops(self):
        wrapper = Wrapper()
        peer = Peer("alice")
        peer.attach_wrapper(wrapper)
        assert wrapper.peer is peer
        wrapper.before_stage(peer)
        wrapper.after_stage(peer, None)

    def test_pseudo_peer_wrapper_requires_overrides(self):
        wrapper = PseudoPeerWrapper()
        with pytest.raises(NotImplementedError):
            wrapper.service_facts()
        with pytest.raises(NotImplementedError):
            wrapper.push_to_service(Fact("r", "p", ()))

    def test_relation_watching_wrapper_requires_handle_fact(self):
        wrapper = RelationWatchingWrapper()
        with pytest.raises(NotImplementedError):
            wrapper.handle_fact(None, Fact("r", "p", ()))


class TestWrapperRegistry:
    def test_register_and_lookup(self):
        registry = WrapperRegistry()
        email = EmailWrapper(EmailService())
        facebook = FacebookGroupWrapper(FacebookService(), "sigmod")
        registry.register("Jules", email)
        registry.register("SigmodFB", facebook)
        assert registry.wrappers_of("Jules") == (email,)
        assert registry.first("SigmodFB", "facebook") is facebook
        assert registry.first("Jules", "facebook") is None
        assert registry.peers() == ("Jules", "SigmodFB")
        assert len(registry) == 2
        assert dict(iter(registry))  # iterable of (peer, wrapper) pairs
