"""Tests of the simulated external services (Facebook, email, Dropbox)."""

import pytest

from repro.core.errors import WrapperError
from repro.wrappers.dropbox import DropboxService
from repro.wrappers.email import EmailService
from repro.wrappers.facebook import FacebookService


class TestFacebookService:
    def test_users_and_friends(self):
        service = FacebookService()
        service.add_user("Emilien")
        service.add_user("Jules")
        service.add_friendship("Emilien", "Jules")
        assert service.friends_of("Emilien") == ("Jules",)
        assert service.friends_of("Jules") == ("Emilien",)

    def test_friendship_requires_accounts(self):
        service = FacebookService()
        service.add_user("Emilien")
        with pytest.raises(WrapperError):
            service.add_friendship("Emilien", "Ghost")

    def test_groups_and_membership(self):
        service = FacebookService()
        service.add_user("Emilien")
        service.create_group("sigmod")
        service.join_group("sigmod", "Emilien")
        assert service.group_members("sigmod") == ("Emilien",)
        assert service.is_member("sigmod", "Emilien")
        with pytest.raises(WrapperError):
            service.join_group("nope", "Emilien")
        with pytest.raises(WrapperError):
            service.join_group("sigmod", "Ghost")

    def test_photo_posting_and_lookup(self):
        service = FacebookService()
        service.add_user("Emilien")
        photo = service.post_photo("Emilien", "sea.jpg", "0101")
        assert service.photo(photo.photo_id) == photo
        assert service.photos_of("Emilien") == (photo,)
        assert service.photo_count() == 1

    def test_group_posting_requires_membership(self):
        service = FacebookService()
        service.add_user("Emilien")
        service.create_group("sigmod")
        with pytest.raises(WrapperError):
            service.post_photo("Emilien", "sea.jpg", "0101", group="sigmod")
        service.join_group("sigmod", "Emilien")
        photo = service.post_photo("Emilien", "sea.jpg", "0101", group="sigmod")
        assert service.photos_in_group("sigmod") == (photo,)

    def test_posting_without_membership_allowed_when_requested(self):
        service = FacebookService()
        service.add_user("Outsider")
        service.create_group("sigmod")
        photo = service.post_photo("Outsider", "x.jpg", "1", group="sigmod",
                                   require_membership=False)
        assert photo in service.photos_in_group("sigmod")

    def test_explicit_photo_id_collision_resolved(self):
        service = FacebookService()
        service.add_user("Emilien")
        first = service.post_photo("Emilien", "a.jpg", "0", photo_id=7)
        second = service.post_photo("Emilien", "b.jpg", "0", photo_id=7)
        assert first.photo_id == 7
        assert second.photo_id != 7

    def test_comments_and_tags(self):
        service = FacebookService()
        service.add_user("Emilien")
        photo = service.post_photo("Emilien", "sea.jpg", "0101")
        service.add_comment(photo.photo_id, "Jules", "nice shot")
        service.add_tag(photo.photo_id, "Julia")
        assert service.comments_on(photo.photo_id)[0].text == "nice shot"
        assert service.tags_on(photo.photo_id)[0].tagged_user == "Julia"
        assert len(service.all_comments()) == 1
        assert len(service.all_tags()) == 1
        with pytest.raises(WrapperError):
            service.add_comment(999, "Jules", "lost")
        with pytest.raises(WrapperError):
            service.add_tag(999, "Jules")


class TestEmailService:
    def test_send_and_inbox(self):
        service = EmailService()
        message = service.send("jules@wepic.example", "emilien@wepic.example",
                               "pictures", "sea.jpg")
        assert message.message_id == 1
        assert service.inbox_size("emilien@wepic.example") == 1
        assert service.inbox("emilien@wepic.example")[0].subject == "pictures"
        assert service.sent_count == 1

    def test_register_and_addresses(self):
        service = EmailService()
        service.register("a@example")
        service.register("a@example")
        assert service.addresses() == ("a@example",)

    def test_empty_recipient_rejected(self):
        service = EmailService()
        with pytest.raises(WrapperError):
            service.send("a@example", "", "s", "b")


class TestDropboxService:
    def test_upload_get_delete(self):
        service = DropboxService()
        record = service.upload("Jules", "/photos/sea.jpg", "sea.jpg", 64)
        assert service.get("Jules", "/photos/sea.jpg") == record
        assert service.files_of("Jules") == (record,)
        assert service.delete("Jules", "/photos/sea.jpg")
        assert not service.delete("Jules", "/photos/sea.jpg")

    def test_upload_overwrites_same_path(self):
        service = DropboxService()
        service.upload("Jules", "/a.jpg", "a.jpg", 10)
        service.upload("Jules", "/a.jpg", "a.jpg", 99)
        assert service.get("Jules", "/a.jpg").size == 99
        assert len(service.files_of("Jules")) == 1

    def test_relative_path_rejected(self):
        service = DropboxService()
        with pytest.raises(WrapperError):
            service.upload("Jules", "a.jpg", "a.jpg", 1)

    def test_share_links(self):
        service = DropboxService()
        service.upload("Jules", "/a.jpg", "a.jpg", 1)
        link = service.share("Jules", "/a.jpg")
        assert link.startswith("https://")
        assert service.share("Jules", "/a.jpg") == link
        assert service.links_of("Jules") == (("/a.jpg", link),)
        with pytest.raises(WrapperError):
            service.share("Jules", "/missing.jpg")
