"""The virtual-clock gossip simulator: convergence, delivery, churn."""

import pytest

from repro.core.facts import Fact
from repro.net.membership import DEAD, LEFT
from repro.net.sim import SimulatedGossipNetwork
from repro.runtime.messages import FactMessage


def fact_message(sender, recipient, value="v"):
    return FactMessage(sender=sender, recipient=recipient,
                       inserted=frozenset({Fact("r", recipient, (value,))}))


def build(count, **kwargs):
    kwargs.setdefault("latency", 0.005)
    kwargs.setdefault("seed", 11)
    net = SimulatedGossipNetwork(**kwargs)
    for i in range(count):
        net.add_node(f"peer{i}")
    return net


def test_membership_converges_on_lossless_network():
    net = build(20)
    net.run(2.0)
    assert net.converged()
    view = net.membership_view("peer0")
    assert len(view) == 19


def test_point_to_point_delivery_across_the_mesh():
    net = build(15)
    net.run(1.5)
    net.submit("peer1", fact_message("peer1", "peer9"))
    net.run(1.0)
    delivered = net.drain("peer9")
    assert len(delivered) == 1
    assert delivered[0].sender == "peer1"


def test_delivery_survives_heavy_loss():
    net = build(15, drop_probability=0.2)
    net.run(2.0)
    for i in range(5):
        net.submit(f"peer{i}", fact_message(f"peer{i}", f"peer{(i + 7) % 15}",
                                            value=str(i)))
    net.run(2.5)  # anti-entropy repairs whatever the flood lost
    got = sum(len(net.drain(f"peer{(i + 7) % 15}")) for i in range(5))
    assert got == 5
    assert net.frames_dropped > 0  # the loss model actually fired


def test_graceful_leave_is_observed_as_left():
    net = build(8)
    net.run(1.5)
    net.remove_node("peer3", graceful=True)
    net.run(1.5)
    statuses = {name: net.membership_view(name).get("peer3")
                for name in net.nodes}
    assert set(statuses.values()) == {LEFT}


def test_crash_is_detected_as_dead_by_swim():
    net = build(6)
    net.run(1.5)
    net.remove_node("peer2", graceful=False)  # silent crash: no leave frame
    net.run(5.0)  # probes time out, suspicion expires
    statuses = {net.membership_view(name).get("peer2") for name in net.nodes}
    assert statuses == {DEAD}


def test_late_joiner_is_welcomed_into_membership():
    net = build(5)
    net.run(1.0)
    net.add_node("late")
    net.run(1.5)
    assert net.converged()
    assert len(net.membership_view("late")) == 5


def test_events_record_the_message_path():
    net = build(5)
    net.run(1.0)
    net.submit("peer0", fact_message("peer0", "peer3"))
    net.run(1.0)
    assert net.drain("peer3")
    sends = net.events.events(action="send", node="peer0")
    delivers = net.events.events(action="deliver", node="peer3")
    assert len(sends) == 1 and len(delivers) == 1
    assert sends[0]["envelope"] == delivers[0]["envelope"]


def test_duplicate_node_name_is_rejected():
    net = build(2)
    with pytest.raises(ValueError):
        net.add_node("peer0")


def test_deterministic_under_fixed_seed():
    def trace():
        net = build(10, drop_probability=0.1)
        net.run(1.0)
        net.submit("peer0", fact_message("peer0", "peer5"))
        net.run(1.0)
        return net.frames_sent, net.frames_dropped, len(net.drain("peer5"))

    first, second = trace(), trace()
    assert first == second
