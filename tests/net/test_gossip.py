"""Gossip buffer: dedupe, bounded retention, digests and anti-entropy sets."""

from repro.net.frames import EnvelopeFrame
from repro.net.gossip import GossipBuffer, GossipConfig, next_envelope_id


def envelope(i, origin="a"):
    return EnvelopeFrame(envelope_id=f"{origin}#{i}", origin=origin,
                         recipient="z", hops=0, message={"kind": "x"})


def test_observe_dedupes_by_id():
    buffer = GossipBuffer()
    e = envelope(1)
    assert buffer.observe(e) is True
    assert buffer.observe(e) is False
    assert len(buffer) == 1
    assert "a#1" in buffer


def test_buffer_evicts_oldest_beyond_capacity():
    buffer = GossipBuffer(GossipConfig(buffer_size=3))
    for i in range(5):
        buffer.observe(envelope(i))
    assert len(buffer) == 3
    assert "a#0" not in buffer and "a#1" not in buffer
    assert "a#4" in buffer


def test_digest_is_bounded_by_window():
    buffer = GossipBuffer(GossipConfig(digest_window=2, buffer_size=10))
    for i in range(5):
        buffer.observe(envelope(i))
    assert buffer.digest() == ("a#3", "a#4")


def test_missing_and_not_in_are_complements_over_the_window():
    buffer = GossipBuffer()
    for i in range(4):
        buffer.observe(envelope(i))
    offered = ("a#2", "a#3", "a#9")
    assert buffer.missing(offered) == ("a#9",)
    pushed = {e.envelope_id for e in buffer.not_in(offered)}
    assert pushed == {"a#0", "a#1"}


def test_take_skips_evicted_ids():
    buffer = GossipBuffer(GossipConfig(buffer_size=2))
    for i in range(4):
        buffer.observe(envelope(i))
    got = buffer.take(["a#0", "a#3"])
    assert [e.envelope_id for e in got] == ["a#3"]


def test_envelope_ids_are_unique_and_stamped_with_origin():
    ids = {next_envelope_id("alice") for _ in range(100)}
    assert len(ids) == 100
    assert all(i.startswith("alice#") for i in ids)
