"""The structured JSONL network event log."""

import json

from repro.net.events import NetEventLog, read_events


def test_emit_records_fields_in_memory():
    log = NetEventLog()
    log.emit("send", "alice", 1.25, envelope="alice#1", recipient="bob")
    log.emit("deliver", "bob", 1.50, envelope="alice#1")
    assert len(log) == 2
    event = log.events(action="send")[0]
    assert event["node"] == "alice"
    assert event["ts"] == 1.25
    assert event["envelope"] == "alice#1"
    assert event["recipient"] == "bob"


def test_filtering_by_action_and_node():
    log = NetEventLog()
    log.emit("send", "a", 0.0)
    log.emit("send", "b", 0.1)
    log.emit("drop", "a", 0.2)
    assert len(log.events(action="send")) == 2
    assert len(log.events(node="a")) == 2
    assert len(log.events(action="send", node="a")) == 1


def test_jsonl_file_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    with NetEventLog(path=str(path)) as log:
        log.emit("join", "alice", 0.0, address="127.0.0.1:1")
        log.emit("suspect", "alice", 2.0, peer="bob")
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["action"] == "join"
    replayed = read_events(str(path))
    assert [e["action"] for e in replayed] == ["join", "suspect"]
    assert replayed[1]["peer"] == "bob"


def test_file_only_mode_keeps_no_memory(tmp_path):
    path = tmp_path / "events.jsonl"
    log = NetEventLog(path=str(path), keep_in_memory=False)
    log.emit("send", "a", 0.0)
    assert len(log) == 0
    log.close()
    assert len(read_events(str(path))) == 1


def test_clear_returns_and_resets():
    log = NetEventLog()
    log.emit("send", "a", 0.0)
    cleared = log.clear()
    assert len(cleared) == 1
    assert len(log) == 0
