"""Sans-io GossipNode protocol logic: joins, probes, envelopes, anti-entropy."""

from repro.core.facts import Fact
from repro.net.frames import (
    DigestFrame,
    EnvelopeFrame,
    MemberUpdate,
    PingFrame,
    PullFrame,
)
from repro.net.gossip import GossipConfig
from repro.net.membership import ALIVE, DEAD, LEFT, SUSPECT, SwimConfig
from repro.net.node import GossipNode
from repro.runtime.messages import FactMessage


def node(name, seeds=(), **kwargs):
    return GossipNode(name, f"addr:{name}", seeds=seeds, rng_seed=1, **kwargs)


def deliver(sender_outputs, nodes, now):
    """Deliver every output frame to its destination node; returns follow-ups."""
    follow_ups = []
    for dest, _address, wire in sender_outputs:
        if dest in nodes:
            follow_ups.extend(nodes[dest].handle_frame(wire, now))
    return follow_ups


def fact_message(sender, recipient):
    return FactMessage(sender=sender, recipient=recipient,
                       inserted=frozenset({Fact("r", recipient, ("v",))}))


def test_start_sends_join_to_seeds():
    a = node("a", seeds=[("b", "addr:b"), ("c", "addr:c")])
    outputs = a.start(0.0)
    assert {dest for dest, _, _ in outputs} == {"b", "c"}
    assert all(wire["type"] == "join" for _, _, wire in outputs)


def test_join_is_welcomed_with_full_view_digest():
    b = node("b")
    b.membership.apply(MemberUpdate("x", ALIVE, 0, "addr:x"), 0.0)
    a = node("a", seeds=[("b", "addr:b")])
    join_outputs = a.start(0.0)
    welcome = deliver(join_outputs, {"b": b}, 0.1)
    assert b.membership.status_of("a") == ALIVE
    (dest, _addr, wire), = welcome
    assert dest == "a" and wire["type"] == "digest"
    # the welcome carries b's whole membership view, so a learns about x
    a.handle_frame(wire, 0.2)
    assert a.membership.knows("x")


def test_ping_is_acked_and_clears_probe():
    a = node("a", seeds=[("b", "addr:b")])
    b = node("b", seeds=[("a", "addr:a")])
    outputs = a.tick(1.0)  # the first probe interval has elapsed
    pings = [o for o in outputs if o[2]["type"] == "ping"]
    assert len(pings) == 1 and pings[0][0] == "b"
    acks = deliver(pings, {"b": b}, 1.01)
    assert acks[0][0] == "a" and acks[0][2]["type"] == "ack"
    deliver(acks, {"a": a}, 1.02)
    assert a._probes == {}
    assert a.membership.status_of("b") == ALIVE


def test_unanswered_probe_escalates_to_ping_req_then_suspect():
    swim = SwimConfig(ping_interval=0.2, ping_timeout=0.1,
                      ping_req_timeout=0.2, ping_req_fanout=1)
    a = node("a", seeds=[("b", "addr:b"), ("c", "addr:c")], swim=swim)
    outputs = a.tick(1.0)
    target = [o for o in outputs if o[2]["type"] == "ping"][0][0]
    # no ack arrives: the direct timeout triggers an indirect probe
    outputs = a.tick(1.15)
    ping_reqs = [o for o in outputs if o[2]["type"] == "ping-req"]
    assert len(ping_reqs) == 1
    assert ping_reqs[0][2]["target"] == target
    assert ping_reqs[0][0] != target
    # still no ack: the indirect timeout declares suspicion
    a.tick(1.40)
    assert a.membership.status_of(target) == SUSPECT


def test_ping_req_relays_ack_on_behalf_of_target():
    swim = SwimConfig(ping_interval=0.2, ping_timeout=0.1,
                      ping_req_timeout=0.5, ping_req_fanout=1)
    a = node("a", seeds=[("b", "addr:b"), ("c", "addr:c")], swim=swim)
    b = node("b", seeds=[("a", "addr:a"), ("c", "addr:c")], swim=swim)
    c = node("c", seeds=[("a", "addr:a"), ("b", "addr:b")], swim=swim)
    nodes = {"a": a, "b": b, "c": c}
    outputs = a.tick(1.0)
    target = [o for o in outputs if o[2]["type"] == "ping"][0][0]
    helper = "b" if target == "c" else "c"
    # drop the direct ping; escalate
    ping_reqs = a.tick(1.15)
    relayed_pings = deliver(ping_reqs, nodes, 1.16)  # helper pings target
    assert relayed_pings[0][0] == target
    relayed_acks = deliver(relayed_pings, nodes, 1.17)  # target acks helper
    final = deliver(relayed_acks, nodes, 1.18)  # helper forwards ack to a
    deliver(final, nodes, 1.19)
    assert a._probes == {}
    assert a.membership.status_of(target) == ALIVE


def test_suspect_expires_to_dead_via_tick():
    swim = SwimConfig(suspect_timeout=1.0)
    a = node("a", seeds=[("b", "addr:b")], swim=swim)
    a.membership.suspect("b", 0.0)
    a.tick(0.5)
    assert a.membership.status_of("b") == SUSPECT
    a.tick(1.5)
    assert a.membership.status_of("b") == DEAD


def test_submit_to_self_delivers_locally():
    a = node("a")
    outputs = a.submit(fact_message("a", "a"), 0.0)
    assert outputs == []
    assert [m.recipient for m in a.drain_inbox()] == ["a"]
    assert a.drain_inbox() == []  # drained exactly once


def test_envelope_routes_to_recipient_and_dedupes():
    a = node("a", seeds=[("b", "addr:b")])
    b = node("b", seeds=[("a", "addr:a")])
    outputs = a.submit(fact_message("a", "b"), 0.0)
    assert outputs[0][0] == "b"
    deliver(outputs, {"b": b}, 0.01)
    deliver(outputs, {"b": b}, 0.02)  # duplicate path: must not re-deliver
    assert len(b.drain_inbox()) == 1


def test_forwarding_stops_at_max_hops():
    gossip = GossipConfig(max_hops=2)
    a = node("a", seeds=[("b", "addr:b")], gossip=gossip)
    wire = EnvelopeFrame(envelope_id="x#1", origin="x", recipient="zzz",
                         hops=2, message={}).to_wire()
    assert a.handle_frame(wire, 0.0) == []  # TTL exhausted: not forwarded


def test_anti_entropy_pull_repairs_missing_envelope():
    a = node("a", seeds=[("b", "addr:b")])
    b = node("b", seeds=[("a", "addr:a")])
    # a holds an envelope destined to b that b never received (lost push)
    message = fact_message("a", "b")
    envelope = EnvelopeFrame(envelope_id="a#lost", origin="a", recipient="b",
                             hops=0, message=message.to_wire())
    a.buffer.observe(envelope)
    # b offers its (empty) digest; a answers by pushing what b lacks
    offer = DigestFrame(peer="b", ids=b.buffer.digest()).to_wire()
    pushed = a.handle_frame(offer, 1.0)
    assert [w["type"] for _, _, w in pushed] == ["envelope"]
    deliver(pushed, {"b": b}, 1.01)
    assert [m.message_id for m in b.drain_inbox()] == [message.message_id]


def test_digest_triggers_pull_for_unknown_ids():
    a = node("a", seeds=[("b", "addr:b")])
    offer = DigestFrame(peer="b", ids=("b#1", "b#2")).to_wire()
    outputs = a.handle_frame(offer, 0.0)
    pulls = [w for _, _, w in outputs if w["type"] == "pull"]
    assert pulls and set(pulls[0]["want"]) == {"b#1", "b#2"}


def test_pull_answers_with_stored_envelopes():
    a = node("a", seeds=[("b", "addr:b")])
    envelope = EnvelopeFrame(envelope_id="a#1", origin="a", recipient="z",
                             hops=1, message={})
    a.buffer.observe(envelope)
    outputs = a.handle_frame(PullFrame(peer="b", want=("a#1",)).to_wire(), 0.0)
    assert outputs[0][0] == "b"
    assert outputs[0][2]["id"] == "a#1"


def test_leave_announces_and_stops_ticking():
    a = node("a", seeds=[("b", "addr:b")])
    outputs = a.leave(1.0)
    assert outputs and all(w["type"] == "leave" for _, _, w in outputs)
    assert a.membership.members["a"].status == LEFT
    assert a.tick(10.0) == []


def test_piggybacked_updates_are_applied_before_dispatch():
    a = node("a", seeds=[("b", "addr:b")])
    wire = PingFrame(origin="b", seq=1, updates=(
        MemberUpdate("carol", ALIVE, 0, "addr:carol"),
    )).to_wire()
    a.handle_frame(wire, 0.0)
    assert a.membership.knows("carol")
