"""SWIM membership: incarnation precedence, suspicion, refutation, churn."""

from repro.net.frames import MemberUpdate
from repro.net.membership import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    MembershipTable,
    SwimConfig,
)


def table(now=0.0, **config):
    return MembershipTable("self", "addr:self", SwimConfig(**config), now=now)


def test_new_member_is_recorded_and_disseminated():
    t = table()
    assert t.apply(MemberUpdate("bob", ALIVE, 0, "addr:bob"), 0.0) == ALIVE
    assert t.routable_peers() == ["bob"]
    assert t.address_of("bob") == "addr:bob"
    assert any(u.peer == "bob" for u in t.piggyback())


def test_higher_incarnation_always_wins():
    t = table()
    t.apply(MemberUpdate("bob", SUSPECT, 2, "addr:bob"), 0.0)
    # alive at a *higher* incarnation refutes the suspicion...
    assert t.apply(MemberUpdate("bob", ALIVE, 3), 1.0) == ALIVE
    # ...but alive at the same incarnation does not resurrect it.
    assert t.apply(MemberUpdate("bob", ALIVE, 3), 2.0) is None
    assert t.status_of("bob") == ALIVE


def test_same_incarnation_precedence_orders_statuses():
    t = table()
    t.apply(MemberUpdate("bob", ALIVE, 1, "addr:bob"), 0.0)
    assert t.apply(MemberUpdate("bob", SUSPECT, 1), 1.0) == SUSPECT
    assert t.apply(MemberUpdate("bob", DEAD, 1), 2.0) == DEAD
    # stale alive/suspect at the same incarnation cannot undo dead
    assert t.apply(MemberUpdate("bob", ALIVE, 1), 3.0) is None
    assert t.apply(MemberUpdate("bob", SUSPECT, 1), 3.0) is None


def test_self_suspicion_is_refuted_by_incarnation_bump():
    t = table()
    assert t.incarnation == 0
    assert t.apply(MemberUpdate("self", SUSPECT, 0), 1.0) == "refuted"
    assert t.incarnation == 1
    # the refutation is queued for dissemination
    queued = t.piggyback()
    assert any(u.peer == "self" and u.status == ALIVE and u.incarnation == 1
               for u in queued)


def test_suspect_expires_to_dead_after_timeout():
    t = table(suspect_timeout=1.0)
    t.apply(MemberUpdate("bob", ALIVE, 0, "addr:bob"), 0.0)
    assert t.suspect("bob", 5.0) == SUSPECT
    assert t.expire_suspects(5.5) == []
    assert t.expire_suspects(6.0) == ["bob"]
    assert t.status_of("bob") == DEAD
    assert t.routable_peers() == []


def test_unknown_dead_member_leaves_a_tombstone():
    t = table()
    assert t.apply(MemberUpdate("ghost", DEAD, 4), 0.0) == DEAD
    # a stale alive arriving later must not resurrect the tombstone
    assert t.apply(MemberUpdate("ghost", ALIVE, 4), 1.0) is None
    assert t.status_of("ghost") == DEAD


def test_leave_bumps_incarnation_and_marks_left():
    t = table()
    update = t.leave(3.0)
    assert update.status == LEFT
    assert update.incarnation == 1
    assert t.members["self"].status == LEFT


def test_piggyback_budget_retires_updates():
    t = table(retransmit=2, piggyback_limit=8)
    t.apply(MemberUpdate("bob", ALIVE, 0, "addr:bob"), 0.0)
    assert len(t.piggyback()) == 1
    assert len(t.piggyback()) == 1
    assert t.piggyback() == ()  # budget of 2 exhausted
    assert t.pending_updates() == 0


def test_newer_assertion_replaces_queued_entry():
    t = table(retransmit=6)
    t.apply(MemberUpdate("bob", ALIVE, 0, "addr:bob"), 0.0)
    t.apply(MemberUpdate("bob", SUSPECT, 0), 1.0)
    queued = [u for u in t.piggyback() if u.peer == "bob"]
    assert queued == [MemberUpdate("bob", SUSPECT, 0, "addr:bob")]


def test_stale_update_still_teaches_missing_address():
    t = table()
    t.apply(MemberUpdate("bob", SUSPECT, 5), 0.0)  # no address known
    assert t.address_of("bob") is None
    assert t.apply(MemberUpdate("bob", ALIVE, 2, "addr:bob"), 1.0) is None
    assert t.address_of("bob") == "addr:bob"


def test_full_view_covers_every_member():
    t = table()
    t.apply(MemberUpdate("bob", ALIVE, 0, "addr:bob"), 0.0)
    t.apply(MemberUpdate("carol", DEAD, 1), 0.0)
    view = {u.peer: u.status for u in t.full_view()}
    assert view == {"self": ALIVE, "bob": ALIVE, "carol": DEAD}
