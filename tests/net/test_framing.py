"""Length-prefixed JSON framing: exact round trips and malformed input."""

import asyncio
import struct

import pytest

from repro.net.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    decode_body,
    encode_frame,
    read_frame,
)


def test_encode_decode_round_trip():
    payload = {"type": "ping", "origin": "alice", "seq": 3, "nested": [1, 2]}
    frame = encode_frame(payload)
    length = struct.unpack(">I", frame[:4])[0]
    assert length == len(frame) - 4
    assert decode_body(frame[4:]) == payload


def test_encode_rejects_oversized_payload():
    with pytest.raises(FrameError):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_decode_rejects_non_object_body():
    with pytest.raises(FrameError):
        decode_body(b"[1, 2, 3]")
    with pytest.raises(FrameError):
        decode_body(b"not json at all")


def test_decoder_handles_arbitrary_chunk_boundaries():
    payloads = [{"i": i, "pad": "x" * i} for i in range(20)]
    stream = b"".join(encode_frame(p) for p in payloads)
    for chunk_size in (1, 3, 7, 100, len(stream)):
        decoder = FrameDecoder()
        received = []
        for offset in range(0, len(stream), chunk_size):
            received.extend(decoder.feed(stream[offset:offset + chunk_size]))
        assert received == payloads
        assert decoder.pending_bytes == 0


def test_decoder_rejects_oversized_length_prefix():
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x")


def test_decoder_keeps_partial_frame_buffered():
    frame = encode_frame({"a": 1})
    decoder = FrameDecoder()
    assert decoder.feed(frame[:5]) == []
    assert decoder.pending_bytes == 5
    assert decoder.feed(frame[5:]) == [{"a": 1}]


def _run(coroutine):
    return asyncio.run(coroutine)


def test_read_frame_round_trip_and_clean_eof():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame({"hello": "world"}))
        reader.feed_eof()
        first = await read_frame(reader)
        second = await read_frame(reader)
        return first, second

    first, second = _run(scenario())
    assert first == {"hello": "world"}
    assert second is None  # clean EOF between frames


def test_read_frame_raises_on_truncated_body():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame({"hello": "world"})[:-3])
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(FrameError):
        _run(scenario())


def test_read_frame_raises_on_truncated_prefix():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"\x00\x00")
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(FrameError):
        _run(scenario())
