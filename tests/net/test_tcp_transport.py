"""The asyncio TCP transport behind ``system().transport("tcp")``.

These tests open real localhost sockets.  They keep peer counts small and
rely on the bounded-quiet-period convergence mode for determinism.
"""

import time

import pytest

from repro.api import system
from repro.core.errors import TransportError
from repro.core.facts import Fact
from repro.net.membership import ALIVE, LEFT
from repro.net.tcp import TcpTransport
from repro.runtime.messages import FactMessage

JULES = '''
collection extensional persistent pictures@jules(pic);
collection extensional persistent friends@jules(name);
fact friends@jules("emilien");
fact pictures@jules("p1");
fact pictures@jules("p2");
rule album@emilien($pic) :- pictures@jules($pic);
'''

EMILIEN = '''
collection extensional persistent album@emilien(pic);
'''


def wait_for(predicate, timeout=8.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_register_assigns_real_addresses():
    with TcpTransport(seed=1) as transport:
        transport.register("alice")
        transport.register("bob")
        assert transport.peers() == ("alice", "bob")
        address = transport.address_of("alice")
        host, _, port = address.rpartition(":")
        assert host == "127.0.0.1" and int(port) > 0
        assert transport.is_registered("alice")
        assert not transport.is_registered("carol")


def test_membership_converges_between_peers():
    with TcpTransport(seed=1) as transport:
        for name in ("alice", "bob", "carol"):
            transport.register(name)
        assert wait_for(lambda: all(
            transport.membership_view(name).get(other) == ALIVE
            for name in ("alice", "bob", "carol")
            for other in ("alice", "bob", "carol") if other != name))


def test_message_travels_over_real_sockets():
    with TcpTransport(seed=1) as transport:
        transport.register("alice")
        transport.register("bob")
        message = FactMessage(sender="alice", recipient="bob",
                              inserted=frozenset({Fact("r", "bob", ("x",))}))
        assert transport.send(message) is True
        assert transport.stats.messages_sent == 1
        received = []
        assert wait_for(lambda: received.extend(transport.receive("bob"))
                        or received)
        assert received[0].message_id == message.message_id
        assert transport.stats.messages_delivered == 1


def test_unknown_recipient_raises_transport_error():
    with TcpTransport(seed=1) as transport:
        transport.register("alice")
        with pytest.raises(TransportError):
            transport.send(FactMessage(sender="alice", recipient="facebook"))
        with pytest.raises(TransportError):
            transport.send(FactMessage(sender="ghost", recipient="alice"))


def test_unregister_announces_leave():
    with TcpTransport(seed=1) as transport:
        transport.register("alice")
        transport.register("bob")
        assert wait_for(
            lambda: transport.membership_view("alice").get("bob") == ALIVE)
        transport.unregister("bob")
        assert transport.peers() == ("alice",)
        assert wait_for(
            lambda: transport.membership_view("alice").get("bob") == LEFT)


def test_event_log_written_to_jsonl(tmp_path):
    path = tmp_path / "net.jsonl"
    with TcpTransport(seed=1, log_path=str(path)) as transport:
        transport.register("alice")
        transport.register("bob")
        message = FactMessage(sender="alice", recipient="bob",
                              inserted=frozenset({Fact("r", "bob", ("x",))}))
        transport.send(message)
        assert wait_for(lambda: transport.receive("bob"))
    from repro.net.events import read_events
    actions = {event["action"] for event in read_events(str(path))}
    assert {"register", "send", "deliver"} <= actions


def test_wepic_scenario_matches_inmemory_with_churn():
    """The acceptance scenario: 3 peers over real TCP, same snapshots as
    in-memory, with a peer joining and leaving mid-run."""

    def run(use_tcp):
        builder = (system()
                   .peer("jules").program(JULES)
                   .peer("emilien").program(EMILIEN)
                   .done())
        if use_tcp:
            builder = builder.transport("tcp", seed=3)
        deployment = builder.build()
        with deployment:
            summary = deployment.converge()
            assert summary.converged
            # mid-run join: a third peer subscribes to jules's pictures
            deployment.add_peer("patrick", program=(
                'collection extensional persistent album@patrick(pic);'))
            deployment.peer("jules").add_rule(
                'rule album@patrick($p) :- pictures@jules($p);')
            assert deployment.converge().converged
            assert deployment.snapshot()["patrick"]
            # mid-run leave, then more traffic
            deployment.remove_peer("patrick")
            deployment.peer("jules").insert('pictures@jules("p3")')
            assert deployment.converge().converged
            return deployment.snapshot()

    assert run(use_tcp=False) == run(use_tcp=True)


def test_tcp_transport_with_async_scheduler():
    deployment = (system()
                  .scheduler("async")
                  .transport("tcp", seed=5)
                  .peer("jules").program(JULES)
                  .peer("emilien").program(EMILIEN)
                  .build())
    with deployment:
        summary = deployment.converge()
        assert summary.converged
        album = deployment.snapshot()["emilien"]["album@emilien"]
        assert {fact.values[0] for fact in album} == {"p1", "p2"}


def test_builder_rejects_inmemory_knobs_with_tcp():
    from repro.api import BuildError
    with pytest.raises(BuildError):
        system().latency(2).transport("tcp").build()


def test_builder_rejects_unknown_transport_name():
    from repro.api import BuildError
    with pytest.raises(BuildError):
        system().transport("carrier-pigeon")
