"""The provenance subsystem riding the engine's incremental evaluation paths.

A :class:`ProvenanceTracker` no longer pins the engine to full recomputes:
delta stages append derivations as rules fire, rederive stages retract and
re-record the affected closure, and the graph always reflects the current
derivability state (garbage-collecting derivations of retracted facts).
"""

from repro.api import system
from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact
from repro.provenance.graph import ProvenanceTracker

TC_PROGRAM = """
collection extensional persistent link@p(src, dst);
collection intensional tc@p(src, dst);
rule tc@p($x, $y) :- link@p($x, $y);
rule tc@p($x, $z) :- link@p($x, $y), tc@p($y, $z);
"""


def tracked_engine(program: str = TC_PROGRAM) -> WebdamLogEngine:
    engine = WebdamLogEngine("p")
    engine.provenance = ProvenanceTracker()
    engine.load_program(program)
    return engine


class TestDeltaStages:
    def test_insertions_recorded_on_the_delta_path(self):
        engine = tracked_engine()
        engine.run_to_quiescence()
        engine.insert_fact(Fact("link", "p", (1, 2)))
        result = engine.run_stage()
        assert result.evaluation_path == "delta"
        assert engine.provenance.why(Fact("tc", "p", (1, 2)))

    def test_transitive_derivations_recorded_across_delta_stages(self):
        engine = tracked_engine()
        for edge in ((1, 2), (2, 3)):
            engine.insert_fact(Fact("link", "p", edge))
            engine.run_to_quiescence()
        tc13 = Fact("tc", "p", (1, 3))
        assert engine.provenance.graph.is_derived(tc13)
        assert engine.provenance.base_relations(tc13) == frozenset({"link@p"})
        lineage = engine.provenance.lineage(tc13)
        assert Fact("link", "p", (1, 2)) in lineage
        assert Fact("link", "p", (2, 3)) in lineage

    def test_eval_counters_show_incremental_paths(self):
        engine = tracked_engine()
        engine.run_to_quiescence()
        for i in range(4):
            engine.insert_fact(Fact("link", "p", (i, i + 1)))
            engine.run_to_quiescence()
        engine.delete_fact(Fact("link", "p", (0, 1)))
        engine.run_to_quiescence()
        counters = engine.eval_counters
        assert counters["stages_delta"] >= 4
        assert counters["stages_rederive"] >= 1
        assert counters["stages_full"] == 1  # only the program load


class TestRetraction:
    def test_deleted_base_fact_kills_its_derivations(self):
        engine = tracked_engine()
        for edge in ((1, 2), (2, 3), (3, 4)):
            engine.insert_fact(Fact("link", "p", edge))
        engine.run_to_quiescence()
        graph = engine.provenance.graph
        assert graph.is_derived(Fact("tc", "p", (1, 4)))
        engine.delete_fact(Fact("link", "p", (2, 3)))
        engine.run_to_quiescence()
        assert not graph.is_derived(Fact("tc", "p", (1, 4)))
        assert not graph.is_derived(Fact("tc", "p", (2, 3)))
        assert graph.is_derived(Fact("tc", "p", (1, 2)))
        assert graph.is_derived(Fact("tc", "p", (3, 4)))

    def test_graph_does_not_leak_under_churn(self):
        """Retracted facts drop their derivations instead of accumulating."""
        engine = tracked_engine()
        engine.insert_fact(Fact("link", "p", (0, 1)))
        engine.run_to_quiescence()
        baseline = len(engine.provenance.graph)
        for _ in range(10):
            engine.insert_fact(Fact("link", "p", (1, 2)))
            engine.run_to_quiescence()
            engine.delete_fact(Fact("link", "p", (1, 2)))
            engine.run_to_quiescence()
        assert len(engine.provenance.graph) == baseline
        assert set(engine.provenance.graph.facts()) == {Fact("tc", "p", (0, 1))}

    def test_graph_matches_derived_store_after_churn(self):
        engine = tracked_engine()
        operations = [("+", (0, 1)), ("+", (1, 2)), ("+", (2, 0)),
                      ("-", (1, 2)), ("+", (1, 0)), ("-", (0, 1))]
        for op, edge in operations:
            if op == "+":
                engine.insert_fact(Fact("link", "p", edge))
            else:
                engine.delete_fact(Fact("link", "p", edge))
            engine.run_to_quiescence(max_stages=30)
        derived = set(engine.query("tc"))
        tracked = set(engine.provenance.graph.facts())
        assert tracked == derived


class TestCrossPeerShipping:
    def build(self):
        return (system()
                .provenance()
                .peer("hub").program("""
                    collection extensional persistent follows@hub(who);
                    collection intensional wall@hub(id);
                    rule wall@hub($id) :- follows@hub($f), posts@$f($id);
                """)
                .peer("left").program(
                    "collection extensional persistent posts@left(id);")
                .build())

    def test_lineage_crosses_peer_boundaries(self):
        deployment = self.build()
        deployment.peer("hub").insert('follows@hub("left")')
        deployment.peer("left").insert("posts@left(7)")
        deployment.converge()
        explanation = deployment.explain("hub", "wall@hub(7)")
        assert explanation.derived
        assert explanation.base_relations == frozenset({"posts@left"})
        assert explanation.peers == frozenset({"hub", "left"})

    def test_remote_retraction_drops_shipped_derivations(self):
        deployment = self.build()
        deployment.peer("hub").insert('follows@hub("left")')
        deployment.peer("left").insert("posts@left(7)")
        deployment.converge()
        deployment.peer("left").delete("posts@left(7)")
        deployment.converge()
        assert deployment.peer("hub").query("wall").facts() == ()
        assert not deployment.explain("hub", "wall@hub(7)").derived

    def test_explain_requires_provenance(self):
        deployment = (system().peer("solo").build())
        try:
            deployment.explain("solo", "anything@solo(1)")
        except RuntimeError as exc:
            assert "provenance" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("explain without provenance should raise")

    def test_each_derivation_ships_once(self):
        """Updates carry only new derivations, not the whole closure again."""
        deployment = self.build()
        deployment.peer("hub").insert('follows@hub("left")')
        deployment.peer("left").insert("posts@left(0)")
        deployment.converge()
        hub_graph = deployment.runtime.peer("hub").provenance.graph
        first = len(hub_graph)
        shipped = deployment.stats.payload_items
        for i in range(1, 6):
            deployment.peer("left").insert(f"posts@left({i})")
            deployment.converge()
        # One wall fact + one shipped derivation per insert: payload growth
        # is linear in the new facts, not in the accumulated closure.
        growth = deployment.stats.payload_items - shipped
        assert len(hub_graph) == first + 5
        assert growth <= 5 * 3  # per insert: post ack + wall fact + derivation

    def test_alternative_derivations_reach_the_receiver(self):
        """A new way to derive an already-shipped fact ships on its own."""
        deployment = (system()
                      .provenance()
                      .peer("alice").program("""
                          collection extensional persistent s1@alice(x);
                          collection extensional persistent s2@alice(x);
                          rule wall@bob($x) :- s1@alice($x);
                          rule wall@bob($x) :- s2@alice($x);
                      """)
                      .peer("bob").program(
                          "collection intensional wall@bob(x);")
                      .build())
        deployment.peer("alice").insert("s1@alice(1)")
        deployment.converge()
        assert len(deployment.explain("bob", "wall@bob(1)").why) == 1
        # wall@bob(1) is unchanged at alice, but the new derivation must
        # still reach bob — his ACL decisions depend on the full base set.
        deployment.peer("alice").insert("s2@alice(1)")
        deployment.converge()
        explanation = deployment.explain("bob", "wall@bob(1)")
        assert len(explanation.why) == 2
        assert explanation.base_relations == frozenset({"s1@alice", "s2@alice"})
        alice_view = deployment.explain("alice", "wall@bob(1)")
        assert set(explanation.why) == set(alice_view.why)

    def test_reshipped_after_retraction(self):
        """A deletion resets the memo so re-insertions re-ship their lineage."""
        deployment = self.build()
        deployment.peer("hub").insert('follows@hub("left")')
        deployment.peer("left").insert("posts@left(1)")
        deployment.converge()
        deployment.peer("left").delete("posts@left(1)")
        deployment.converge()
        assert not deployment.explain("hub", "wall@hub(1)").derived
        deployment.peer("left").insert("posts@left(1)")
        deployment.converge()
        explanation = deployment.explain("hub", "wall@hub(1)")
        assert explanation.derived
        assert explanation.base_relations == frozenset({"posts@left"})

    def test_peer_handle_explain(self):
        deployment = self.build()
        deployment.peer("hub").insert('follows@hub("left")')
        deployment.peer("left").insert("posts@left(3)")
        deployment.converge()
        explanation = deployment.peer("hub").explain("wall@hub(3)")
        assert explanation.derived
