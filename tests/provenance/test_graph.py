"""Tests of provenance recording, queries and incremental maintenance."""

import pytest

from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact
from repro.provenance.graph import Derivation, ProvenanceGraph, ProvenanceTracker


def base(relation, peer, *values):
    return Fact(relation, peer, values)


class TestProvenanceGraph:
    def setup_method(self):
        self.graph = ProvenanceGraph()
        self.b1 = base("edge", "p", 1, 2)
        self.b2 = base("edge", "p", 2, 3)
        self.p12 = base("path", "p", 1, 2)
        self.p23 = base("path", "p", 2, 3)
        self.p13 = base("path", "p", 1, 3)
        self.graph.add(Derivation(self.p12, "r1", (self.b1,)))
        self.graph.add(Derivation(self.p23, "r1", (self.b2,)))
        self.graph.add(Derivation(self.p13, "r2", (self.p12, self.b2)))

    def test_derivations_of(self):
        assert len(self.graph.derivations_of(self.p13)) == 1
        assert self.graph.is_derived(self.p12)
        assert not self.graph.is_derived(self.b1)

    def test_duplicate_derivations_ignored(self):
        before = len(self.graph)
        self.graph.add(Derivation(self.p12, "r1", (self.b1,)))
        assert len(self.graph) == before

    def test_alternative_derivations_kept(self):
        self.graph.add(Derivation(self.p13, "r9", (self.b1, self.b2)))
        assert len(self.graph.why(self.p13)) == 2

    def test_why_provenance(self):
        why = self.graph.why(self.p13)
        assert frozenset({self.p12, self.b2}) in why

    def test_lineage_is_transitive(self):
        lineage = self.graph.lineage(self.p13)
        assert self.b1 in lineage
        assert self.b2 in lineage
        assert self.p12 in lineage
        assert self.p13 not in lineage

    def test_base_facts_and_relations(self):
        assert self.graph.base_facts(self.p13) == frozenset({self.b1, self.b2})
        assert self.graph.base_relations(self.p13) == frozenset({"edge@p"})
        # A non-derived fact is its own base.
        assert self.graph.base_facts(self.b1) == frozenset({self.b1})

    def test_depends_on_peer(self):
        assert self.graph.depends_on_peer(self.p13, "p")
        assert not self.graph.depends_on_peer(self.p13, "q")

    def test_clear(self):
        self.graph.clear()
        assert len(self.graph) == 0
        assert self.graph.facts() == ()

    def test_version_bumps_on_mutation(self):
        before = self.graph.version
        self.graph.add(Derivation(self.p13, "r9", (self.b1, self.b2)))
        assert self.graph.version > before
        duplicate = self.graph.version
        self.graph.add(Derivation(self.p13, "r9", (self.b1, self.b2)))
        assert self.graph.version == duplicate  # duplicates do not mutate


class TestSupportCounting:
    """A derivation dies with any support; a fact dies with its last derivation."""

    def setup_method(self):
        self.graph = ProvenanceGraph()
        self.b1 = Fact("edge", "p", (1, 2))
        self.b2 = Fact("edge", "p", (2, 3))
        self.p12 = Fact("path", "p", (1, 2))
        self.p23 = Fact("path", "p", (2, 3))
        self.p13 = Fact("path", "p", (1, 3))
        self.graph.add(Derivation(self.p12, "r1", (self.b1,)))
        self.graph.add(Derivation(self.p23, "r1", (self.b2,)))
        self.graph.add(Derivation(self.p13, "r2", (self.p12, self.b2)))

    def test_remove_support_cascades(self):
        removed = self.graph.remove_support(self.b1)
        # p12 lost its only derivation and died; p13 lost its derivation too.
        assert removed == 2
        assert not self.graph.is_derived(self.p12)
        assert not self.graph.is_derived(self.p13)
        assert self.graph.is_derived(self.p23)
        assert len(self.graph) == 1

    def test_alternative_derivation_keeps_fact_alive(self):
        self.graph.add(Derivation(self.p13, "r9", (self.b2,)))
        self.graph.remove_support(self.b1)
        # p13 had an alternative derivation not using b1: it survives.
        assert self.graph.is_derived(self.p13)
        assert self.graph.why(self.p13) == (frozenset({self.b2}),)

    def test_retract_fact_drops_own_and_supported_derivations(self):
        self.graph.retract_fact(self.p12)
        assert not self.graph.is_derived(self.p12)
        assert not self.graph.is_derived(self.p13)
        assert self.graph.derivation_count(self.p23) == 1

    def test_retract_predicates_scoped_clear(self):
        removed = self.graph.retract_predicates({"path@p"})
        assert removed == 3
        assert len(self.graph) == 0
        # Base facts were never in the graph; nothing to invalidate.
        assert self.graph.base_facts(self.b1) == frozenset({self.b1})

    def test_lineage_index_invalidated_on_mutation(self):
        assert self.graph.base_relations(self.p13) == frozenset({"edge@p"})
        other = Fact("extra", "p", (9,))
        self.graph.add(Derivation(self.p12, "r7", (other,)))
        # The new alternative derivation of p12 must show up in p13's bases.
        assert self.graph.base_relations(self.p13) == frozenset({"edge@p", "extra@p"})
        self.graph.remove_support(other)
        assert self.graph.base_relations(self.p13) == frozenset({"edge@p"})

    def test_lineage_index_handles_cycles(self):
        a = Fact("tc", "p", (1, 1))
        b = Fact("tc", "p", (2, 2))
        base = Fact("edge", "q", (1, 1))
        self.graph.add(Derivation(a, "c1", (b,)))
        self.graph.add(Derivation(b, "c2", (a, base)))
        assert self.graph.base_relations(a) == frozenset({"edge@q"})
        assert self.graph.depends_on_peer(a, "q")
        assert not self.graph.depends_on_peer(a, "r")


class TestTrackerEngineIntegration:
    PROGRAM = """
    collection extensional persistent selected@alice(name);
    collection extensional persistent pictures@alice(id, owner);
    collection intensional view@alice(id, owner);
    fact selected@alice("bob");
    fact pictures@alice(1, "bob");
    fact pictures@alice(2, "carol");
    rule view@alice($id, $o) :- selected@alice($o), pictures@alice($id, $o);
    """

    def test_engine_records_derivations(self):
        engine = WebdamLogEngine("alice")
        tracker = ProvenanceTracker()
        engine.provenance = tracker
        engine.load_program(self.PROGRAM)
        engine.run_stage()
        derived = Fact("view", "alice", (1, "bob"))
        assert tracker.graph.is_derived(derived)
        assert tracker.base_relations(derived) == frozenset({
            "selected@alice", "pictures@alice"
        })
        supports = tracker.why(derived)
        assert frozenset({Fact("selected", "alice", ("bob",)),
                          Fact("pictures", "alice", (1, "bob"))}) in supports

    def test_per_stage_mode_is_deprecated_but_still_clears(self):
        engine = WebdamLogEngine("alice")
        with pytest.warns(DeprecationWarning, match="reset_each_stage"):
            tracker = ProvenanceTracker().reset_each_stage()
        engine.provenance = tracker
        engine.load_program(self.PROGRAM)
        engine.run_stage()
        assert len(tracker.graph) > 0
        engine.delete_fact('selected@alice("bob")')
        engine.run_stage()
        derived = Fact("view", "alice", (1, "bob"))
        assert not tracker.graph.is_derived(derived)

    def test_cascade_killed_remote_derivations_are_not_resurrected(self):
        """A shipped derivation whose shipped support died stays dead."""
        tracker = ProvenanceTracker()
        f1 = Fact("a", "q", (1,))
        f2 = Fact("b", "q", (2,))
        tracker.record_remote(Derivation(f1, "r1", ()))
        tracker.record_remote(Derivation(f2, "r2", (f1,)))
        tracker.on_base_deleted([f1])
        assert not tracker.graph.is_derived(f2)
        tracker.on_full_recompute()
        assert not tracker.graph.is_derived(f2)
        assert not tracker.graph.is_derived(f1)

    def test_orphaned_shipped_lineage_is_garbage_collected(self):
        """Intermediate lineage dies with the anchor that shipped it."""
        tracker = ProvenanceTracker()
        wall = Fact("wall", "bob", (1,))
        album = Fact("album", "alice", (1,))
        photo = Fact("photos", "alice", (1,))
        tracker.record_remote(Derivation(wall, "r1", (album,)), anchor=True)
        tracker.record_remote(Derivation(album, "r2", (photo,)), anchor=False)
        assert tracker.graph.base_relations(wall) == frozenset({"photos@alice"})
        tracker.on_base_deleted([wall])
        assert not tracker.graph.is_derived(album)
        assert len(tracker.graph) == 0
        tracker.on_full_recompute()
        assert len(tracker.graph) == 0

    def test_shared_shipped_lineage_survives_partial_retraction(self):
        """Lineage reachable from another live anchor is kept."""
        tracker = ProvenanceTracker()
        wall1 = Fact("wall", "bob", (1,))
        wall2 = Fact("wall", "bob", (2,))
        album = Fact("album", "alice", (1,))
        photo = Fact("photos", "alice", (1,))
        tracker.record_remote(Derivation(wall1, "r1", (album,)), anchor=True)
        tracker.record_remote(Derivation(wall2, "r2", (album,)), anchor=True)
        tracker.record_remote(Derivation(album, "r3", (photo,)), anchor=False)
        tracker.on_base_deleted([wall1])
        assert tracker.graph.is_derived(album)
        assert tracker.graph.is_derived(wall2)
        tracker.on_full_recompute()
        assert tracker.graph.is_derived(wall2)
        assert tracker.graph.base_relations(wall2) == frozenset({"photos@alice"})

    def test_retraction_maintains_cumulative_graph(self):
        """The cumulative graph now tracks derivability without full stages."""
        engine = WebdamLogEngine("alice")
        tracker = ProvenanceTracker()
        engine.provenance = tracker
        engine.load_program(self.PROGRAM)
        engine.run_to_quiescence()
        derived = Fact("view", "alice", (1, "bob"))
        assert tracker.graph.is_derived(derived)
        engine.delete_fact('selected@alice("bob")')
        engine.run_to_quiescence()
        assert not tracker.graph.is_derived(derived)
        assert engine.query("view") == ()

    def test_cumulative_mode_keeps_history(self):
        engine = WebdamLogEngine("alice")
        tracker = ProvenanceTracker(per_stage=False)
        engine.provenance = tracker
        engine.load_program(self.PROGRAM)
        engine.run_stage()
        engine.run_stage()
        derived = Fact("view", "alice", (1, "bob"))
        assert tracker.graph.is_derived(derived)
