"""Tests of provenance recording and queries."""

from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact
from repro.provenance.graph import Derivation, ProvenanceGraph, ProvenanceTracker


def base(relation, peer, *values):
    return Fact(relation, peer, values)


class TestProvenanceGraph:
    def setup_method(self):
        self.graph = ProvenanceGraph()
        self.b1 = base("edge", "p", 1, 2)
        self.b2 = base("edge", "p", 2, 3)
        self.p12 = base("path", "p", 1, 2)
        self.p23 = base("path", "p", 2, 3)
        self.p13 = base("path", "p", 1, 3)
        self.graph.add(Derivation(self.p12, "r1", (self.b1,)))
        self.graph.add(Derivation(self.p23, "r1", (self.b2,)))
        self.graph.add(Derivation(self.p13, "r2", (self.p12, self.b2)))

    def test_derivations_of(self):
        assert len(self.graph.derivations_of(self.p13)) == 1
        assert self.graph.is_derived(self.p12)
        assert not self.graph.is_derived(self.b1)

    def test_duplicate_derivations_ignored(self):
        before = len(self.graph)
        self.graph.add(Derivation(self.p12, "r1", (self.b1,)))
        assert len(self.graph) == before

    def test_alternative_derivations_kept(self):
        self.graph.add(Derivation(self.p13, "r9", (self.b1, self.b2)))
        assert len(self.graph.why(self.p13)) == 2

    def test_why_provenance(self):
        why = self.graph.why(self.p13)
        assert frozenset({self.p12, self.b2}) in why

    def test_lineage_is_transitive(self):
        lineage = self.graph.lineage(self.p13)
        assert self.b1 in lineage
        assert self.b2 in lineage
        assert self.p12 in lineage
        assert self.p13 not in lineage

    def test_base_facts_and_relations(self):
        assert self.graph.base_facts(self.p13) == frozenset({self.b1, self.b2})
        assert self.graph.base_relations(self.p13) == frozenset({"edge@p"})
        # A non-derived fact is its own base.
        assert self.graph.base_facts(self.b1) == frozenset({self.b1})

    def test_depends_on_peer(self):
        assert self.graph.depends_on_peer(self.p13, "p")
        assert not self.graph.depends_on_peer(self.p13, "q")

    def test_clear(self):
        self.graph.clear()
        assert len(self.graph) == 0
        assert self.graph.facts() == ()


class TestTrackerEngineIntegration:
    PROGRAM = """
    collection extensional persistent selected@alice(name);
    collection extensional persistent pictures@alice(id, owner);
    collection intensional view@alice(id, owner);
    fact selected@alice("bob");
    fact pictures@alice(1, "bob");
    fact pictures@alice(2, "carol");
    rule view@alice($id, $o) :- selected@alice($o), pictures@alice($id, $o);
    """

    def test_engine_records_derivations(self):
        engine = WebdamLogEngine("alice")
        tracker = ProvenanceTracker()
        engine.provenance = tracker
        engine.load_program(self.PROGRAM)
        engine.run_stage()
        derived = Fact("view", "alice", (1, "bob"))
        assert tracker.graph.is_derived(derived)
        assert tracker.base_relations(derived) == frozenset({
            "selected@alice", "pictures@alice"
        })
        supports = tracker.why(derived)
        assert frozenset({Fact("selected", "alice", ("bob",)),
                          Fact("pictures", "alice", (1, "bob"))}) in supports

    def test_per_stage_mode_clears_between_stages(self):
        engine = WebdamLogEngine("alice")
        tracker = ProvenanceTracker().reset_each_stage()
        engine.provenance = tracker
        engine.load_program(self.PROGRAM)
        engine.run_stage()
        assert len(tracker.graph) > 0
        engine.delete_fact('selected@alice("bob")')
        engine.run_stage()
        derived = Fact("view", "alice", (1, "bob"))
        assert not tracker.graph.is_derived(derived)

    def test_cumulative_mode_keeps_history(self):
        engine = WebdamLogEngine("alice")
        tracker = ProvenanceTracker(per_stage=False)
        engine.provenance = tracker
        engine.load_program(self.PROGRAM)
        engine.run_stage()
        engine.run_stage()
        derived = Fact("view", "alice", (1, "bob"))
        assert tracker.graph.is_derived(derived)
