"""Unit tests of the cost-based planner: mode resolution, body ordering,
plan caching/invalidation, the multi-clause query parser, the magic-set
rewrite's soundness bail-outs, and the builder knob."""

from __future__ import annotations

import pytest

from repro.api.builder import BuildError, system
from repro.core.engine import WebdamLogEngine
from repro.core.errors import ParseError
from repro.core.facts import Fact
from repro.core.parser import parse_query_program, parse_rule
from repro.planner import (
    DEFAULT_PLANNER_MODE,
    PLANNER_ENV,
    PLANNER_MODES,
    resolve_planner_mode,
)
from repro.api.views import compile_query

PROGRAM = """
collection extensional persistent big@p(x, y);
collection extensional persistent sel@p(x);
collection extensional persistent flag@p(x);
collection intensional out@p(x, y);
"""


def make_engine(mode="order"):
    engine = WebdamLogEngine("p", planner=mode)
    engine.load_program(PROGRAM)
    for index in range(100):
        engine.insert_fact(Fact("big", "p", (index, index + 1)))
    engine.insert_fact(Fact("sel", "p", (7,)))
    engine.run_to_quiescence()
    return engine


class TestModeResolution:
    def test_explicit_mode_wins(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV, "off")
        assert resolve_planner_mode("magic") == "magic"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV, "off")
        assert resolve_planner_mode() == "off"

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV, raising=False)
        assert resolve_planner_mode() == DEFAULT_PLANNER_MODE
        assert DEFAULT_PLANNER_MODE in PLANNER_MODES

    def test_normalisation_and_unknown(self):
        assert resolve_planner_mode("  Order ") == "order"
        with pytest.raises(ValueError):
            resolve_planner_mode("fancy")


class TestBodyOrdering:
    def test_selective_literal_moves_first(self):
        engine = make_engine()
        plan = engine._planner.plan_rule(parse_rule(
            "rule out@p($x, $y) :- big@p($x, $y), sel@p($x);",
            default_peer="p"))
        assert plan is not None
        assert plan.order == (1, 0)
        assert plan.reordered

    def test_written_order_kept_when_cheapest(self):
        engine = make_engine()
        plan = engine._planner.plan_rule(parse_rule(
            "rule out@p($x, $y) :- sel@p($x), big@p($x, $y);",
            default_peer="p"))
        assert plan.order == (0, 1)
        assert not plan.reordered

    def test_negation_placed_once_bound(self):
        engine = make_engine()
        plan = engine._planner.plan_rule(parse_rule(
            "rule out@p($x, $y) :- big@p($x, $y), not flag@p($x), sel@p($x);",
            default_peer="p"))
        # sel first (cheapest), then the negation filters as soon as $x is
        # bound, then the big scan.
        assert plan.order == (2, 1, 0)

    def test_remote_suffix_is_never_permuted(self):
        engine = make_engine()
        plan = engine._planner.plan_rule(parse_rule(
            "rule out@p($x, $y) :- big@p($x, $y), sel@p($x), "
            "other@q($x), big@p($y, $z);",
            default_peer="p"))
        # Only the local prefix (the first two literals) may be permuted;
        # everything from the first remote literal on keeps written order,
        # because that suffix is what a delegation would ship.
        assert plan.order == (1, 0, 2, 3)

    def test_delta_literal_stays_first(self):
        engine = make_engine()
        rule = parse_rule(
            "rule out@p($x, $y) :- big@p($x, $y), sel@p($x);",
            default_peer="p")
        plan = engine._planner.plan_rule_delta(rule, 0)
        assert plan.order[0] == 0
        assert plan.delta_index == 0

    def test_plan_is_cached_then_replanned_on_drift(self):
        engine = make_engine()
        rule = parse_rule(
            "rule out@p($x, $y) :- big@p($x, $y), sel@p($x);",
            default_peer="p")
        planner = engine._planner
        computed = planner.counters["plans_computed"]
        first = planner.plan_rule(rule)
        assert planner.counters["plans_computed"] == computed + 1
        second = planner.plan_rule(rule)
        assert second.cached
        assert planner.counters["plans_computed"] == computed + 1
        # 10x churn on a prefix relation invalidates the cached plan.
        for index in range(1000):
            engine.insert_fact(Fact("sel", "p", (1000 + index,)))
        engine.run_to_quiescence()
        replanned = planner.plan_rule(rule)
        assert not replanned.cached
        assert planner.counters["plans_computed"] == computed + 2
        assert first.order == second.order

    def test_program_change_bumps_version_and_clears_cache(self):
        engine = make_engine()
        rule = parse_rule(
            "rule out@p($x, $y) :- big@p($x, $y), sel@p($x);",
            default_peer="p")
        engine._planner.plan_rule(rule)
        assert engine._planner._cache
        version = engine.program_version
        added = engine.add_rule(
            "rule out@p($x, $x) :- sel@p($x);")
        assert engine.program_version > version
        version = engine.program_version
        engine.remove_rules([added.rule_id])
        assert engine.program_version > version
        engine.run_to_quiescence()
        engine._planner.sync(engine.program_version)
        assert not engine._planner._cache


class TestQueryProgramParsing:
    def test_single_clause_program(self):
        program = parse_query_program("ans($x) :- sel@p($x)",
                                      default_peer="p")
        assert len(program.clauses) == 1
        assert program.auxiliary == ()
        assert program.answer.head_name == "ans"

    def test_multi_clause_split(self):
        program = parse_query_program(
            "r($x, $y) :- big@p($x, $y); "
            "r($x, $z) :- r($x, $y), big@p($y, $z); "
            "ans($y) :- r(1, $y)", default_peer="p")
        assert len(program.clauses) == 3
        assert [c.head_name for c in program.auxiliary] == ["r", "r"]
        assert program.answer.head_name == "ans"

    def test_auxiliary_clause_requires_a_head(self):
        with pytest.raises(ParseError):
            parse_query_program("big@p($x, $y); ans($x) :- sel@p($x)",
                                default_peer="p")

    def test_aggregates_only_in_final_clause(self):
        with pytest.raises(ParseError):
            parse_query_program(
                "r($x, count($y)) :- big@p($x, $y); ans($x) :- r($x, $c)",
                default_peer="p")


class TestMagicBailouts:
    def test_single_clause_query_is_not_rewritten(self):
        compiled = compile_query("ans($x) :- sel@p($x)", owner="p",
                                 view_name="_v", planner_mode="magic")
        assert compiled.magic_relations == ()
        assert compiled.anchor_facts == ()

    def test_unbound_answer_is_not_rewritten(self):
        # No constant in the aux occurrence: nothing to seed demand from.
        compiled = compile_query(
            "r($x, $y) :- big@p($x, $y); ans($x, $y) :- r($x, $y)",
            owner="p", view_name="_v", planner_mode="magic")
        assert compiled.magic_relations == ()

    def test_remote_aux_body_is_not_rewritten(self):
        # Demand propagation cannot cross peers soundly; bail out.
        compiled = compile_query(
            "r($x, $y) :- big@q($x, $y); ans($y) :- r(1, $y)",
            owner="p", view_name="_v", planner_mode="magic")
        assert compiled.magic_relations == ()

    def test_bound_recursive_query_is_rewritten(self):
        compiled = compile_query(
            "r($x, $y) :- big@p($x, $y); "
            "r($x, $z) :- r($x, $y), big@p($y, $z); "
            "ans($y) :- r(1, $y)",
            owner="p", view_name="_v", planner_mode="magic")
        assert compiled.magic_relations
        assert compiled.anchor_facts
        assert any(schema.name.startswith("_magic_")
                   for schema in compiled.extra_schemas)


class TestBuilderKnob:
    def test_unknown_mode_is_rejected_eagerly(self):
        with pytest.raises(BuildError):
            system().planner("fancy")

    def test_processes_backend_rejects_planner(self):
        with pytest.raises(BuildError):
            (system().planner("order").backend("processes")
             .peer("p").done().build())

    def test_engine_inherits_builder_mode(self):
        deployment = system().planner("off").peer("p").build()
        try:
            engine = deployment.runtime.peer("p").engine
            assert engine.planner_mode == "off"
            assert engine._planner is None
        finally:
            deployment.close()
