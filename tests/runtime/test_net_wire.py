"""Hypothesis round-trips for the ``repro.net`` wire frames.

Every frame kind must survive ``to_wire`` → JSON → ``frame_from_wire``
exactly, including through the length-prefixed byte framing used on the
TCP transport.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facts import Fact
from repro.net.frames import (
    AckFrame,
    DigestFrame,
    EnvelopeFrame,
    JoinFrame,
    LeaveFrame,
    MemberUpdate,
    PingFrame,
    PingReqFrame,
    PullFrame,
    frame_from_wire,
)
from repro.net.framing import FrameDecoder, decode_body, encode_frame
from repro.net.membership import ALIVE, DEAD, LEFT, SUSPECT
from repro.runtime.messages import FactMessage, message_from_wire

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu"), max_codepoint=127),
    min_size=1, max_size=8,
)

addresses = st.one_of(st.just(""), names.map(lambda n: f"{n}:9000"))

member_updates = st.builds(
    MemberUpdate,
    peer=names,
    status=st.sampled_from((ALIVE, SUSPECT, DEAD, LEFT)),
    incarnation=st.integers(min_value=0, max_value=2**31),
    address=addresses,
)

update_lists = st.lists(member_updates, max_size=4).map(tuple)

fact_messages = st.builds(
    FactMessage,
    sender=names, recipient=names,
    inserted=st.lists(
        st.builds(Fact, relation=names, peer=names,
                  values=st.tuples(st.text(max_size=8))),
        max_size=3).map(frozenset),
)

frames = st.one_of(
    st.builds(JoinFrame, peer=names, address=addresses,
              incarnation=st.integers(min_value=0, max_value=2**31),
              updates=update_lists),
    st.builds(LeaveFrame, peer=names,
              incarnation=st.integers(min_value=0, max_value=2**31)),
    st.builds(PingFrame, origin=names,
              seq=st.integers(min_value=0, max_value=2**31),
              updates=update_lists),
    st.builds(PingReqFrame, origin=names, target=names,
              seq=st.integers(min_value=0, max_value=2**31)),
    st.builds(AckFrame, origin=names,
              seq=st.integers(min_value=0, max_value=2**31),
              on_behalf_of=st.one_of(st.just(""), names),
              updates=update_lists),
    st.builds(EnvelopeFrame,
              envelope_id=names.map(lambda n: f"{n}#1"),
              origin=names, recipient=names,
              hops=st.integers(min_value=0, max_value=16),
              message=fact_messages.map(lambda m: m.to_wire()),
              updates=update_lists),
    st.builds(DigestFrame, peer=names,
              ids=st.lists(names, max_size=5).map(tuple),
              updates=update_lists),
    st.builds(PullFrame, peer=names,
              want=st.lists(names, max_size=5).map(tuple)),
)


@given(frames)
@settings(max_examples=200)
def test_frame_roundtrip_exact(frame):
    assert frame_from_wire(frame.to_wire()) == frame


@given(frames)
@settings(max_examples=100)
def test_frame_survives_byte_framing(frame):
    encoded = encode_frame(frame.to_wire())
    assert frame_from_wire(decode_body(encoded[4:])) == frame


@given(st.lists(frames, min_size=1, max_size=5),
       st.integers(min_value=1, max_value=7))
@settings(max_examples=50)
def test_frame_stream_reassembles_from_arbitrary_chunks(batch, chunk_size):
    stream = b"".join(encode_frame(f.to_wire()) for f in batch)
    decoder = FrameDecoder()
    decoded = []
    for offset in range(0, len(stream), chunk_size):
        decoded.extend(decoder.feed(stream[offset:offset + chunk_size]))
    assert [frame_from_wire(w) for w in decoded] == batch


@given(fact_messages)
@settings(max_examples=100)
def test_envelope_payload_preserves_fact_message(message):
    envelope = EnvelopeFrame(envelope_id="a#1", origin=message.sender,
                             recipient=message.recipient, hops=0,
                             message=message.to_wire())
    decoded = frame_from_wire(envelope.to_wire())
    assert message_from_wire(decoded.message) == message


@given(member_updates)
@settings(max_examples=100)
def test_member_update_roundtrip_exact(update):
    assert MemberUpdate.from_wire(update.to_wire()) == update


def test_unknown_frame_type_is_rejected():
    with pytest.raises(ValueError):
        frame_from_wire({"type": "telepathy"})
