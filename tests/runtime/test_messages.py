"""Tests of the message types and their wire round-trips."""

import json

import pytest

from repro.core.facts import Fact
from repro.core.parser import parse_rule
from repro.core.schema import RelationKind, RelationSchema
from repro.runtime.messages import (
    DelegationInstallMessage,
    DelegationRetractMessage,
    FactMessage,
    Message,
    PeerJoinMessage,
    batch_payload_size,
    message_from_wire,
)


class TestFactMessage:
    def test_payload_size_counts_facts(self):
        message = FactMessage(
            sender="a", recipient="b",
            inserted=frozenset({Fact("r", "b", (1,)), Fact("r", "b", (2,))}),
            deleted=frozenset({Fact("r", "b", (3,))}),
        )
        assert message.payload_size() == 3
        assert message.kind() == "FactMessage"

    def test_wire_roundtrip(self):
        message = FactMessage(
            sender="alice", recipient="bob",
            inserted=frozenset({Fact("pictures", "bob", (1, "sea.jpg"))}),
            deleted=frozenset({Fact("pictures", "bob", (2, "old.jpg"))}),
        )
        encoded = message.to_wire()
        json.dumps(encoded)
        decoded = message_from_wire(encoded)
        assert isinstance(decoded, FactMessage)
        assert decoded.inserted == message.inserted
        assert decoded.deleted == message.deleted
        assert decoded.sender == "alice" and decoded.recipient == "bob"


class TestDelegationMessages:
    def test_install_roundtrip_with_schemas(self):
        rule = parse_rule("v@Jules($x) :- pictures@Emilien($x)", author="Jules")
        message = DelegationInstallMessage(
            sender="Jules", recipient="Emilien",
            delegation_id="deleg-42", rule=rule,
            schemas=(RelationSchema("v", "Jules", ("x",), kind=RelationKind.INTENSIONAL),),
        )
        decoded = message_from_wire(message.to_wire())
        assert isinstance(decoded, DelegationInstallMessage)
        assert decoded.delegation_id == "deleg-42"
        assert decoded.rule.head.relation_constant() == "v"
        assert decoded.schemas[0].kind is RelationKind.INTENSIONAL
        assert message.payload_size() == 2  # rule + one schema

    def test_retract_roundtrip(self):
        message = DelegationRetractMessage(sender="Jules", recipient="Emilien",
                                           delegation_id="deleg-42")
        decoded = message_from_wire(message.to_wire())
        assert isinstance(decoded, DelegationRetractMessage)
        assert decoded.delegation_id == "deleg-42"


class TestControlMessages:
    def test_peer_join_roundtrip(self):
        message = PeerJoinMessage(sender="newbie", recipient="sigmod",
                                  peer_name="newbie", address="host:1234")
        decoded = message_from_wire(message.to_wire())
        assert isinstance(decoded, PeerJoinMessage)
        assert decoded.peer_name == "newbie"
        assert decoded.address == "host:1234"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            message_from_wire({"kind": "Bogus", "sender": "a", "recipient": "b"})


class TestBatching:
    def test_batch_payload_size(self):
        messages = [
            FactMessage(sender="a", recipient="b",
                        inserted=frozenset({Fact("r", "b", (i,))}))
            for i in range(4)
        ]
        assert batch_payload_size(messages) == 4

    def test_message_ids_unique(self):
        first = FactMessage(sender="a", recipient="b")
        second = FactMessage(sender="a", recipient="b")
        assert first.message_id != second.message_id
