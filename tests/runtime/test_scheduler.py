"""The scheduler seam: lockstep/reactive/async drivers, quiescence, shims."""

import asyncio

import pytest

from repro.api import system
from repro.runtime.scheduler import (
    AsyncScheduler,
    LockstepScheduler,
    ReactiveScheduler,
    Scheduler,
    resolve_quiet_period,
    resolve_scheduler,
)
from repro.runtime.system import WebdamLogSystem
from repro.wepic.scenario import build_demo_scenario

PING_PONG_A = """
collection extensional persistent ping@a(n);
collection extensional persistent ack@a(n);
rule pong@b($n) :- ping@a($n);
"""

PING_PONG_B = """
collection extensional persistent pong@b(n);
rule ack@a($n) :- pong@b($n);
"""

DELEGATION_JULES = """
collection extensional persistent selectedAttendee@Jules(attendee);
collection intensional attendeePictures@Jules(id, name);
fact selectedAttendee@Jules("Emilien");
rule attendeePictures@Jules($id, $n) :-
    selectedAttendee@Jules($a), pictures@$a($id, $n);
"""

DELEGATION_EMILIEN = """
collection extensional persistent pictures@Emilien(id, name);
fact pictures@Emilien(1, "sea.jpg");
fact pictures@Emilien(2, "boat.jpg");
"""


def build_ping_pong(scheduler, latency=1, idle_peers=0):
    sys = WebdamLogSystem(latency=latency, scheduler=scheduler)
    sys.add_peer("a", program=PING_PONG_A + "fact ping@a(1);")
    sys.add_peer("b", program=PING_PONG_B)
    for index in range(idle_peers):
        name = f"idle{index:02d}"
        sys.add_peer(name, program=(
            f"collection extensional persistent notes@{name}(text);\n"
            f'fact notes@{name}("quiet");\n'
        ))
    return sys


def build_delegation(scheduler):
    return (system()
            .scheduler(scheduler)
            .peer("Jules").program(DELEGATION_JULES)
            .peer("Emilien").program(DELEGATION_EMILIEN)
            .build())


class TestFixpointEquivalence:
    """The reactive and async drivers reach the lockstep fixpoints."""

    @pytest.mark.parametrize("scheduler", ["reactive", "async"])
    def test_ping_pong_fixpoint(self, scheduler):
        reference = build_ping_pong("lockstep")
        reference.converge()
        candidate = build_ping_pong(scheduler)
        summary = candidate.converge()
        assert summary.converged
        assert candidate.snapshot() == reference.snapshot()

    @pytest.mark.parametrize("scheduler", ["reactive", "async"])
    def test_delegation_fixpoint(self, scheduler):
        reference = build_delegation("lockstep")
        reference.converge()
        candidate = build_delegation(scheduler)
        summary = candidate.converge()
        assert summary.converged
        assert candidate.snapshot() == reference.snapshot()
        assert sorted(candidate.query("Jules", "attendeePictures").rows()) == \
            [(1, "sea.jpg"), (2, "boat.jpg")]

    @pytest.mark.parametrize("scheduler", ["reactive", "async"])
    def test_wepic_scenario_fixpoint(self, scheduler):
        reference = build_demo_scenario()
        reference.run()
        candidate = build_demo_scenario(scheduler=scheduler)
        summary = candidate.run()
        assert summary.converged
        assert candidate.api.snapshot() == reference.api.snapshot()

    def test_incremental_updates_after_convergence(self):
        reference = build_ping_pong("lockstep")
        reference.converge()
        candidate = build_ping_pong("reactive")
        candidate.converge()
        for sys in (reference, candidate):
            sys.peer("a").insert_fact("ping@a(2)")
            sys.converge()
        assert candidate.snapshot() == reference.snapshot()
        assert len(candidate.peer("a").query("ack")) == 2


class TestSparseActivation:
    """Reactive scheduling skips idle peers (the event-driven win)."""

    def test_reactive_runs_at_least_3x_fewer_stages(self):
        lockstep = build_ping_pong("lockstep", idle_peers=28)
        reactive = build_ping_pong("reactive", idle_peers=28)
        stages_lockstep = lockstep.converge().total_stages()
        stages_reactive = reactive.converge().total_stages()
        assert lockstep.snapshot() == reactive.snapshot()
        assert stages_lockstep >= 3 * stages_reactive

    def test_idle_peer_is_never_activated_after_first_stage(self):
        reactive = build_ping_pong("reactive", idle_peers=5)
        reactive.converge()
        idle = reactive.peer("idle00")
        first_run_stages = idle.engine.state.stage_counter
        reactive.peer("a").insert_fact("ping@a(99)")
        reactive.converge()
        assert idle.engine.state.stage_counter == first_run_stages


class TestQuiescenceWithLatency:
    """Convergence is never reported while messages ride out their latency."""

    @pytest.mark.parametrize("scheduler", ["lockstep", "reactive", "async"])
    def test_latency_3_converges_with_all_facts(self, scheduler):
        sys = build_ping_pong(scheduler, latency=3)
        summary = sys.converge()
        assert summary.converged
        assert not sys.transport.has_in_flight()
        assert len(sys.peer("a").query("ack")) == 1

    def test_not_converged_while_in_flight(self):
        sys = build_ping_pong("reactive", latency=3)
        report = sys.step()
        assert sys.transport.has_in_flight()
        # The cycle that produced the in-flight message must not count as
        # convergence, nor may any cycle while the message is undelivered.
        summary = sys.converge(max_steps=2)
        assert not summary.converged
        assert sys.transport.has_in_flight() or sys.pending_engine_input() \
            or not report.is_quiescent()

    def test_idle_cycles_advance_the_clock_without_stages(self):
        sys = build_ping_pong("reactive", latency=4, idle_peers=3)
        summary = sys.converge()
        assert summary.converged
        # With latency 4 some cycles deliver nothing and activate nobody;
        # they exist purely to tick the transport clock.
        assert any(report.stages_executed == 0 for report in summary.rounds)

    def test_due_count_respects_latency(self):
        sys = build_ping_pong("lockstep", latency=3)
        sys.step()  # peer a sends pong@b; due 3 rounds later
        assert sys.transport.pending_count("b") == 1
        assert sys.transport.due_count("b") == 0
        sys.step()
        sys.step()
        assert sys.transport.due_count("b") == 1


class TestAsyncScheduler:
    """The asyncio driver: per-peer mailboxes behind ``await aconverge()``."""

    def test_aconverge_awaitable(self):
        sys = build_ping_pong("lockstep")  # aconverge works on any system

        async def drive():
            return await sys.aconverge()

        summary = asyncio.run(drive())
        assert summary.converged and summary.scheduler == "async"
        assert len(sys.peer("a").query("ack")) == 1

    def test_sync_facade_over_async_scheduler(self):
        deployment = build_delegation("async")
        summary = deployment.converge()
        assert summary.converged and summary.scheduler == "async"
        assert len(deployment.query("Jules", "attendeePictures")) == 2


class TestSchedulerResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_scheduler(None), LockstepScheduler)
        assert isinstance(resolve_scheduler("lockstep"), LockstepScheduler)
        assert isinstance(resolve_scheduler("reactive"), ReactiveScheduler)
        assert isinstance(resolve_scheduler("async"), AsyncScheduler)

    def test_instances_pass_through(self):
        driver = ReactiveScheduler()
        assert resolve_scheduler(driver) is driver

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            resolve_scheduler("eager")

    def test_drivers_satisfy_the_protocol(self):
        for driver in (LockstepScheduler(), ReactiveScheduler(), AsyncScheduler()):
            assert isinstance(driver, Scheduler)

    def test_converge_accepts_per_call_override(self):
        sys = build_ping_pong("lockstep", idle_peers=10)
        summary = sys.converge(scheduler="reactive")
        assert summary.scheduler == "reactive"
        assert summary.converged


class TestQuietPeriod:
    """Bounded-quiet-period termination for transports without a perfect
    in-flight oracle (the TCP transport advertises
    ``convergence_quiet_period``; in-memory implicitly uses 1)."""

    def test_inmemory_default_is_one_settled_cycle(self):
        sys = build_ping_pong("lockstep")
        assert resolve_quiet_period(sys, None) == 1

    def test_transport_attribute_sets_the_default(self):
        sys = build_ping_pong("lockstep")
        sys.transport.convergence_quiet_period = 4
        assert resolve_quiet_period(sys, None) == 4

    def test_explicit_argument_overrides_the_transport(self):
        sys = build_ping_pong("lockstep")
        sys.transport.convergence_quiet_period = 4
        assert resolve_quiet_period(sys, 2) == 2

    def test_quiet_period_is_clamped_to_at_least_one(self):
        sys = build_ping_pong("lockstep")
        assert resolve_quiet_period(sys, 0) == 1
        sys.transport.convergence_quiet_period = 0
        assert resolve_quiet_period(sys, None) == 1

    @pytest.mark.parametrize("scheduler", ["lockstep", "reactive"])
    def test_longer_quiet_period_adds_exactly_the_extra_cycles(self, scheduler):
        baseline = build_ping_pong(scheduler).converge(quiet_period=1)
        padded = build_ping_pong(scheduler).converge(quiet_period=3)
        assert baseline.converged and padded.converged
        assert padded.round_count == baseline.round_count + 2

    def test_transport_advertised_period_is_honoured_by_converge(self):
        sys = build_ping_pong("lockstep")
        sys.transport.convergence_quiet_period = 3
        padded = sys.converge()
        baseline = build_ping_pong("lockstep").converge()
        assert padded.converged
        assert padded.round_count == baseline.round_count + 2

    def test_async_scheduler_honours_quiet_period(self):
        baseline = build_ping_pong("async").converge(quiet_period=1)
        padded = build_ping_pong("async").converge(quiet_period=3)
        assert baseline.converged and padded.converged
        assert padded.round_count == baseline.round_count + 2

    def test_fixpoint_identical_whatever_the_quiet_period(self):
        def snapshot(quiet_period):
            sys = build_ping_pong("lockstep")
            sys.converge(quiet_period=quiet_period)
            return {relation: set(sys.peers[owner].query(relation))
                    for owner, relation in (("a", "ping"), ("a", "ack"),
                                            ("b", "pong"))}

        assert snapshot(1) == snapshot(4)


class TestDeprecatedShims:
    """The round-based methods warn and delegate to the lockstep driver."""

    def test_run_round_warns_and_runs_a_lockstep_round(self):
        sys = build_ping_pong("reactive")
        with pytest.warns(DeprecationWarning, match="run_round"):
            report = sys.run_round()
        # A lockstep round activates every peer, whatever the configured driver.
        assert set(report.peer_reports) == set(sys.peers)

    def test_run_rounds_warns(self):
        sys = build_ping_pong("lockstep")
        with pytest.warns(DeprecationWarning, match="run_rounds"):
            reports = sys.run_rounds(2)
        assert len(reports) == 2

    def test_run_until_quiescent_warns_and_still_converges(self):
        sys = build_ping_pong("lockstep")
        with pytest.warns(DeprecationWarning, match="run_until_quiescent"):
            summary = sys.run_until_quiescent()
        assert summary.converged
        assert len(sys.peer("a").query("ack")) == 1

    def test_converge_does_not_warn(self, recwarn):
        sys = build_ping_pong("lockstep")
        sys.converge()
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
