"""Round-trip tests of the wire encoding."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.policies import Grant, Privilege
from repro.core.facts import Fact
from repro.core.parser import parse_rule
from repro.core.rules import Atom
from repro.core.schema import RelationKind, RelationSchema
from repro.core.terms import Constant, Variable
from repro.provenance.graph import Derivation
from repro.runtime import wire
from repro.runtime.messages import FactMessage, message_from_wire

#: Every value type the engine stores — including bytes-valued picture
#: contents, which must survive the hex detour exactly.
values = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-2**40, max_value=2**40),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.binary(max_size=24),
)

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu"), max_codepoint=127),
    min_size=1, max_size=8,
)

facts = st.builds(
    Fact,
    relation=names, peer=names,
    values=st.tuples(values, values),
)

derivations = st.builds(
    Derivation,
    fact=facts,
    rule_id=names,
    support=st.lists(facts, max_size=4).map(tuple),
    author=st.one_of(st.none(), names),
)

grants = st.builds(
    Grant,
    relation=names, grantee=names, grantor=names,
    privilege=st.sampled_from(list(Privilege)),
)


class TestValueEncoding:
    @pytest.mark.parametrize("value", ["text", 42, -1, 3.5, True, False, None])
    def test_scalar_roundtrip(self, value):
        encoded = wire.encode_value(value)
        json.dumps(encoded)  # must be JSON-serialisable
        assert wire.decode_value(encoded) == value

    def test_bytes_roundtrip(self):
        encoded = wire.encode_value(b"\x00\x01\xff")
        json.dumps(encoded)
        assert wire.decode_value(encoded) == b"\x00\x01\xff"

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            wire.encode_value(object())


class TestTermEncoding:
    def test_variable_roundtrip(self):
        term = Variable("attendee")
        assert wire.decode_term(wire.encode_term(term)) == term

    @pytest.mark.parametrize("value", ["x", 7, 2.5, True, None, b"\x01"])
    def test_constant_roundtrip_preserves_type(self, value):
        term = Constant(value)
        decoded = wire.decode_term(wire.encode_term(term))
        assert decoded == term
        assert type(decoded.value) is type(value)

    def test_bool_int_distinction_survives(self):
        one = wire.decode_term(wire.encode_term(Constant(1)))
        true = wire.decode_term(wire.encode_term(Constant(True)))
        assert one != true


class TestFactEncoding:
    def test_roundtrip(self):
        fact = Fact("pictures", "sigmod", (32, "sea.jpg", "Emilien", True, None, 4.5))
        encoded = wire.encode_fact(fact)
        json.dumps(encoded)
        assert wire.decode_fact(encoded) == fact

    def test_type_distinction_in_values(self):
        fact = Fact("r", "p", (1, True))
        decoded = wire.decode_fact(wire.encode_fact(fact))
        assert decoded.values[0] == 1 and decoded.values[0] is not True
        assert decoded.values[1] is True


class TestAtomAndRuleEncoding:
    def test_atom_roundtrip(self):
        atom = Atom.of("pictures", "$attendee", "$id", "sea.jpg", negated=True)
        decoded = wire.decode_atom(wire.encode_atom(atom))
        assert decoded == atom

    def test_rule_roundtrip_preserves_metadata(self):
        rule = parse_rule(
            "attendeePictures@Jules($id, $n) :- "
            "selectedAttendee@Jules($a), pictures@$a($id, $n)",
            author="Jules",
        )
        encoded = wire.encode_rule(rule)
        json.dumps(encoded)
        decoded = wire.decode_rule(encoded)
        assert decoded.head == rule.head
        assert decoded.body == rule.body
        assert decoded.author == "Jules"
        assert decoded.rule_id == rule.rule_id

    def test_schema_roundtrip(self):
        schema = RelationSchema("attendeePictures", "Jules", ("id", "name"),
                                kind=RelationKind.INTENSIONAL, persistent=False,
                                key=("id",))
        decoded = wire.decode_schema(wire.encode_schema(schema))
        assert decoded == schema


class TestDerivationAndGrantEncoding:
    """Every derivation / policy payload round-trips exactly (property-based)."""

    @given(derivations)
    @settings(max_examples=100, deadline=None)
    def test_derivation_roundtrip_exact(self, derivation):
        encoded = wire.encode_derivation(derivation)
        json.dumps(encoded)  # must be JSON-serialisable
        decoded = wire.decode_derivation(encoded)
        assert decoded == derivation
        for original, roundtripped in zip(derivation.support, decoded.support):
            for a, b in zip(original.values, roundtripped.values):
                assert type(a) is type(b)

    def test_derivation_with_picture_bytes(self):
        picture = Fact("pictures", "Emilien", (1, "sea.jpg", b"\x89PNG\x00\xff"))
        derivation = Derivation(
            fact=Fact("attendeePictures", "Jules", (1, "sea.jpg")),
            rule_id="rule-1", support=(picture,), author="Jules",
        )
        encoded = wire.encode_derivation(derivation)
        json.dumps(encoded)
        assert wire.decode_derivation(encoded) == derivation

    @given(grants)
    @settings(max_examples=50, deadline=None)
    def test_grant_roundtrip_exact(self, grant):
        encoded = wire.encode_grant(grant)
        json.dumps(encoded)
        assert wire.decode_grant(encoded) == grant

    @given(st.lists(facts, max_size=3), st.lists(facts, max_size=3),
           st.lists(derivations, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_fact_message_with_derivations_roundtrip(self, inserted, deleted,
                                                     shipped):
        message = FactMessage(
            sender="a", recipient="b",
            inserted=frozenset(inserted), deleted=frozenset(deleted),
            derivations=tuple(shipped),
        )
        encoded = message.to_wire()
        json.dumps(encoded)
        decoded = message_from_wire(encoded)
        assert decoded.inserted == message.inserted
        assert decoded.deleted == message.deleted
        assert decoded.derivations == message.derivations
        assert decoded.payload_size() == message.payload_size()
