"""Round-trip tests of the wire encoding."""

import json

import pytest

from repro.core.facts import Fact
from repro.core.parser import parse_rule
from repro.core.rules import Atom
from repro.core.schema import RelationKind, RelationSchema
from repro.core.terms import Constant, Variable
from repro.runtime import wire


class TestValueEncoding:
    @pytest.mark.parametrize("value", ["text", 42, -1, 3.5, True, False, None])
    def test_scalar_roundtrip(self, value):
        encoded = wire.encode_value(value)
        json.dumps(encoded)  # must be JSON-serialisable
        assert wire.decode_value(encoded) == value

    def test_bytes_roundtrip(self):
        encoded = wire.encode_value(b"\x00\x01\xff")
        json.dumps(encoded)
        assert wire.decode_value(encoded) == b"\x00\x01\xff"

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            wire.encode_value(object())


class TestTermEncoding:
    def test_variable_roundtrip(self):
        term = Variable("attendee")
        assert wire.decode_term(wire.encode_term(term)) == term

    @pytest.mark.parametrize("value", ["x", 7, 2.5, True, None, b"\x01"])
    def test_constant_roundtrip_preserves_type(self, value):
        term = Constant(value)
        decoded = wire.decode_term(wire.encode_term(term))
        assert decoded == term
        assert type(decoded.value) is type(value)

    def test_bool_int_distinction_survives(self):
        one = wire.decode_term(wire.encode_term(Constant(1)))
        true = wire.decode_term(wire.encode_term(Constant(True)))
        assert one != true


class TestFactEncoding:
    def test_roundtrip(self):
        fact = Fact("pictures", "sigmod", (32, "sea.jpg", "Emilien", True, None, 4.5))
        encoded = wire.encode_fact(fact)
        json.dumps(encoded)
        assert wire.decode_fact(encoded) == fact

    def test_type_distinction_in_values(self):
        fact = Fact("r", "p", (1, True))
        decoded = wire.decode_fact(wire.encode_fact(fact))
        assert decoded.values[0] == 1 and decoded.values[0] is not True
        assert decoded.values[1] is True


class TestAtomAndRuleEncoding:
    def test_atom_roundtrip(self):
        atom = Atom.of("pictures", "$attendee", "$id", "sea.jpg", negated=True)
        decoded = wire.decode_atom(wire.encode_atom(atom))
        assert decoded == atom

    def test_rule_roundtrip_preserves_metadata(self):
        rule = parse_rule(
            "attendeePictures@Jules($id, $n) :- "
            "selectedAttendee@Jules($a), pictures@$a($id, $n)",
            author="Jules",
        )
        encoded = wire.encode_rule(rule)
        json.dumps(encoded)
        decoded = wire.decode_rule(encoded)
        assert decoded.head == rule.head
        assert decoded.body == rule.body
        assert decoded.author == "Jules"
        assert decoded.rule_id == rule.rule_id

    def test_schema_roundtrip(self):
        schema = RelationSchema("attendeePictures", "Jules", ("id", "name"),
                                kind=RelationKind.INTENSIONAL, persistent=False,
                                key=("id",))
        decoded = wire.decode_schema(wire.encode_schema(schema))
        assert decoded == schema
