"""Tests of the runtime peer and the system orchestrator."""

import pytest

from repro.core.facts import Fact
from repro.core.parser import parse_rule
from repro.core.schema import RelationKind, RelationSchema
from repro.runtime.messages import (
    DelegationInstallMessage,
    DelegationRetractMessage,
    FactMessage,
    PeerJoinMessage,
)
from repro.runtime.peer import Peer
from repro.runtime.system import WebdamLogSystem


class TestPeerMessageDispatch:
    @pytest.fixture(autouse=True)
    def _reliable_mode(self, monkeypatch):
        # These tests pin the reliable wire format (raw fact/delegation
        # messages); under causal replication stage outputs travel as delta
        # envelopes instead (covered by tests/replication).
        monkeypatch.setenv("REPRO_REPLICATION", "reliable")

    def test_fact_message_reaches_engine(self):
        peer = Peer("alice")
        peer.deliver(FactMessage(sender="bob", recipient="alice",
                                 inserted=frozenset({Fact("r", "alice", (1,))})))
        peer.run_stage()
        assert peer.query("r") == (Fact("r", "alice", (1,)),)

    def test_delegation_install_auto_accept(self):
        peer = Peer("alice", auto_accept_delegations=True)
        rule = parse_rule("v@bob($x) :- r@alice($x)", author="bob")
        peer.deliver(DelegationInstallMessage(sender="bob", recipient="alice",
                                              delegation_id="d1", rule=rule))
        peer.run_stage()
        assert len(peer.installed_delegations()) == 1

    def test_delegation_install_pending_for_untrusted(self):
        peer = Peer("alice", auto_accept_delegations=False)
        rule = parse_rule("v@bob($x) :- r@alice($x)", author="bob")
        peer.deliver(DelegationInstallMessage(sender="bob", recipient="alice",
                                              delegation_id="d1", rule=rule))
        peer.run_stage()
        assert len(peer.installed_delegations()) == 0
        assert len(peer.pending_delegations()) == 1
        peer.approve_delegation("d1")
        peer.run_stage()
        assert len(peer.installed_delegations()) == 1

    def test_delegation_schemas_declared_on_install(self):
        peer = Peer("alice", auto_accept_delegations=True)
        rule = parse_rule("view@bob($x) :- r@alice($x)", author="bob")
        schema = RelationSchema("view", "bob", ("x",), kind=RelationKind.INTENSIONAL)
        peer.deliver(DelegationInstallMessage(sender="bob", recipient="alice",
                                              delegation_id="d1", rule=rule,
                                              schemas=(schema,)))
        assert peer.engine.state.schemas.get("view", "bob") is not None

    def test_delegation_retract_message(self):
        peer = Peer("alice", auto_accept_delegations=True)
        rule = parse_rule("v@bob($x) :- r@alice($x)", author="bob")
        peer.deliver(DelegationInstallMessage(sender="bob", recipient="alice",
                                              delegation_id="d1", rule=rule))
        peer.run_stage()
        peer.deliver(DelegationRetractMessage(sender="bob", recipient="alice",
                                              delegation_id="d1"))
        peer.run_stage()
        assert len(peer.installed_delegations()) == 0

    def test_peer_join_message_recorded(self):
        peer = Peer("alice")
        peer.deliver(PeerJoinMessage(sender="carol", recipient="alice",
                                     peer_name="carol", address="host:9"))
        assert peer.known_peers["carol"] == "host:9"

    def test_outgoing_delegation_messages_carry_schemas(self):
        peer = Peer("Jules")
        peer.declare(RelationSchema("attendeePictures", "Jules", ("id",),
                                    kind=RelationKind.INTENSIONAL))
        peer.declare(RelationSchema("selectedAttendee", "Jules", ("attendee",)))
        peer.add_rule("attendeePictures@Jules($id) :- "
                      "selectedAttendee@Jules($a), pictures@$a($id)")
        peer.insert_fact(Fact("selectedAttendee", "Jules", ("Emilien",)))
        _result, outgoing = peer.run_stage()
        installs = [m for m in outgoing if isinstance(m, DelegationInstallMessage)]
        assert len(installs) == 1
        schema_names = {s.qualified_name for s in installs[0].schemas}
        assert "attendeePictures@Jules" in schema_names


class TestSystem:
    def test_duplicate_peer_rejected(self):
        system = WebdamLogSystem()
        system.add_peer("alice")
        with pytest.raises(ValueError):
            system.add_peer("alice")

    def test_unknown_peer_lookup(self):
        system = WebdamLogSystem()
        with pytest.raises(KeyError):
            system.peer("ghost")

    def test_membership_and_names(self, two_peer_system):
        assert "alice" in two_peer_system
        assert len(two_peer_system) == 2
        assert two_peer_system.peer_names() == ("alice", "bob")

    def test_fact_flow_between_peers(self, two_peer_system):
        alice = two_peer_system.peer("alice")
        bob = two_peer_system.peer("bob")
        alice.load_program("""
        collection extensional persistent local@alice(x);
        fact local@alice(1);
        rule mirror@bob($x) :- local@alice($x);
        """)
        summary = two_peer_system.converge()
        assert summary.converged
        assert bob.query("mirror") == (Fact("mirror", "bob", (1,)),)

    def test_convergence_reported_in_summary(self, two_peer_system):
        summary = two_peer_system.converge()
        assert summary.converged
        assert summary.round_count >= 1
        assert summary.total_messages() == 0

    def test_latency_increases_rounds(self):
        def build(latency):
            system = WebdamLogSystem(latency=latency)
            alice = system.add_peer("alice")
            system.add_peer("bob")
            alice.load_program("""
            collection extensional persistent local@alice(x);
            fact local@alice(1);
            rule mirror@bob($x) :- local@alice($x);
            """)
            return system.converge(max_steps=50).round_count

        assert build(latency=3) > build(latency=1)

    def test_steps_run_unconditionally(self, two_peer_system):
        reports = [two_peer_system.step() for _ in range(3)]
        assert len(reports) == 3
        assert two_peer_system.current_round == 3

    def test_totals_and_snapshot(self, two_peer_system):
        alice = two_peer_system.peer("alice")
        alice.insert_fact(Fact("r", "alice", (1,)))
        two_peer_system.converge()
        totals = two_peer_system.totals()
        assert totals["peers"] == 2
        assert totals["extensional_facts"] == 1
        snapshot = two_peer_system.snapshot()
        assert "r@alice" in snapshot["alice"]

    def test_remove_peer(self, two_peer_system):
        removed = two_peer_system.remove_peer("bob")
        assert removed is not None
        assert "bob" not in two_peer_system
        assert two_peer_system.remove_peer("bob") is None

    def test_announce_sends_join_messages(self):
        system = WebdamLogSystem()
        system.add_peer("sigmod")
        system.add_peer("newbie", announce=True)
        system.converge()
        assert system.peer("sigmod").known_peers.get("newbie") == "newbie"

    def test_message_to_unknown_peer_does_not_crash_round(self):
        system = WebdamLogSystem()
        alice = system.add_peer("alice")
        alice.add_rule("copy@ghost($x) :- local@alice($x)")
        alice.insert_fact(Fact("local", "alice", (1,)))
        summary = system.converge()
        assert summary.converged


class TestSystemDelegationFlow:
    def test_delegation_round_trip_and_retraction(self):
        system = WebdamLogSystem()
        jules = system.add_peer("Jules")
        emilien = system.add_peer("Emilien")
        jules.declare(RelationSchema("attendeePictures", "Jules", ("id",),
                                     kind=RelationKind.INTENSIONAL))
        jules.add_rule("attendeePictures@Jules($id) :- "
                       "selectedAttendee@Jules($a), pictures@$a($id)")
        jules.insert_fact(Fact("selectedAttendee", "Jules", ("Emilien",)))
        emilien.insert_fact(Fact("pictures", "Emilien", (7,)))
        system.converge()
        assert jules.query("attendeePictures") == (Fact("attendeePictures", "Jules", (7,)),)
        assert len(emilien.installed_delegations()) == 1
        # Deselect: the delegation is retracted and the view empties.
        jules.delete_fact(Fact("selectedAttendee", "Jules", ("Emilien",)))
        system.converge()
        assert jules.query("attendeePictures") == ()
        assert len(emilien.installed_delegations()) == 0

    def test_new_picture_propagates_through_existing_delegation(self):
        system = WebdamLogSystem()
        jules = system.add_peer("Jules")
        emilien = system.add_peer("Emilien")
        jules.declare(RelationSchema("attendeePictures", "Jules", ("id",),
                                     kind=RelationKind.INTENSIONAL))
        jules.add_rule("attendeePictures@Jules($id) :- "
                       "selectedAttendee@Jules($a), pictures@$a($id)")
        jules.insert_fact(Fact("selectedAttendee", "Jules", ("Emilien",)))
        emilien.insert_fact(Fact("pictures", "Emilien", (1,)))
        system.converge()
        emilien.insert_fact(Fact("pictures", "Emilien", (2,)))
        system.converge()
        ids = {f.values[0] for f in jules.query("attendeePictures")}
        assert ids == {1, 2}
