"""Tests of the multi-process transport (each peer in its own OS process)."""

import pytest

from repro.core.facts import Fact
from repro.runtime.processes import ProcessNetwork

pytestmark = pytest.mark.processes


JULES_PROGRAM = """
collection extensional persistent selectedAttendee@Jules(attendee);
collection intensional attendeePictures@Jules(id, name);
fact selectedAttendee@Jules("Emilien");
rule attendeePictures@Jules($id, $n) :- selectedAttendee@Jules($a), pictures@$a($id, $n);
"""

EMILIEN_PROGRAM = """
collection extensional persistent pictures@Emilien(id, name);
fact pictures@Emilien(1, "sea.jpg");
fact pictures@Emilien(2, "boat.jpg");
"""


class TestProcessNetwork:
    def test_delegation_across_processes(self):
        with ProcessNetwork() as network:
            network.spawn_peer("Jules", JULES_PROGRAM)
            network.spawn_peer("Emilien", EMILIEN_PROGRAM)
            rounds = network.run_until_quiescent(max_rounds=20)
            facts = network.query("Jules", "attendeePictures")
            assert rounds < 20
            assert {f.values[0] for f in facts} == {1, 2}
            counts = network.counts("Emilien")
            assert counts["installed_delegations"] == 1

    def test_insert_fact_and_add_rule_remotely(self):
        with ProcessNetwork() as network:
            network.spawn_peer("alice")
            network.spawn_peer("bob")
            network.add_rule("alice", "mirror@bob($x) :- local@alice($x)")
            network.insert_fact("alice", Fact("local", "alice", (41,)))
            network.run_until_quiescent(max_rounds=20)
            facts = network.query("bob", "mirror")
            assert facts == [Fact("mirror", "bob", (41,))]

    def test_provenance_ships_across_processes(self):
        from repro.api import system

        deployment = (system().provenance().backend("processes")
                      .peer("Jules").program(JULES_PROGRAM)
                      .peer("Emilien").program(EMILIEN_PROGRAM)
                      .build())
        with deployment:
            deployment.run(max_rounds=20)
            derived = Fact("attendeePictures", "Jules", (1, "sea.jpg"))
            explanation = deployment.explain("Jules", derived)
            assert explanation.derived
            assert "pictures@Emilien" in explanation.base_relations
            # String facts are parsed exactly like the in-memory facade does,
            # and the same Explanation type comes back (backend parity).
            via_string = deployment.explain(
                "Jules", 'attendeePictures@Jules(1, "sea.jpg")')
            assert via_string == explanation

    def test_duplicate_spawn_rejected(self):
        with ProcessNetwork() as network:
            network.spawn_peer("alice")
            with pytest.raises(ValueError):
                network.spawn_peer("alice")

    def test_unknown_peer_rejected(self):
        with ProcessNetwork() as network:
            with pytest.raises(KeyError):
                network.query("ghost", "r")

    def test_shutdown_is_idempotent(self):
        network = ProcessNetwork()
        network.spawn_peer("alice")
        network.shutdown()
        network.shutdown()
        assert network.peer_names() == ()
