"""Tests of the in-memory network (delivery, latency, loss, accounting)."""

import pytest

from repro.core.errors import TransportError
from repro.core.facts import Fact
from repro.runtime.inmemory import InMemoryNetwork, InMemoryTransport
from repro.runtime.messages import FactMessage


def make_message(sender="alice", recipient="bob", value=1):
    return FactMessage(sender=sender, recipient=recipient,
                       inserted=frozenset({Fact("r", recipient, (value,))}))


class TestRegistration:
    def test_register_and_peers(self):
        network = InMemoryTransport()
        network.register("alice")
        network.register("bob", address="host:1")
        assert network.peers() == ("alice", "bob")
        assert network.is_registered("alice")
        assert network.address_of("bob") == "host:1"
        assert network.address_of("carol") is None

    def test_send_to_unknown_peer_raises(self):
        network = InMemoryTransport()
        network.register("alice")
        with pytest.raises(TransportError):
            network.send(make_message(recipient="nobody"))

    def test_unregister_drops_in_flight(self):
        network = InMemoryTransport()
        network.register("alice")
        network.register("bob")
        network.send(make_message())
        network.unregister("bob")
        assert network.stats.messages_dropped == 1
        assert network.pending_count() == 0


class TestDelivery:
    def test_default_latency_one_round(self):
        network = InMemoryTransport()
        network.register("alice")
        network.register("bob")
        network.send(make_message())
        # Not deliverable in the sending round.
        assert network.receive("bob") == []
        network.advance_round()
        delivered = network.receive("bob")
        assert len(delivered) == 1
        assert network.stats.messages_delivered == 1

    def test_zero_latency_delivers_same_round(self):
        network = InMemoryTransport(latency=0)
        network.register("alice")
        network.register("bob")
        network.send(make_message())
        assert len(network.receive("bob")) == 1

    def test_higher_latency(self):
        network = InMemoryTransport(latency=3)
        network.register("alice")
        network.register("bob")
        network.send(make_message())
        for _ in range(2):
            network.advance_round()
            assert network.receive("bob") == []
        network.advance_round()
        assert len(network.receive("bob")) == 1

    def test_receive_only_removes_due_messages(self):
        network = InMemoryTransport(latency=1)
        network.register("alice")
        network.register("bob")
        network.send(make_message(value=1))
        network.advance_round()
        network.send(make_message(value=2))
        first_batch = network.receive("bob")
        assert len(first_batch) == 1
        assert network.pending_count("bob") == 1

    def test_has_in_flight(self):
        network = InMemoryTransport()
        network.register("alice")
        network.register("bob")
        assert not network.has_in_flight()
        network.send(make_message())
        assert network.has_in_flight()
        network.advance_round()
        network.receive("bob")
        assert not network.has_in_flight()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            InMemoryTransport(latency=-1)
        with pytest.raises(ValueError):
            InMemoryTransport(drop_probability=1.5)


class TestLossModel:
    def test_all_messages_dropped_at_probability_one(self):
        network = InMemoryTransport(drop_probability=1.0, seed=3)
        network.register("alice")
        network.register("bob")
        assert network.send(make_message()) is False
        network.advance_round()
        assert network.receive("bob") == []
        assert network.stats.messages_dropped == 1

    def test_seeded_drops_are_reproducible(self):
        outcomes = []
        for _ in range(2):
            network = InMemoryTransport(drop_probability=0.5, seed=123)
            network.register("a")
            network.register("b")
            outcomes.append([network.send(make_message("a", "b", i)) for i in range(20)])
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])


class TestAccounting:
    def test_stats_counters(self):
        network = InMemoryTransport()
        network.register("alice")
        network.register("bob")
        network.send(make_message())
        network.send(make_message())
        stats = network.stats
        assert stats.messages_sent == 2
        assert stats.payload_items == 2
        assert stats.by_kind["FactMessage"] == 2
        assert stats.by_link[("alice", "bob")] == 2
        as_dict = stats.as_dict()
        assert as_dict["by_link"]["alice->bob"] == 2

    def test_send_all(self):
        network = InMemoryTransport()
        network.register("alice")
        network.register("bob")
        queued = network.send_all([make_message(value=i) for i in range(3)])
        assert queued == 3

    def test_reset_stats(self):
        network = InMemoryTransport()
        network.register("alice")
        network.register("bob")
        network.send(make_message())
        old = network.reset_stats()
        assert old.messages_sent == 1
        assert network.stats.messages_sent == 0


class TestDeprecatedAlias:
    def test_inmemorynetwork_is_inmemorytransport(self):
        assert InMemoryNetwork is InMemoryTransport
