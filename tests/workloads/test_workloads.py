"""Tests of the workload generators and traces."""

import pytest

from repro.core.errors import WorkloadError
from repro.wepic.scenario import build_demo_scenario
from repro.workloads.generator import (
    WorkloadConfig,
    ZipfSampler,
    attendee_names,
    generate_workload,
    load_workload,
)
from repro.workloads.traces import TraceEvent, WorkloadTrace, generate_trace


class TestAttendeeNames:
    def test_distinct_names(self):
        names = attendee_names(50)
        assert len(names) == 50
        assert len(set(names)) == 50

    def test_deterministic(self):
        assert attendee_names(10) == attendee_names(10)

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            attendee_names(-1)


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(attendees=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(selection_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadConfig(picture_size=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(facebook_authorization_fraction=-0.1)


class TestGenerateWorkload:
    def test_sizes_match_config(self, small_workload):
        workload = small_workload
        assert len(workload.attendees) == 3
        assert workload.total_pictures() == 6
        assert all(len(lib) == 2 for lib in workload.libraries.values())
        assert len(workload.ratings) == 3 * 2
        assert len(workload.comments) == 3
        assert len(workload.tags) == 3

    def test_deterministic_for_same_seed(self):
        config = WorkloadConfig(attendees=4, pictures_per_attendee=3, seed=99)
        first = generate_workload(config)
        second = generate_workload(config)
        assert first.ratings == second.ratings
        assert first.selections == second.selections
        assert [p.name for p in first.all_pictures()] == [p.name for p in second.all_pictures()]

    def test_different_seeds_differ(self):
        base = WorkloadConfig(attendees=4, pictures_per_attendee=3, seed=1)
        other = WorkloadConfig(attendees=4, pictures_per_attendee=3, seed=2)
        assert generate_workload(base).ratings != generate_workload(other).ratings

    def test_picture_ids_globally_unique(self, small_workload):
        ids = [p.picture_id for p in small_workload.all_pictures()]
        assert len(ids) == len(set(ids))

    def test_selections_never_include_self(self, small_workload):
        for attendee, selected in small_workload.selections.items():
            assert attendee not in selected

    def test_authorizations_reference_owned_pictures(self, small_workload):
        for attendee, picture_ids in small_workload.facebook_authorizations.items():
            owned = set(small_workload.libraries[attendee].ids())
            assert set(picture_ids) <= owned

    def test_accessors(self, small_workload):
        attendee = small_workload.attendees[0]
        assert small_workload.pictures_of(attendee) is small_workload.libraries[attendee]
        assert all(r.author == attendee for r in small_workload.ratings_of(attendee))


class TestLoadWorkload:
    def test_load_into_scenario(self, small_workload):
        scenario = build_demo_scenario(attendees=small_workload.attendees,
                                       pictures_per_attendee=0)
        load_workload(scenario, small_workload)
        summary = scenario.run()
        assert summary.converged
        for attendee in small_workload.attendees:
            app = scenario.app(attendee)
            assert len(app.local_pictures()) == 2
            assert app.selected_attendees()

    def test_load_adds_missing_attendees(self, small_workload):
        scenario = build_demo_scenario(attendees=small_workload.attendees[:1],
                                       pictures_per_attendee=0)
        load_workload(scenario, small_workload, apply_annotations=False)
        assert set(scenario.attendees()) == set(small_workload.attendees)


class TestTraces:
    def test_event_validation(self):
        with pytest.raises(WorkloadError):
            TraceEvent("teleport", "Jules")
        event = TraceEvent("select", "Jules", ("Emilien",))
        assert "select" in str(event)

    def test_generate_trace_is_deterministic(self):
        first = generate_trace(attendees=3, events=15, seed=5)
        second = generate_trace(attendees=3, events=15, seed=5)
        assert [str(e) for e in first] == [str(e) for e in second]
        assert len(first) == 15

    def test_counts_by_kind(self):
        trace = generate_trace(attendees=3, events=30, seed=5)
        counts = trace.counts_by_kind()
        assert sum(counts.values()) == 30
        assert counts.get("upload", 0) >= 1

    def test_replay_against_scenario(self):
        trace = generate_trace(attendees=2, events=10, seed=3)
        scenario = build_demo_scenario(attendees=("Emilien", "Jules"),
                                       pictures_per_attendee=0)
        stats = trace.replay(scenario)
        assert stats["events"] == 10
        assert stats["rounds"] >= 1

    def test_replay_with_joins(self):
        trace = generate_trace(attendees=2, events=12, seed=3, join_probability=0.4)
        assert trace.counts_by_kind().get("join", 0) >= 1
        scenario = build_demo_scenario(attendees=("Emilien", "Jules"),
                                       pictures_per_attendee=0)
        stats = trace.replay(scenario)
        assert stats["events"] == 12
        assert len(scenario.attendees()) > 2

    def test_manual_trace_customisation_event(self):
        scenario = build_demo_scenario(pictures_per_attendee=1)
        trace = WorkloadTrace()
        trace.append(TraceEvent("select", "Jules", ("Emilien",)))
        trace.append(TraceEvent("customize_rating_filter", "Jules", (5,)))
        trace.append(TraceEvent("reset_rule", "Jules"))
        stats = trace.replay(scenario, run_between_events=True)
        assert stats["events"] == 3


class TestZipfSampler:
    def test_deterministic_for_same_rng_seed(self):
        import random
        a = ZipfSampler(100, 1.1, random.Random(5)).sample_many(200)
        b = ZipfSampler(100, 1.1, random.Random(5)).sample_many(200)
        assert a == b

    def test_skew_concentrates_on_head(self):
        import random
        draws = ZipfSampler(1000, 1.2, random.Random(9)).sample_many(5000)
        head = sum(1 for rank in draws if rank < 10)
        # Under a uniform law the top-10 ranks would get ~1% of the draws;
        # Zipf(1.2) over 1000 ranks gives them the large majority.
        assert head > len(draws) * 0.4
        assert all(0 <= rank < 1000 for rank in draws)

    def test_exponent_zero_is_uniform(self):
        import random
        draws = ZipfSampler(10, 0.0, random.Random(1)).sample_many(5000)
        counts = [draws.count(rank) for rank in range(10)]
        assert min(counts) > 300  # every rank drawn roughly equally

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, 1.0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, -0.5)
        with pytest.raises(WorkloadError):
            WorkloadConfig(popularity_exponent=-1.0)

    def test_workload_fanout_follows_exponent(self):
        flat = generate_workload(WorkloadConfig(
            attendees=8, pictures_per_attendee=20, ratings_per_attendee=40,
            picture_size=1, seed=11))
        skewed = generate_workload(WorkloadConfig(
            attendees=8, pictures_per_attendee=20, ratings_per_attendee=40,
            picture_size=1, popularity_exponent=1.5, seed=11))

        def top_share(workload):
            counts = {}
            for rating in workload.ratings:
                counts[rating.picture_id] = counts.get(rating.picture_id, 0) + 1
            ranked = sorted(counts.values(), reverse=True)
            top = sum(ranked[:5])
            return top / len(workload.ratings)

        assert top_share(skewed) > top_share(flat) * 1.5

    def test_exponent_zero_matches_historical_stream(self):
        """The knob is opt-in: exponent 0 reproduces the exact pre-knob
        workload for a given seed (same rng consumption)."""
        a = generate_workload(WorkloadConfig(attendees=4, seed=42))
        b = generate_workload(WorkloadConfig(attendees=4, seed=42,
                                             popularity_exponent=0.0))
        assert a.ratings == b.ratings and a.tags == b.tags
