"""Subscriptions: exactly one callback per fact that becomes visible."""

from repro.api import system

JULES = """
collection extensional persistent selectedAttendee@Jules(attendee);
collection intensional attendeePictures@Jules(id, name);
fact selectedAttendee@Jules("Emilien");
rule attendeePictures@Jules($id, $n) :-
    selectedAttendee@Jules($a), pictures@$a($id, $n);
"""

EMILIEN = """
collection extensional persistent pictures@Emilien(id, name);
fact pictures@Emilien(1, "sea.jpg");
fact pictures@Emilien(2, "boat.jpg");
"""


def build_quickstart():
    return (system()
            .peer("Jules").program(JULES)
            .peer("Emilien").program(EMILIEN)
            .build())


class TestExactlyOnce:
    def test_one_callback_per_derived_fact(self):
        built = build_quickstart()
        fired = []
        built.subscribe("attendeePictures", fired.append, peer="Jules")
        built.run()
        assert sorted(f.values for f in fired) == [(1, "sea.jpg"), (2, "boat.jpg")]

    def test_no_refire_on_further_runs(self):
        built = build_quickstart()
        fired = []
        sub = built.subscribe("attendeePictures", fired.append, peer="Jules")
        built.run()
        count_after_first = len(fired)
        built.run()
        built.run_rounds(3)
        assert len(fired) == count_after_first == sub.delivered == 2

    def test_incremental_facts_fire_incrementally(self):
        built = build_quickstart()
        fired = []
        built.subscribe("attendeePictures", fired.append, peer="Jules")
        built.run()
        assert len(fired) == 2
        built.peer("Emilien").insert('pictures@Emilien(3, "poster.jpg")')
        built.run()
        assert len(fired) == 3
        assert fired[-1].values == (3, "poster.jpg")

    def test_retracted_then_rederived_fact_fires_again(self):
        built = build_quickstart()
        fired = []
        built.subscribe("attendeePictures", fired.append, peer="Jules")
        built.run()
        jules = built.peer("Jules")
        jules.delete('selectedAttendee@Jules("Emilien")')
        built.run()
        assert len(built.query("Jules", "attendeePictures")) == 0
        jules.insert('selectedAttendee@Jules("Emilien")')
        built.run()
        # The two pictures became visible twice: once per derivation episode.
        assert len(fired) == 4


class TestScopesAndLifecycle:
    def test_existing_facts_do_not_fire_by_default(self):
        built = build_quickstart()
        built.run()
        fired = []
        built.subscribe("attendeePictures", fired.append, peer="Jules")
        built.run()
        assert fired == []

    def test_include_existing_fires_for_current_facts(self):
        built = build_quickstart()
        built.run()
        fired = []
        built.subscribe("attendeePictures", fired.append, peer="Jules",
                        include_existing=True)
        built.run()
        assert len(fired) == 2

    def test_unscoped_subscription_watches_every_peer(self):
        built = (system()
                 .peer("alice").program("""
                 collection extensional persistent notes@alice(text);
                 rule copy@bob($t) :- notes@alice($t);
                 """)
                 .peer("bob").program(
                     "collection extensional persistent copy@bob(text);")
                 .build())
        fired = []
        built.subscribe("notes", fired.append)  # every hosting peer
        built.peer("alice").insert('notes@alice("hi")')
        built.run()
        assert [f.peer for f in fired] == ["alice"]

    def test_cancel_stops_firing(self):
        built = build_quickstart()
        fired = []
        sub = built.subscribe("attendeePictures", fired.append, peer="Jules")
        sub.cancel()
        built.run()
        assert fired == [] and sub.delivered == 0

    def test_unsubscribe_removes_the_subscription(self):
        built = build_quickstart()
        fired = []
        sub = built.subscribe("attendeePictures", fired.append, peer="Jules")
        built.unsubscribe(sub)
        built.run()
        assert fired == []

    def test_peer_handle_subscribe_shortcut(self):
        built = build_quickstart()
        fired = []
        built.peer("Jules").subscribe("attendeePictures", fired.append)
        built.run()
        assert len(fired) == 2


class TestQueryHandles:
    def test_handle_is_live_across_runs(self):
        built = build_quickstart()
        view = built.query("Jules", "attendeePictures")
        assert len(view) == 0 and not view
        built.run()
        assert len(view) == 2 and view
        assert view.first() is not None
        assert sorted(view.rows()) == [(1, "sea.jpg"), (2, "boat.jpg")]
        assert [f.values for f in view.sorted()] == [(1, "sea.jpg"), (2, "boat.jpg")]


class TestCancelIdempotency:
    """Regression: cancelling a subscription twice (or after the facade
    already dropped it) must be a no-op, never an error."""

    def test_cancel_twice_is_a_noop(self):
        built = build_quickstart()
        fired = []
        sub = built.subscribe("attendeePictures", fired.append)
        sub.cancel()
        sub.cancel()  # must not raise
        assert not sub.active
        built.converge()
        assert fired == []

    def test_cancel_after_unsubscribe_is_a_noop(self):
        built = build_quickstart()
        sub = built.subscribe("attendeePictures", lambda fact: None)
        built.unsubscribe(sub)
        sub.cancel()
        built.unsubscribe(sub)  # and the reverse order, for good measure
        assert sub not in built._subscriptions

    def test_cancel_detaches_from_the_facade(self):
        built = build_quickstart()
        sub = built.subscribe("attendeePictures", lambda fact: None)
        assert sub in built._subscriptions
        sub.cancel()
        assert sub not in built._subscriptions

    def test_cancel_after_peers_are_gone(self):
        built = build_quickstart()
        sub = built.subscribe("attendeePictures", lambda fact: None)
        for name in built.peer_names():
            built.remove_peer(name)
        sub.cancel()
        sub.cancel()
        assert not sub.active

    def test_cancelled_subscription_ignores_on_remove(self):
        built = build_quickstart()
        removed = []
        sub = built.subscribe("attendeePictures", lambda fact: None,
                              on_remove=removed.append)
        built.converge()
        sub.cancel()
        built.peer("Jules").delete('selectedAttendee@Jules("Emilien")')
        built.converge()
        assert removed == []
