"""Builder round-trips: what the chain declares is what the system runs."""

import pytest

from repro.api import BuildError, PeerHandle, System, system
from repro.core.facts import Fact
from repro.core.schema import RelationKind, RelationSchema
from repro.wrappers.email import EmailService, EmailWrapper

QUICKSTART_JULES = """
collection extensional persistent selectedAttendee@Jules(attendee);
collection intensional attendeePictures@Jules(id, name);
fact selectedAttendee@Jules("Emilien");
rule attendeePictures@Jules($id, $n) :-
    selectedAttendee@Jules($a), pictures@$a($id, $n);
"""

QUICKSTART_EMILIEN = """
collection extensional persistent pictures@Emilien(id, name);
fact pictures@Emilien(1, "sea.jpg");
fact pictures@Emilien(2, "boat.jpg");
"""


class TestPeerRoundTrips:
    def test_programs_rules_and_facts_reach_the_peers(self):
        built = (system()
                 .peer("Jules").program(QUICKSTART_JULES)
                 .peer("Emilien").program(QUICKSTART_EMILIEN)
                 .build())
        assert isinstance(built, System)
        assert built.peer_names() == ("Emilien", "Jules")
        assert len(built.peer("Jules").rules()) == 1
        assert built.peer("Emilien").query("pictures").facts() != ()
        built.run()
        assert sorted(built.query("Jules", "attendeePictures").rows()) == [
            (1, "sea.jpg"), (2, "boat.jpg"),
        ]

    def test_schema_fact_and_rule_builders(self):
        schema = RelationSchema(name="friends", peer="alice", columns=("name",),
                                kind=RelationKind.EXTENSIONAL, persistent=True)
        built = (system()
                 .peer("alice")
                 .schema(schema)
                 .fact(Fact("friends", "alice", ("bob",)))
                 .rule("buddies@alice($x) :- friends@alice($x)")
                 .build())
        built.run()
        assert built.query("alice", "buddies").rows() == (("bob",),)

    def test_trusts_round_trip(self):
        built = (system()
                 .control_delegation()
                 .peer("alice").trusts("bob", "carol")
                 .peer("bob")
                 .build())
        trust = built.peer("alice").unwrap().controller.trust
        assert trust.is_trusted("bob") and trust.is_trusted("carol")
        assert not built.peer("bob").unwrap().controller.trust.is_trusted("alice")

    def test_default_trusted_applies_to_every_peer(self):
        built = (system()
                 .default_trusted("sigmod")
                 .peer("alice")
                 .peer("bob")
                 .build())
        for name in ("alice", "bob"):
            assert built.peer(name).unwrap().controller.trust.is_trusted("sigmod")

    def test_wrapper_round_trip(self):
        service = EmailService()
        wrapper = EmailWrapper(service)
        built = system().peer("alice").wrapper(wrapper).build()
        assert wrapper in built.peer("alice").unwrap().wrappers

    def test_control_delegation_queues_untrusted_rules(self):
        built = (system()
                 .control_delegation()
                 .peer("Jules").program(QUICKSTART_JULES)
                 .peer("Emilien").program(QUICKSTART_EMILIEN)
                 .build())
        built.run()
        # Émilien has not approved Jules' delegation: the view stays empty.
        assert len(built.query("Jules", "attendeePictures")) == 0
        pending = built.peer("Emilien").pending_delegations()
        assert len(pending) == 1
        built.peer("Emilien").approve_all_delegations("Jules")
        built.run()
        assert len(built.query("Jules", "attendeePictures")) == 2


class TestChainErgonomics:
    def test_done_returns_the_system_builder(self):
        builder = system()
        assert builder.peer("alice").done() is builder

    def test_duplicate_peer_is_rejected(self):
        builder = system().peer("alice").done()
        with pytest.raises(BuildError):
            builder.peer("alice")

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(BuildError):
            system().backend("carrier-pigeon")

    def test_explicit_transport_conflicts_with_latency_knobs(self):
        from repro.api import InMemoryTransport

        builder = system().transport(InMemoryTransport()).latency(5).peer("a").done()
        with pytest.raises(BuildError):
            builder.build()

    def test_build_from_peer_scope(self):
        built = system().peer("alice").peer("bob").build()
        assert built.peer_names() == ("alice", "bob")


class TestFacade:
    def test_add_peer_at_runtime_returns_handle(self):
        built = system().peer("alice").build()
        handle = built.add_peer("bob")
        assert isinstance(handle, PeerHandle)
        assert "bob" in built and len(built) == 2

    def test_peer_handle_is_cached(self):
        built = system().peer("alice").build()
        assert built.peer("alice") is built.peer("alice")

    def test_handle_insert_delete_and_query(self):
        built = system().peer("alice").program(
            "collection extensional persistent notes@alice(text);"
        ).build()
        alice = built.peer("alice")
        alice.insert('notes@alice("hello")')
        view = alice.query("notes")
        assert view.rows() == (("hello",),)
        alice.delete('notes@alice("hello")')
        assert view.rows() == ()

    def test_totals_and_stats_exposed(self):
        built = (system()
                 .peer("Jules").program(QUICKSTART_JULES)
                 .peer("Emilien").program(QUICKSTART_EMILIEN)
                 .build())
        summary = built.run()
        assert summary.converged
        assert built.stats.messages_sent > 0
        assert built.totals()["peers"] == 2
