"""Transport pluggability: the orchestrator only sees the protocol."""

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import pytest

from repro.api import (
    InMemoryTransport,
    RecordingTransport,
    Transport,
    system,
)
from repro.core.errors import TransportError
from repro.runtime.inmemory import NetworkStats
from repro.runtime.messages import Message

JULES = """
collection extensional persistent selectedAttendee@Jules(attendee);
collection intensional attendeePictures@Jules(id, name);
fact selectedAttendee@Jules("Emilien");
rule attendeePictures@Jules($id, $n) :-
    selectedAttendee@Jules($a), pictures@$a($id, $n);
"""

EMILIEN = """
collection extensional persistent pictures@Emilien(id, name);
fact pictures@Emilien(1, "sea.jpg");
fact pictures@Emilien(2, "boat.jpg");
"""


def build_quickstart(transport=None):
    builder = system()
    if transport is not None:
        builder.transport(transport)
    return (builder
            .peer("Jules").program(JULES)
            .peer("Emilien").program(EMILIEN)
            .build())


class ZeroLatencyTransport:
    """A minimal from-scratch Transport written against the protocol only.

    Messages become visible at the recipient's next ``receive`` call (no
    round buffering at all) — a semantics *different* from the in-memory
    transport's, proving the orchestrator never assumes the implementation.
    """

    def __init__(self):
        self._registered: Dict[str, str] = {}
        self._queues: Dict[str, List[Message]] = defaultdict(list)
        self.stats = NetworkStats()
        self._round = 0

    def register(self, peer: str, address: Optional[str] = None) -> None:
        self._registered[peer] = address or peer

    def unregister(self, peer: str) -> None:
        self._registered.pop(peer, None)
        self._queues.pop(peer, None)

    def peers(self) -> Tuple[str, ...]:
        return tuple(sorted(self._registered))

    def is_registered(self, peer: str) -> bool:
        return peer in self._registered

    def send(self, message: Message) -> bool:
        if message.recipient not in self._registered:
            raise TransportError(f"unknown peer {message.recipient!r}")
        self.stats.messages_sent += 1
        self.stats.payload_items += message.payload_size()
        self._queues[message.recipient].append(message)
        return True

    def send_all(self, messages) -> int:
        return sum(1 for m in messages if self.send(m))

    def receive(self, peer: str) -> List[Message]:
        delivered = self._queues.pop(peer, [])
        self.stats.messages_delivered += len(delivered)
        return delivered

    def advance_round(self) -> int:
        self._round += 1
        return self._round

    def pending_count(self, peer: Optional[str] = None) -> int:
        if peer is not None:
            return len(self._queues.get(peer, []))
        return sum(len(q) for q in self._queues.values())

    def has_in_flight(self) -> bool:
        return self.pending_count() > 0

    def reset_stats(self) -> NetworkStats:
        stats = self.stats
        self.stats = NetworkStats()
        return stats


class TestProtocol:
    def test_shipped_transports_satisfy_the_protocol(self):
        assert isinstance(InMemoryTransport(), Transport)
        assert isinstance(RecordingTransport(InMemoryTransport()), Transport)
        assert isinstance(ZeroLatencyTransport(), Transport)


class TestTransportSwap:
    def test_recording_transport_reaches_the_same_fixpoint(self):
        plain = build_quickstart()
        recorded = build_quickstart(RecordingTransport(InMemoryTransport()))
        summary_plain = plain.run()
        summary_recorded = recorded.run()
        assert summary_plain.converged and summary_recorded.converged
        assert summary_plain.round_count == summary_recorded.round_count
        assert plain.snapshot() == recorded.snapshot()
        assert plain.stats.messages_sent == recorded.stats.messages_sent

    def test_zero_latency_transport_reaches_the_same_fixpoint(self):
        plain = build_quickstart()
        fast = build_quickstart(ZeroLatencyTransport())
        plain.run()
        fast.run()
        assert plain.snapshot() == fast.snapshot()

    def test_recording_transport_logs_sends_and_deliveries(self):
        transport = RecordingTransport(InMemoryTransport())
        built = build_quickstart(transport)
        built.run()
        sends = transport.events_of("send")
        delivers = transport.events_of("deliver")
        assert len(sends) == built.stats.messages_sent
        assert len(delivers) == built.stats.messages_delivered
        # Jules' delegation travelled to Émilien; the derived facts came back.
        assert any(e.peer == "Emilien" for e in sends)
        assert any(e.peer == "Jules" for e in delivers)

    def test_recording_transport_clear_events(self):
        transport = RecordingTransport(InMemoryTransport())
        built = build_quickstart(transport)
        built.run()
        events = transport.clear_events()
        assert events and transport.events == []


class TestScenarioTransportInjection:
    def test_demo_scenario_accepts_a_transport(self):
        from repro.wepic.scenario import build_demo_scenario

        recording = RecordingTransport(InMemoryTransport())
        scenario = build_demo_scenario(pictures_per_attendee=1,
                                       transport=recording)
        scenario.run()
        assert scenario.api.transport is recording
        assert recording.events_of("send")
        # Same topology over the default transport converges identically.
        baseline = build_demo_scenario(pictures_per_attendee=1)
        baseline.run()
        assert baseline.system.snapshot() == scenario.system.snapshot()
