"""Declarative queries compiled into incrementally-maintained live views."""

import pytest

from repro.api import LiveView, QueryHandle, ReproApiError, system
from repro.core.parser import parse_atom, parse_rule

Q_PROGRAM = """
collection extensional persistent a@q(x);
collection extensional persistent c@q(x);
collection extensional persistent score@q(x, points);
"""

R_PROGRAM = """
collection extensional persistent b@r(x, y);
"""


def build_pair():
    return (system()
            .peer("q").program(Q_PROGRAM)
            .peer("r").program(R_PROGRAM)
            .build())


def seed(deployment):
    q, r = deployment.peer("q"), deployment.peer("r")
    for value in (1, 2, 3):
        q.insert(f"a@q({value})")
    q.insert("c@q(2)")
    r.insert("b@r(1, 10)")
    r.insert("b@r(1, 11)")
    r.insert("b@r(3, 30)")
    deployment.converge()


class TestDegenerateQueries:
    def test_single_relation_query_returns_a_live_view(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query("q", "a")
        assert isinstance(view, LiveView)
        assert isinstance(view, QueryHandle)  # drop-in for the old handle
        assert sorted(view.rows()) == [(1,), (2,), (3,)]
        # Reads are live: the same handle reflects later changes.
        deployment.peer("q").insert("a@q(4)")
        deployment.converge()
        assert (4,) in view.rows()

    def test_peer_is_the_location_qualifier(self):
        # peer= names which relation is meant (rel@peer), not a remote fetch:
        # facts of a relation located at another peer are never visible
        # locally, so a remote qualifier yields the empty relation.
        deployment = build_pair()
        seed(deployment)
        assert deployment.query("q", "a", peer="q").rows() == \
            deployment.query("q", "a").rows()
        assert deployment.query("q", "b", peer="r").facts() == ()

    def test_unknown_target_peer_raises_api_error(self):
        deployment = build_pair()
        with pytest.raises(ReproApiError, match="unknown peer 'nobody'"):
            deployment.query("nobody", "a")
        with pytest.raises(ReproApiError, match="unknown peer 'ghost'"):
            deployment.query("q", "a", peer="ghost")
        with pytest.raises(ReproApiError, match="unknown peer"):
            deployment.peer("q").query("a", peer="ghost")

    def test_location_qualifier_rejected_for_declarative_queries(self):
        deployment = build_pair()
        with pytest.raises(ReproApiError, match="location qualifier"):
            deployment.query("q", "a@q($x), c@q($x)", peer="r")

    def test_facts_shim_is_deprecated(self):
        deployment = build_pair()
        seed(deployment)
        with pytest.warns(DeprecationWarning, match="LiveView"):
            facts = deployment.peer("q").facts("a")
        assert len(facts) == 4 or len(facts) == 3  # live data either way


class TestCompiledViews:
    def test_join_negation_and_remote_literal(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query(
            "q", "ans($x, $y) :- a@q($x), not c@q($x), b@r($x, $y)")
        deployment.converge()
        assert sorted(view.rows()) == [(1, 10), (1, 11), (3, 30)]

    def test_body_only_query_projects_all_variables(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query("q", "a@q($x), score@q($x, $p)")
        deployment.peer("q").insert("score@q(1, 7)")
        deployment.converge()
        assert view.rows() == ((1, 7),)

    def test_bound_argument_query(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query("q", "a@q($x), c@q(2), score@q($x, 7)")
        deployment.peer("q").insert("score@q(3, 7)")
        deployment.peer("q").insert("score@q(1, 9)")
        deployment.converge()
        assert view.rows() == ((3,),)

    def test_atom_and_rule_objects_are_accepted(self):
        deployment = build_pair()
        seed(deployment)
        atom_view = deployment.query("q", parse_atom("a@q($x)"))
        rule_view = deployment.query(
            "q", parse_rule("ans($x) :- a@q($x), not c@q($x)",
                            default_peer="q"))
        deployment.converge()
        assert sorted(atom_view.rows()) == [(1,), (2,), (3,)]
        assert sorted(rule_view.rows()) == [(1,), (3,)]

    def test_custom_view_name(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query("q", "ans($x) :- a@q($x)", name="wall")
        assert view.name == "wall"
        deployment.converge()
        assert deployment.runtime.peer("q").query("wall") == view.facts()

    def test_view_maintenance_stays_incremental_under_churn(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query(
            "q", "ans($x, $y) :- a@q($x), not c@q($x), b@r($x, $y)")
        deployment.converge()  # installation settles (full stage expected)
        engine = deployment.runtime.peer("q").engine
        full_before = engine.eval_counters["stages_full"]
        deployment.peer("r").insert("b@r(1, 12)")
        deployment.converge()
        assert sorted(view.rows()) == [(1, 10), (1, 11), (1, 12), (3, 30)]
        deployment.peer("r").delete("b@r(1, 10)")
        deployment.converge()
        assert sorted(view.rows()) == [(1, 11), (1, 12), (3, 30)]
        deployment.peer("q").insert("c@q(3)")
        deployment.converge()
        assert sorted(view.rows()) == [(1, 11), (1, 12)]
        # The owner absorbed all churn on the delta/rederive paths.
        assert engine.eval_counters["stages_full"] == full_before

    def test_malformed_and_unsafe_queries_raise_api_errors(self):
        deployment = build_pair()
        with pytest.raises(ReproApiError, match="cannot parse"):
            deployment.query("q", "a@q($x), :-")
        with pytest.raises(ReproApiError, match="unsafe query"):
            deployment.query("q", "ans($y) :- a@q($x)")
        with pytest.raises(ReproApiError, match="cannot interpret"):
            deployment.query("q", 42)

    def test_conflicting_view_name_raises_api_error(self):
        deployment = build_pair()
        with pytest.raises(ReproApiError, match="cannot install view"):
            deployment.query("q", "ans($x, $y) :- score@q($x, $y)", name="a")

    def test_open_views_registry(self):
        deployment = build_pair()
        assert deployment.open_views() == ()
        view = deployment.query("q", "ans($x) :- a@q($x)")
        assert deployment.open_views() == (view,)
        view.close()
        assert deployment.open_views() == ()


class TestAggregates:
    def test_grouped_aggregates(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query(
            "q", "stats($x, count($y), avg($y)) :- a@q($x), b@r($x, $y)")
        deployment.converge()
        assert sorted(view.rows()) == [(1, 2, 10.5), (3, 1, 30.0)]
        deployment.peer("r").insert("b@r(3, 40)")
        deployment.converge()
        assert sorted(view.rows()) == [(1, 2, 10.5), (3, 2, 35.0)]

    def test_aggregate_support_columns_preserve_multiplicity(self):
        # Two score facts with the same value for the same x must both count:
        # the raw view keeps one tuple per body substitution.
        deployment = build_pair()
        deployment.peer("q").insert("score@q(1, 7)")
        deployment.peer("q").insert("score@q(2, 7)")
        view = deployment.query(
            "q", "total(count($p)) :- score@q($x, $p)")
        deployment.converge()
        assert view.rows() == ((2,),)

    def test_min_max_sum(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query(
            "q", "extremes(min($y), max($y), sum($y)) :- b@r($x, $y), a@q($x)")
        deployment.converge()
        assert view.rows() == ((10, 30, 51),)


class TestOnChange:
    def test_add_and_remove_callbacks(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query("q", "ans($x) :- a@q($x), not c@q($x)")
        deployment.converge()
        added, removed = [], []
        view.on_change(added.append, removed.append)
        deployment.peer("q").insert("a@q(9)")
        deployment.converge()
        assert [f.values for f in added] == [(9,)]
        deployment.peer("q").insert("c@q(9)")
        deployment.converge()
        assert [f.values for f in removed] == [(9,)]

    def test_include_existing_replays_current_answers(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query("q", "ans($x) :- a@q($x)")
        deployment.converge()
        seen = []
        view.on_change(seen.append, include_existing=True)
        deployment.converge()
        assert sorted(f.values for f in seen) == [(1,), (2,), (3,)]

    def test_on_change_rejected_after_close(self):
        deployment = build_pair()
        view = deployment.query("q", "ans($x) :- a@q($x)")
        view.close()
        with pytest.raises(ReproApiError, match="closed"):
            view.on_change(lambda fact: None)


class TestClose:
    def test_close_leaves_no_residue(self):
        deployment = build_pair()
        seed(deployment)
        view = deployment.query(
            "q", "ans($x, $y) :- a@q($x), not c@q($x), b@r($x, $y)")
        deployment.converge()
        assert view.rows() != ()
        fired = []
        view.on_change(fired.append)
        rules_before_install = 0
        view.close()
        q = deployment.runtime.peer("q")
        r = deployment.runtime.peer("r")
        # No residual rules at the owner, no residual delegations at the
        # remote peer, no residual derived/provided view facts, and the
        # view's subscription is gone.
        assert len(q.rules()) == rules_before_install
        assert tuple(r.engine.installed_delegations()) == ()
        assert q.query(view.name) == ()
        assert deployment._subscriptions == []
        assert view.facts() == ()
        # Closed views stay closed; closing again is a no-op.
        view.close()
        deployment.peer("q").insert("a@q(9)")
        deployment.converge()
        assert fired == []
        assert q.query(view.name) == ()

    def test_close_retracts_magic_predicates_and_anchor(self):
        """A magic-rewritten view must close to zero: no scoped aux
        relations, no magic/demand predicates, no demand-anchor EDB fact,
        no rules — only the user's extensional facts survive."""
        deployment = (system().planner("magic")
                      .peer("q").program(Q_PROGRAM)
                      .peer("r").program(R_PROGRAM)
                      .build())
        seed(deployment)
        for src, dst in ((1, 2), (2, 3), (3, 4), (8, 9)):
            deployment.peer("q").insert(f"score@q({src}, {dst})")
        view = deployment.query(
            "q",
            "reach($x, $y) :- score@q($x, $y); "
            "reach($x, $z) :- reach($x, $y), score@q($y, $z); "
            "ans($y) :- reach(1, $y)")
        deployment.converge()
        assert view.rows() != ()
        plan = view.plan()
        assert plan["magic_relations"], "magic rewrite did not fire"
        q = deployment.runtime.peer("q")
        occupied = {relation for relation, facts
                    in deployment.peer("q").snapshot().items() if facts}
        assert any(relation.startswith("_magic_") for relation in occupied)
        assert any(relation.startswith("_demand_") for relation in occupied)
        view.close()
        deployment.converge()
        for relation, facts in deployment.peer("q").snapshot().items():
            if relation.startswith(("_view", "_magic_", "_demand_")):
                assert facts == (), f"residue in {relation}"
        assert len(q.rules()) == 0
        # Anchor fact is gone from persistent storage, not just derivation.
        assert all(not relation.startswith("_demand_")
                   for relation, facts
                   in deployment.peer("q").snapshot().items() if facts)

    def test_close_is_a_context_manager_exit(self):
        deployment = build_pair()
        seed(deployment)
        with deployment.query("q", "ans($x) :- a@q($x)") as view:
            deployment.converge()
            assert view.rows() != ()
        assert view.closed
        assert deployment.runtime.peer("q").rules() == ()

    def test_independent_views_survive_a_sibling_close(self):
        deployment = build_pair()
        seed(deployment)
        first = deployment.query("q", "ans($x) :- a@q($x)")
        second = deployment.query("q", "ans($x) :- a@q($x), not c@q($x)")
        deployment.converge()
        first.close()
        assert sorted(second.rows()) == [(1,), (3,)]
        deployment.peer("q").insert("a@q(5)")
        deployment.converge()
        assert (5,) in second.rows()
        second.close()


class TestViewerFiltering:
    def test_viewer_requires_grants_on_lineage(self):
        deployment = (system()
                      .provenance()
                      .peer("q").program(Q_PROGRAM)
                      .peer("r").program(R_PROGRAM)
                      .build())
        seed(deployment)
        view = deployment.query("q", "ans($x) :- a@q($x), not c@q($x)",
                                viewer="bob")
        deployment.converge()
        assert view.facts() == ()  # bob may not read a@q yet
        deployment.peer("q").grant("a", "bob")
        assert sorted(view.rows()) == [(1,), (3,)]
        deployment.access_policy("q").revoke("a@q", "bob")
        assert view.facts() == ()

    def test_owner_always_sees_its_own_view(self):
        deployment = (system()
                      .provenance()
                      .peer("q").program(Q_PROGRAM)
                      .peer("r").program(R_PROGRAM)
                      .build())
        seed(deployment)
        view = deployment.query("q", "ans($x) :- a@q($x)", viewer="q")
        deployment.converge()
        assert sorted(view.rows()) == [(1,), (2,), (3,)]

    def test_declassification_overrides_lineage_policy(self):
        deployment = (system()
                      .provenance()
                      .peer("q").program(Q_PROGRAM)
                      .peer("r").program(R_PROGRAM)
                      .build())
        seed(deployment)
        view = deployment.query("q", "ans($x) :- a@q($x)", name="wall",
                                viewer="bob")
        deployment.converge()
        assert view.facts() == ()
        deployment.peer("q").declassify("wall", "bob").grant("wall", "bob")
        assert sorted(view.rows()) == [(1,), (2,), (3,)]

    def test_on_change_respects_the_viewer(self):
        deployment = (system()
                      .provenance()
                      .peer("q").program(Q_PROGRAM)
                      .peer("r").program(R_PROGRAM)
                      .build())
        seed(deployment)
        view = deployment.query("q", "ans($x) :- a@q($x)", viewer="bob")
        deployment.converge()
        fired = []
        view.on_change(fired.append)
        deployment.peer("q").insert("a@q(8)")
        deployment.converge()
        assert fired == []  # not readable by bob
        deployment.peer("q").grant("a", "bob")
        deployment.peer("q").insert("a@q(9)")
        deployment.converge()
        assert [f.values for f in fired] == [(9,)]

    def test_on_remove_mirrors_delivered_adds(self):
        # Regression: the ACL decision is made at delivery time and
        # remembered — a retracted fact has no lineage left to re-check, so
        # re-checking at removal time would silently suppress the removal
        # and leave the observer with a stale answer.
        deployment = (system()
                      .provenance()
                      .peer("q").program(Q_PROGRAM).grant("a", "bob")
                      .peer("r").program(R_PROGRAM)
                      .build())
        seed(deployment)
        view = deployment.query("q", "ans($x) :- a@q($x)", viewer="bob")
        deployment.converge()
        added, removed = [], []
        view.on_change(added.append, removed.append, include_existing=True)
        deployment.converge()
        assert sorted(f.values for f in added) == [(1,), (2,), (3,)]
        deployment.peer("q").delete("a@q(2)")
        deployment.converge()
        assert [f.values for f in removed] == [(2,)]
        # The converse: an add the viewer never saw must not produce a remove.
        deployment.access_policy("q").revoke("a@q", "bob")
        deployment.peer("q").insert("a@q(9)")
        deployment.converge()
        deployment.peer("q").delete("a@q(9)")
        deployment.converge()
        assert [f.values for f in removed] == [(2,)]

    def test_builder_grants_and_declassification(self):
        deployment = (system()
                      .peer("q").program(Q_PROGRAM).grant("a", "bob")
                      .peer("r").program(R_PROGRAM)
                      .build())
        seed(deployment)
        # Without provenance the degenerate view checks the relation grant.
        view = deployment.peer("q").query("a", viewer="bob")
        assert sorted(view.rows()) == [(1,), (2,), (3,)]
        assert deployment.query("q", "a", viewer="eve").facts() == ()
