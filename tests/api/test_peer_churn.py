"""Peer churn leaves no residue: views, subscriptions, routes, handles.

Regression suite for the join → leave cycle.  A removed peer used to
leave closed-over observers and live views behind; re-adding a peer
under the same name would then fire stale callbacks.  ``remove_peer``
now detaches everything the facade attached.
"""

import pytest

from repro.api import system

JULES = '''
collection extensional persistent pictures@jules(pic);
fact pictures@jules("p1");
fact pictures@jules("p2");
'''

EMILIEN = '''
collection extensional persistent album@emilien(pic);
'''

PATRICK = '''
collection extensional persistent mirror@patrick(pic);
'''


def build_trio():
    deployment = (system()
                  .peer("jules").program(JULES)
                  .peer("emilien").program(EMILIEN)
                  .peer("patrick").program(PATRICK)
                  .build())
    deployment.peer("jules").add_rule(
        'rule album@emilien($p) :- pictures@jules($p);')
    deployment.peer("jules").add_rule(
        'rule mirror@patrick($p) :- pictures@jules($p);')
    deployment.converge()
    return deployment


def test_remove_peer_unregisters_transport_route():
    deployment = build_trio()
    assert deployment.transport.is_registered("patrick")
    deployment.remove_peer("patrick")
    assert not deployment.transport.is_registered("patrick")
    assert "patrick" not in deployment
    assert deployment.peer_names() == ("emilien", "jules")


def test_remove_peer_closes_its_live_views():
    deployment = build_trio()
    view = deployment.query("patrick", "mirror")
    assert view.rows()
    deployment.remove_peer("patrick")
    assert view.closed
    assert view not in deployment.open_views()


def test_remove_peer_cancels_its_subscriptions():
    deployment = build_trio()
    seen = []
    deployment.subscribe("mirror", seen.append, peer="patrick")
    deployment.remove_peer("patrick")
    # new upstream traffic must not fire the dead peer's callback
    deployment.peer("jules").insert('pictures@jules("p3")')
    deployment.converge()
    assert seen == []


def test_system_keeps_converging_after_leave():
    deployment = build_trio()
    deployment.remove_peer("patrick")
    deployment.peer("jules").insert('pictures@jules("p3")')
    summary = deployment.converge()
    assert summary.converged
    album = {f.values[0]
             for f in deployment.query("emilien", "album").facts()}
    assert album == {"p1", "p2", "p3"}


def test_reused_name_starts_clean():
    deployment = build_trio()
    events = []
    deployment.subscribe("mirror", events.append, peer="patrick")
    deployment.remove_peer("patrick")
    # a brand-new peer reuses the name: the old subscription must stay dead
    deployment.add_peer("patrick", program=PATRICK)
    deployment.peer("jules").insert('pictures@jules("p9")')
    deployment.converge()
    assert events == []
    mirror = {f.values[0]
              for f in deployment.query("patrick", "mirror").facts()}
    assert "p9" in mirror


def test_three_peer_join_then_leave_round_trip():
    """The full churn cycle: start at two, join a third, use it, leave."""
    deployment = (system()
                  .peer("jules").program(JULES)
                  .peer("emilien").program(EMILIEN)
                  .build())
    deployment.peer("jules").add_rule(
        'rule album@emilien($p) :- pictures@jules($p);')
    deployment.converge()

    deployment.add_peer("patrick", program=PATRICK)
    deployment.peer("jules").add_rule(
        'rule mirror@patrick($p) :- pictures@jules($p);')
    deployment.converge()
    mirror = deployment.query("patrick", "mirror")
    assert {f.values[0] for f in mirror.facts()} == {"p1", "p2"}

    deployment.remove_peer("patrick")
    deployment.peer("jules").insert('pictures@jules("p3")')
    assert deployment.converge().converged
    assert "patrick" not in deployment
    snapshot = deployment.snapshot()
    assert set(snapshot) == {"jules", "emilien"}


def test_close_releases_views_subscriptions_and_transport():
    deployment = build_trio()
    view = deployment.query("jules", "pictures")
    seen = []
    subscription = deployment.subscribe("album", seen.append, peer="emilien")
    deployment.close()
    assert view.closed
    assert not subscription.active
    assert deployment.open_views() == ()


def test_context_manager_closes_on_exit():
    with build_trio() as deployment:
        view = deployment.query("jules", "pictures")
    assert view.closed
