"""Streaming queries and delta-driven subscriptions."""

import pytest

from repro.api import system

JULES = """
collection extensional persistent selectedAttendee@Jules(attendee);
collection intensional attendeePictures@Jules(id, name);
fact selectedAttendee@Jules("Emilien");
rule attendeePictures@Jules($id, $n) :-
    selectedAttendee@Jules($a), pictures@$a($id, $n);
"""

EMILIEN = """
collection extensional persistent pictures@Emilien(id, name);
fact pictures@Emilien(1, "sea.jpg");
fact pictures@Emilien(2, "boat.jpg");
"""


def build_quickstart(scheduler="lockstep"):
    return (system()
            .scheduler(scheduler)
            .peer("Jules").program(JULES)
            .peer("Emilien").program(EMILIEN)
            .build())


class TestIterFacts:
    @pytest.mark.parametrize("scheduler", ["lockstep", "reactive"])
    def test_streams_facts_while_converging(self, scheduler):
        built = build_quickstart(scheduler)
        view = built.query("Jules", "attendeePictures")
        streamed = list(view.iter_facts())
        assert sorted(f.values for f in streamed) == [(1, "sea.jpg"), (2, "boat.jpg")]
        # The stream drove the system to its fixpoint.
        assert len(view) == 2

    def test_streams_existing_facts_on_a_converged_system(self):
        built = build_quickstart()
        built.converge()
        streamed = list(built.query("Jules", "attendeePictures").iter_facts())
        assert sorted(f.values for f in streamed) == [(1, "sea.jpg"), (2, "boat.jpg")]

    def test_stream_interleaves_with_execution(self):
        built = build_quickstart()
        rounds_at_yield = []
        for _ in built.query("Jules", "attendeePictures").iter_facts():
            rounds_at_yield.append(built.current_round)
        # Facts arrive mid-run, before the convergence-detection cycles end.
        assert rounds_at_yield
        final_round = built.current_round
        assert all(r < final_round for r in rounds_at_yield)

    def test_iteration_stops_at_fixpoint(self):
        built = build_quickstart()
        assert len(list(built.query("Jules", "attendeePictures").iter_facts())) == 2
        # A second stream over the converged system terminates immediately
        # with the same facts (include-existing), not a hung iterator.
        assert len(list(built.query("Jules", "attendeePictures").iter_facts())) == 2

    def test_detached_handle_falls_back_to_current_facts(self):
        built = build_quickstart()
        built.converge()
        handle = built.peer("Emilien").query("pictures", peer="Emilien")
        assert len(list(handle.iter_facts())) == 2


class TestDeltaDrivenSubscriptions:
    """Callbacks are fed from stage deltas, not round-boundary re-scans."""

    @pytest.mark.parametrize("scheduler", ["lockstep", "reactive"])
    def test_exactly_once_per_scheduler(self, scheduler):
        built = build_quickstart(scheduler)
        fired = []
        sub = built.subscribe("attendeePictures", fired.append, peer="Jules")
        built.converge()
        built.converge()
        assert sorted(f.values for f in fired) == [(1, "sea.jpg"), (2, "boat.jpg")]
        assert sub.delivered == 2

    def test_callback_fires_during_the_run_not_after(self):
        built = build_quickstart()
        rounds_at_fire = []
        built.subscribe("attendeePictures",
                        lambda fact: rounds_at_fire.append(built.current_round),
                        peer="Jules")
        summary = built.converge()
        assert len(rounds_at_fire) == 2
        # Delivered while converging, strictly before the final cycle.
        assert all(r < summary.rounds[-1].round_number for r in rounds_at_fire)

    def test_retraction_then_rederivation_fires_again_under_reactive(self):
        built = build_quickstart("reactive")
        fired = []
        built.subscribe("attendeePictures", fired.append, peer="Jules")
        built.converge()
        jules = built.peer("Jules")
        jules.delete('selectedAttendee@Jules("Emilien")')
        built.converge()
        assert len(built.query("Jules", "attendeePictures")) == 0
        jules.insert('selectedAttendee@Jules("Emilien")')
        built.converge()
        assert len(fired) == 4

    def test_include_existing_fires_when_execution_resumes(self):
        built = build_quickstart("reactive")
        built.converge()
        fired = []
        built.subscribe("attendeePictures", fired.append, peer="Jules",
                        include_existing=True)
        built.converge()
        assert len(fired) == 2

    def test_stage_scoped_delivery_reports_visible_deltas_only(self):
        built = build_quickstart()
        deltas = []
        built.runtime.add_stage_observer(
            lambda name, report: deltas.append((name, report.stage_result.visible_delta)))
        built.converge()
        jules_inserted = [f for name, d in deltas if name == "Jules"
                          for f in d.inserted if f.relation == "attendeePictures"]
        assert sorted(f.values for f in jules_inserted) == \
            [(1, "sea.jpg"), (2, "boat.jpg")]


class TestBuilderScheduler:
    def test_builder_configures_the_scheduler(self):
        built = build_quickstart("reactive")
        assert built.runtime.scheduler.name == "reactive"
        summary = built.converge()
        assert summary.scheduler == "reactive"

    def test_unknown_scheduler_is_a_build_error(self):
        from repro.api import BuildError
        with pytest.raises(BuildError, match="unknown scheduler"):
            system().scheduler("eager")

    def test_processes_backend_rejects_scheduler(self):
        from repro.api import BuildError
        with pytest.raises(BuildError, match="processes backend"):
            (system().backend("processes").scheduler("reactive")
             .peer("a").build())


class TestStreamingAcrossSchedulers:
    """iter_facts must stream under every execution driver, not just lockstep."""

    @pytest.mark.parametrize("scheduler", ["lockstep", "reactive", "async"])
    def test_iter_facts_streams_under_every_scheduler(self, scheduler):
        built = build_quickstart(scheduler)
        view = built.query("Jules", "attendeePictures")
        streamed = list(view.iter_facts())
        assert sorted(f.values for f in streamed) == [(1, "sea.jpg"), (2, "boat.jpg")]
        assert len(view) == 2

    @pytest.mark.parametrize("scheduler", ["reactive", "async"])
    def test_streams_interleave_with_event_driven_execution(self, scheduler):
        built = build_quickstart(scheduler)
        rounds_at_yield = []
        for _ in built.query("Jules", "attendeePictures").iter_facts():
            rounds_at_yield.append(built.current_round)
        assert rounds_at_yield
        assert all(r < built.current_round for r in rounds_at_yield)

    @pytest.mark.parametrize("scheduler", ["reactive", "async"])
    def test_compiled_live_view_streams_under_event_driven_schedulers(self, scheduler):
        built = build_quickstart(scheduler)
        view = built.query(
            "Jules",
            'ans($id, $n) :- selectedAttendee@Jules($a), pictures@$a($id, $n)')
        streamed = sorted(f.values for f in view.iter_facts())
        assert streamed == [(1, "sea.jpg"), (2, "boat.jpg")]
        view.close()

    @pytest.mark.parametrize("scheduler", ["reactive", "async"])
    def test_stream_terminates_on_a_converged_system(self, scheduler):
        built = build_quickstart(scheduler)
        built.converge()
        streamed = list(built.query("Jules", "attendeePictures").iter_facts())
        assert sorted(f.values for f in streamed) == [(1, "sea.jpg"), (2, "boat.jpg")]
