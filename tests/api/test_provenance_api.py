"""``system().provenance()`` and ``deployment.explain`` through the facade."""

import pytest

from repro.api import Explanation, system
from repro.core.facts import Fact

HUB_PROGRAM = """
collection extensional persistent follows@hub(who);
collection intensional wall@hub(id);
rule wall@hub($id) :- follows@hub($f), posts@$f($id);
"""


def build_deployment(**kwargs):
    return (system()
            .provenance()
            .peer("hub").program(HUB_PROGRAM)
            .peer("left").program(
                "collection extensional persistent posts@left(id);")
            .build())


class TestBuilderProvenance:
    def test_every_peer_gets_a_tracker(self):
        deployment = build_deployment()
        for name in deployment.peer_names():
            assert deployment.runtime.peer(name).provenance is not None

    def test_disabled_by_default(self):
        deployment = system().peer("solo").build()
        assert deployment.runtime.peer("solo").provenance is None

    def test_late_added_peer_inherits_the_flag(self):
        deployment = build_deployment()
        handle = deployment.add_peer("late")
        assert handle.unwrap().provenance is not None

    def test_provenance_does_not_pin_full_evaluation(self):
        deployment = build_deployment()
        deployment.peer("hub").insert('follows@hub("left")')
        deployment.peer("left").insert("posts@left(1)")
        deployment.converge()
        deployment.peer("left").insert("posts@left(2)")
        deployment.converge()
        counters = deployment.runtime.peer("hub").engine.eval_counters
        assert counters["stages_delta"] > 0


class TestExplain:
    def test_explain_parses_fact_strings(self):
        deployment = build_deployment()
        deployment.peer("hub").insert('follows@hub("left")')
        deployment.peer("left").insert("posts@left(5)")
        deployment.converge()
        explanation = deployment.explain("hub", "wall@hub(5)")
        assert isinstance(explanation, Explanation)
        assert explanation.derived
        assert "posts@left" in explanation.base_relations
        assert "left" in str(explanation.peers) or "left" in explanation.peers

    def test_explain_base_fact(self):
        deployment = build_deployment()
        deployment.peer("left").insert("posts@left(5)")
        deployment.converge()
        explanation = deployment.explain("left", Fact("posts", "left", (5,)))
        assert not explanation.derived
        assert explanation.base_relations == frozenset({"posts@left"})

    def test_explain_without_provenance_raises(self):
        deployment = system().peer("solo").build()
        with pytest.raises(RuntimeError, match="provenance"):
            deployment.explain("solo", "r@solo(1)")
