"""Differential equivalence of compiled live views and hand-installed rules.

A declarative query compiled by :func:`repro.api.compile_query` must answer
exactly what an equivalent hand-written rule over an explicitly declared
intensional relation answers — under arbitrary insert/retract churn,
including churn that crosses peer boundaries through delegation.  The
acceptance query exercises a multi-literal join, a negated literal and a
``@remote`` literal at once.

On top of answer equivalence, the tests pin the *work* discipline: view
maintenance runs on the incremental ``delta``/``rederive`` paths — churn
stages at the view owner (and, for remote-relation churn, at the delegatee)
never fall back to ``evaluation_path == "full"`` once installation settled.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import system

OWNER_PROGRAM = """
collection extensional persistent a@q(x);
collection extensional persistent c@q(x);
collection intensional ref@q(x, y);
rule ref@q($x, $y) :- a@q($x), not c@q($x), b@r($x, $y);
"""

REMOTE_PROGRAM = """
collection extensional persistent b@r(x, y);
"""

QUERY = "ans($x, $y) :- a@q($x), not c@q($x), b@r($x, $y)"

#: One churn operation over a small domain: relation, insert?, a, b.
operations = st.lists(
    st.tuples(st.sampled_from(["a", "c", "b"]), st.booleans(),
              st.integers(min_value=0, max_value=4),
              st.integers(min_value=0, max_value=4)),
    max_size=25,
)


def build_deployment():
    deployment = (system()
                  .peer("q").program(OWNER_PROGRAM)
                  .peer("r").program(REMOTE_PROGRAM)
                  .build())
    return deployment


def apply_operation(deployment, operation):
    relation, insert, a, b = operation
    if relation == "b":
        fact = f"b@r({a}, {b})"
        peer = deployment.peer("r")
    else:
        fact = f"{relation}@q({a})"
        peer = deployment.peer("q")
    if insert:
        peer.insert(fact)
    else:
        peer.delete(fact)


class TestViewMatchesHandInstalledRule:
    @given(operations)
    @settings(max_examples=25, deadline=None)
    def test_answers_agree_under_churn(self, stream):
        deployment = build_deployment()
        view = deployment.query("q", QUERY)
        deployment.converge()
        reference = deployment.query("q", "ref")
        for operation in stream:
            apply_operation(deployment, operation)
            deployment.converge()
            assert sorted(view.rows()) == sorted(reference.rows())
        answers_before_close = sorted(reference.rows())
        view.close()
        # Closing the view must not disturb the hand-installed sibling rule.
        assert sorted(deployment.query("q", "ref").rows()) == answers_before_close

    @given(operations)
    @settings(max_examples=10, deadline=None)
    def test_reopened_view_agrees_after_interleaved_churn(self, stream):
        deployment = build_deployment()
        view = deployment.query("q", QUERY)
        deployment.converge()
        for index, operation in enumerate(stream):
            apply_operation(deployment, operation)
            deployment.converge()
            if index == len(stream) // 2:
                view.close()
                view = deployment.query("q", QUERY)
                deployment.converge()
            assert sorted(view.rows()) == \
                sorted(deployment.query("q", "ref").rows())


class TestChurnStaysIncremental:
    def test_owner_never_recomputes_fully_under_churn(self):
        """Once installed, every churn stage at the owner runs delta/rederive."""
        deployment = build_deployment()
        view = deployment.query("q", QUERY)
        deployment.converge()
        owner = deployment.runtime.peer("q").engine
        full_before = owner.eval_counters["stages_full"]
        rng = random.Random(7)
        for _ in range(30):
            relation = rng.choice(["a", "c", "b"])
            insert = rng.random() < 0.6
            apply_operation(deployment, (relation, insert,
                                         rng.randrange(5), rng.randrange(5)))
            deployment.converge()
            assert sorted(view.rows()) == \
                sorted(deployment.query("q", "ref").rows())
        assert owner.eval_counters["stages_full"] == full_before
        # And churn did exercise the incremental machinery, not just skips.
        assert (owner.eval_counters["stages_delta"]
                + owner.eval_counters["stages_rederive"]) > 0

    def test_remote_relation_churn_is_incremental_everywhere(self):
        """Churn on the delegated-to relation keeps every peer off the full
        path: the delegation set is stable, so the remote peer absorbs its
        base churn on delta/rederive stages too."""
        deployment = build_deployment()
        for value in (0, 1, 2):
            deployment.peer("q").insert(f"a@q({value})")
        deployment.peer("q").insert("c@q(1)")
        view = deployment.query("q", QUERY)
        deployment.converge()
        owner = deployment.runtime.peer("q").engine
        remote = deployment.runtime.peer("r").engine
        full_before = (owner.eval_counters["stages_full"],
                       remote.eval_counters["stages_full"])
        rng = random.Random(11)
        for _ in range(25):
            apply_operation(deployment, ("b", rng.random() < 0.6,
                                         rng.randrange(3), rng.randrange(5)))
            deployment.converge()
            assert sorted(view.rows()) == \
                sorted(deployment.query("q", "ref").rows())
        assert (owner.eval_counters["stages_full"],
                remote.eval_counters["stages_full"]) == full_before
        assert (remote.eval_counters["stages_delta"]
                + remote.eval_counters["stages_rederive"]) > 0
