"""Differential equivalence of the incremental and naive engines.

The incremental engine (seminaive insert path + scoped delete-and-rederive)
must be observationally identical to the seed clear-and-recompute engine:
byte-identical snapshots after every operation, identical outgoing updates
and delegations at the system level — only the amount of work may differ.

These tests drive randomized programs and fact streams (including deletions,
provided facts and delegations) through both engines in lockstep and compare
snapshots at every quiescence point.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact
from repro.runtime.system import WebdamLogSystem

CHURN_PROGRAM = """
collection extensional persistent link@p(src, dst);
collection extensional persistent blocked@p(node);
collection intensional tc@p(src, dst);
collection intensional ok@p(src, dst);
collection intensional bad@p(node);
collection intensional clear@p(src, dst);
rule tc@p($x, $y) :- link@p($x, $y);
rule tc@p($x, $z) :- link@p($x, $y), tc@p($y, $z);
rule ok@p($x, $y) :- tc@p($x, $y), not blocked@p($x);
rule bad@p($n) :- blocked@p($n), link@p($n, $y);
rule clear@p($x, $y) :- tc@p($x, $y), not bad@p($x);
"""

#: One random operation: (kind, a, b) over a small node domain.
operations = st.lists(
    st.tuples(st.sampled_from(["link+", "link-", "block+", "block-"]),
              st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=7)),
    max_size=30,
)


def _engine_pair(program: str):
    incremental = WebdamLogEngine("p", evaluation_mode="incremental")
    naive = WebdamLogEngine("p", evaluation_mode="naive", use_indexes=False)
    incremental.load_program(program)
    naive.load_program(program)
    return incremental, naive


def _apply(engine: WebdamLogEngine, operation) -> None:
    kind, a, b = operation
    if kind == "link+":
        engine.insert_fact(Fact("link", "p", (a, b)))
    elif kind == "link-":
        engine.delete_fact(Fact("link", "p", (a, b)))
    elif kind == "block+":
        engine.insert_fact(Fact("blocked", "p", (a,)))
    else:
        engine.delete_fact(Fact("blocked", "p", (a,)))


class TestSinglePeerDifferential:
    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_churn_stream_matches_naive_engine(self, stream):
        """Snapshots agree after every quiescence point of a churn stream."""
        incremental, naive = _engine_pair(CHURN_PROGRAM)
        incremental.run_to_quiescence()
        naive.run_to_quiescence()
        for operation in stream:
            _apply(incremental, operation)
            _apply(naive, operation)
            incremental.run_to_quiescence(max_stages=30)
            naive.run_to_quiescence(max_stages=30)
            assert incremental.snapshot() == naive.snapshot()

    @given(operations)
    @settings(max_examples=20, deadline=None)
    def test_batched_stream_matches_naive_engine(self, stream):
        """Whole-stream batches (mixed inserts and deletes per stage) agree."""
        incremental, naive = _engine_pair(CHURN_PROGRAM)
        for batch_start in range(0, len(stream), 5):
            for operation in stream[batch_start:batch_start + 5]:
                _apply(incremental, operation)
                _apply(naive, operation)
            incremental.run_to_quiescence(max_stages=30)
            naive.run_to_quiescence(max_stages=30)
            assert incremental.snapshot() == naive.snapshot()

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 9)), max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_provided_facts_match_naive_engine(self, stream):
        """Facts pushed to a local intensional relation (provided facts)."""
        program = """
        collection intensional seen@p(id);
        collection intensional twice@p(id);
        rule twice@p($x) :- seen@p($x), seen@p($x);
        """
        incremental, naive = _engine_pair(program)
        for insert, value in stream:
            fact = Fact("seen", "p", (value,))
            for engine in (incremental, naive):
                if insert:
                    engine.receive_facts("remote", inserted=[fact])
                else:
                    engine.receive_facts("remote", deleted=[fact])
            incremental.run_to_quiescence(max_stages=10)
            naive.run_to_quiescence(max_stages=10)
            assert incremental.snapshot() == naive.snapshot()


def _build_system(mode: str, use_indexes: bool) -> WebdamLogSystem:
    system = WebdamLogSystem(evaluation_mode=mode)
    for name in ("hub", "left", "right"):
        peer = system.add_peer(name)
        peer.engine.use_indexes = use_indexes
    system.peer("hub").load_program("""
    collection extensional persistent follows@hub(who);
    collection intensional wall@hub(id);
    rule wall@hub($id) :- follows@hub($f), posts@$f($id);
    """)
    system.peer("left").load_program(
        "collection extensional persistent posts@left(id);")
    system.peer("right").load_program(
        "collection extensional persistent posts@right(id);")
    return system


class TestDistributedDifferential:
    @pytest.mark.parametrize("seed", [3, 17, 101, 2024])
    def test_delegation_churn_matches_naive_system(self, seed):
        """Randomized multi-peer streams with delegations and retractions.

        The hub's wall rule delegates to ``left``/``right`` when a follow
        appears and retracts the delegation when it is withdrawn; both modes
        must agree on every peer's full snapshot after each convergence.
        """
        incremental = _build_system("incremental", use_indexes=True)
        naive = _build_system("naive", use_indexes=False)
        rng = random.Random(seed)
        script = []
        for _ in range(25):
            roll = rng.random()
            target = rng.choice(["left", "right"])
            value = rng.randrange(12)
            if roll < 0.3:
                script.append(("follow+", target, None))
            elif roll < 0.45:
                script.append(("follow-", target, None))
            elif roll < 0.8:
                script.append(("post+", target, value))
            else:
                script.append(("post-", target, value))
        for kind, target, value in script:
            for system in (incremental, naive):
                if kind == "follow+":
                    system.peer("hub").insert_fact(Fact("follows", "hub", (target,)))
                elif kind == "follow-":
                    system.peer("hub").delete_fact(Fact("follows", "hub", (target,)))
                elif kind == "post+":
                    system.peer(target).insert_fact(Fact("posts", target, (value,)))
                else:
                    system.peer(target).delete_fact(Fact("posts", target, (value,)))
            assert incremental.converge(max_steps=60).converged
            assert naive.converge(max_steps=60).converged
            assert incremental.snapshot() == naive.snapshot()

    def test_strict_stage_inputs_matches_naive_system(self):
        """Strict per-stage provided semantics agree between the modes."""
        results = {}
        for mode in ("incremental", "naive"):
            system = WebdamLogSystem(strict_stage_inputs=True,
                                     evaluation_mode=mode)
            source = system.add_peer("source")
            sink = system.add_peer("sink")
            sink.load_program("""
            collection intensional inbox@sink(id);
            collection intensional log@sink(id);
            rule log@sink($x) :- inbox@sink($x);
            """)
            source.load_program("""
            collection extensional persistent outbox@source(id);
            rule inbox@sink($x) :- outbox@source($x);
            """)
            source.insert_fact(Fact("outbox", "source", (1,)))
            system.converge(max_steps=40)
            source.insert_fact(Fact("outbox", "source", (2,)))
            source.delete_fact(Fact("outbox", "source", (1,)))
            system.converge(max_steps=40)
            results[mode] = system.snapshot()
        assert results["incremental"] == results["naive"]


class TestWorkReduction:
    def test_substitutions_drop_on_transitive_closure(self):
        """Regression: the incremental engine explores ≥5× fewer substitutions
        than the seed clear-and-recompute on an incremental TC workload."""
        counters = {}
        snapshots = {}
        for mode, use_indexes in (("incremental", True), ("naive", False)):
            engine = WebdamLogEngine("p", evaluation_mode=mode,
                                     use_indexes=use_indexes)
            engine.load_program("""
            collection extensional persistent link@p(src, dst);
            collection intensional tc@p(src, dst);
            rule tc@p($x, $y) :- link@p($x, $y);
            rule tc@p($x, $z) :- link@p($x, $y), tc@p($y, $z);
            """)
            for i in range(19):
                engine.insert_fact(Fact("link", "p", (i, i + 1)))
            engine.run_to_quiescence()
            for i in range(6):
                engine.insert_fact(Fact("link", "p", (20 + i, i)))
                engine.run_to_quiescence()
            counters[mode] = engine.eval_counters["substitutions_explored"]
            snapshots[mode] = engine.snapshot()
        assert snapshots["incremental"] == snapshots["naive"]
        assert counters["naive"] >= 5 * counters["incremental"]

    def test_noop_stage_skips_evaluation(self):
        """A stage with an empty input delta does not evaluate anything."""
        engine = WebdamLogEngine("p")
        engine.load_program("""
        collection extensional persistent base@p(x);
        collection intensional view@p(x);
        fact base@p(1);
        rule view@p($x) :- base@p($x);
        """)
        engine.run_to_quiescence()
        result = engine.run_stage()
        assert result.evaluation_path == "skip"
        assert result.substitutions_explored == 0
        assert result.is_quiescent()
