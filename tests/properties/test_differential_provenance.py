"""Differential equivalence of incremental and full-recompute provenance.

The incrementally maintained provenance graph (delta appends + support-count
retraction + scoped rederive clears) must answer why/lineage queries exactly
as the naive reference — an engine in ``evaluation_mode="naive"`` whose
tracker is rebuilt from scratch by every full recompute.  These tests drive
randomized insert/retract/delegation churn through both configurations in
lockstep and compare the full provenance story at every quiescence point.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact
from repro.provenance.graph import ProvenanceGraph, ProvenanceTracker
from repro.runtime.system import WebdamLogSystem

CHURN_PROGRAM = """
collection extensional persistent link@p(src, dst);
collection extensional persistent blocked@p(node);
collection intensional tc@p(src, dst);
collection intensional ok@p(src, dst);
rule tc@p($x, $y) :- link@p($x, $y);
rule tc@p($x, $z) :- link@p($x, $y), tc@p($y, $z);
rule ok@p($x, $y) :- tc@p($x, $y), not blocked@p($x);
"""

operations = st.lists(
    st.tuples(st.sampled_from(["link+", "link-", "block+", "block-"]),
              st.integers(min_value=0, max_value=5),
              st.integers(min_value=0, max_value=5)),
    max_size=25,
)


def provenance_story(graph: ProvenanceGraph):
    """Everything a provenance query can observe, in comparable form."""
    return {
        fact: {
            "why": frozenset(graph.why(fact)),
            "lineage": graph.lineage(fact),
            "base_relations": graph.base_relations(fact),
        }
        for fact in graph.facts()
    }


def _engine_pair(program: str):
    incremental = WebdamLogEngine("p", evaluation_mode="incremental")
    naive = WebdamLogEngine("p", evaluation_mode="naive", use_indexes=False)
    for engine in (incremental, naive):
        engine.provenance = ProvenanceTracker()
        engine.load_program(program)
    return incremental, naive


def _apply(engine: WebdamLogEngine, operation) -> None:
    kind, a, b = operation
    if kind == "link+":
        engine.insert_fact(Fact("link", "p", (a, b)))
    elif kind == "link-":
        engine.delete_fact(Fact("link", "p", (a, b)))
    elif kind == "block+":
        engine.insert_fact(Fact("blocked", "p", (a,)))
    else:
        engine.delete_fact(Fact("blocked", "p", (a,)))


class TestSinglePeerDifferential:
    @given(operations)
    @settings(max_examples=30, deadline=None)
    def test_churn_stream_matches_naive_provenance(self, stream):
        """Why/lineage stories agree after every quiescence point."""
        incremental, naive = _engine_pair(CHURN_PROGRAM)
        incremental.run_to_quiescence()
        naive.run_to_quiescence()
        for operation in stream:
            _apply(incremental, operation)
            _apply(naive, operation)
            incremental.run_to_quiescence(max_stages=30)
            naive.run_to_quiescence(max_stages=30)
            assert incremental.snapshot() == naive.snapshot()
            assert (provenance_story(incremental.provenance.graph)
                    == provenance_story(naive.provenance.graph))

    @given(operations)
    @settings(max_examples=15, deadline=None)
    def test_batched_churn_matches_naive_provenance(self, stream):
        """Mixed insert/delete batches per stage keep the stories identical."""
        incremental, naive = _engine_pair(CHURN_PROGRAM)
        for batch_start in range(0, len(stream), 4):
            for operation in stream[batch_start:batch_start + 4]:
                _apply(incremental, operation)
                _apply(naive, operation)
            incremental.run_to_quiescence(max_stages=30)
            naive.run_to_quiescence(max_stages=30)
            assert (provenance_story(incremental.provenance.graph)
                    == provenance_story(naive.provenance.graph))

    def test_incremental_does_strictly_less_work(self):
        """The whole point: same stories, far fewer substitutions explored."""
        streams = [("link+", i, i + 1) for i in range(12)]
        streams += [("link+", 20 + i, i) for i in range(5)]
        incremental, naive = _engine_pair(CHURN_PROGRAM)
        for operation in streams:
            _apply(incremental, operation)
            _apply(naive, operation)
            incremental.run_to_quiescence(max_stages=20)
            naive.run_to_quiescence(max_stages=20)
        assert (provenance_story(incremental.provenance.graph)
                == provenance_story(naive.provenance.graph))
        assert (naive.eval_counters["substitutions_explored"]
                >= 5 * incremental.eval_counters["substitutions_explored"])
        assert incremental.eval_counters["stages_delta"] > 0


def _build_system(mode: str) -> WebdamLogSystem:
    system = WebdamLogSystem(evaluation_mode=mode, provenance=True)
    for name in ("hub", "left", "right"):
        peer = system.add_peer(name)
        peer.engine.use_indexes = mode == "incremental"
    system.peer("hub").load_program("""
    collection extensional persistent follows@hub(who);
    collection intensional wall@hub(id);
    rule wall@hub($id) :- follows@hub($f), posts@$f($id);
    """)
    system.peer("left").load_program(
        "collection extensional persistent posts@left(id);")
    system.peer("right").load_program(
        "collection extensional persistent posts@right(id);")
    return system


class TestDistributedDifferential:
    def test_strict_stage_inputs_matches_naive_provenance(self):
        """Housekeeping clears (strict provided semantics) retract exactly."""
        results = {}
        for mode in ("incremental", "naive"):
            system = WebdamLogSystem(strict_stage_inputs=True,
                                     evaluation_mode=mode, provenance=True)
            source = system.add_peer("source")
            sink = system.add_peer("sink")
            sink.load_program("""
            collection intensional inbox@sink(id);
            collection intensional log@sink(id);
            rule log@sink($x) :- inbox@sink($x);
            """)
            source.load_program("""
            collection extensional persistent outbox@source(id);
            rule inbox@sink($x) :- outbox@source($x);
            """)
            source.insert_fact(Fact("outbox", "source", (1,)))
            system.converge(max_steps=40)
            source.insert_fact(Fact("outbox", "source", (2,)))
            source.delete_fact(Fact("outbox", "source", (1,)))
            system.converge(max_steps=40)
            results[mode] = (system.snapshot(), {
                name: provenance_story(system.peer(name).engine.provenance.graph)
                for name in ("source", "sink")
            })
        assert results["incremental"] == results["naive"]

    @pytest.mark.parametrize("seed", [7, 91, 1234])
    def test_delegation_churn_matches_naive_provenance(self, seed):
        """Randomized delegation/retraction churn with shipped derivations.

        Follow churn makes the hub's wall rule delegate to (and retract
        from) the attendee peers; the shipped provenance recorded at the hub
        must agree between the incremental and naive configurations.
        """
        incremental = _build_system("incremental")
        naive = _build_system("naive")
        rng = random.Random(seed)
        script = []
        for _ in range(20):
            roll = rng.random()
            target = rng.choice(["left", "right"])
            value = rng.randrange(8)
            if roll < 0.3:
                script.append(("follow+", target, None))
            elif roll < 0.45:
                script.append(("follow-", target, None))
            elif roll < 0.8:
                script.append(("post+", target, value))
            else:
                script.append(("post-", target, value))
        for kind, target, value in script:
            for system in (incremental, naive):
                if kind == "follow+":
                    system.peer("hub").insert_fact(Fact("follows", "hub", (target,)))
                elif kind == "follow-":
                    system.peer("hub").delete_fact(Fact("follows", "hub", (target,)))
                elif kind == "post+":
                    system.peer(target).insert_fact(Fact("posts", target, (value,)))
                else:
                    system.peer(target).delete_fact(Fact("posts", target, (value,)))
            assert incremental.converge(max_steps=60).converged
            assert naive.converge(max_steps=60).converged
            assert incremental.snapshot() == naive.snapshot()
            for name in ("hub", "left", "right"):
                inc_graph = incremental.peer(name).engine.provenance.graph
                nai_graph = naive.peer(name).engine.provenance.graph
                assert (provenance_story(inc_graph)
                        == provenance_story(nai_graph)), name
