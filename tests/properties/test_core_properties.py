"""Property-based tests (hypothesis) of the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facts import Delta, Fact, FactStore
from repro.core.rules import Atom, Rule
from repro.core.terms import Constant, Variable
from repro.core.unification import match_atom_fact
from repro.runtime import wire

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

identifiers = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)

scalar_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.binary(max_size=8),
)


@st.composite
def facts(draw, relation=None, peer=None, max_arity=4):
    rel = relation or draw(identifiers)
    pr = peer or draw(identifiers)
    values = tuple(draw(st.lists(scalar_values, max_size=max_arity)))
    return Fact(rel, pr, values)


@st.composite
def same_relation_facts(draw, relation="r", peer="p", arity=2, max_size=30):
    """Lists of facts of one relation, all with the declared arity.

    A relation's arity is fixed by its first insertion (implicit schema), so
    store-level properties are stated over uniform-arity fact lists.
    """
    rows = draw(st.lists(st.tuples(*([scalar_values] * arity)), max_size=max_size))
    return [Fact(relation, peer, row) for row in rows]


# ---------------------------------------------------------------------------
# wire encoding round-trips
# ---------------------------------------------------------------------------

class TestWireRoundTrip:
    @given(facts())
    @settings(max_examples=150)
    def test_fact_roundtrip(self, fact):
        decoded = wire.decode_fact(wire.encode_fact(fact))
        assert decoded == fact
        for original, recovered in zip(fact.values, decoded.values):
            assert type(original) is type(recovered)

    @given(scalar_values)
    def test_constant_term_roundtrip(self, value):
        term = Constant(value)
        assert wire.decode_term(wire.encode_term(term)) == term

    @given(identifiers)
    def test_variable_term_roundtrip(self, name):
        term = Variable(name)
        assert wire.decode_term(wire.encode_term(term)) == term


# ---------------------------------------------------------------------------
# fact store invariants
# ---------------------------------------------------------------------------

class TestFactStoreProperties:
    @given(same_relation_facts())
    @settings(max_examples=100)
    def test_insert_is_idempotent_and_set_like(self, fact_list):
        store = FactStore()
        for fact in fact_list:
            store.insert(fact)
        for fact in fact_list:
            store.insert(fact)
        assert store.snapshot() == frozenset(fact_list)

    @given(same_relation_facts(max_size=20), same_relation_facts(max_size=20))
    @settings(max_examples=100)
    def test_delta_tracking_matches_final_state(self, inserts, deletes):
        store = FactStore()
        baseline = FactStore()
        for fact in inserts:
            store.insert(fact)
        for fact in deletes:
            store.delete(fact)
        delta = store.take_delta()
        baseline.apply(delta)
        assert baseline.snapshot() == store.snapshot()

    @given(same_relation_facts(max_size=20))
    @settings(max_examples=50)
    def test_bound_scan_agrees_with_filter(self, fact_list):
        store = FactStore()
        for fact in fact_list:
            store.insert(fact)
        if not fact_list:
            return
        probe = fact_list[0]
        expected = {f for f in store.snapshot()
                    if type(f.values[0]) is type(probe.values[0])
                    and f.values[0] == probe.values[0]}
        scanned = set(store.facts("r", "p", bindings={0: probe.values[0]}))
        assert scanned == expected


# ---------------------------------------------------------------------------
# delta algebra
# ---------------------------------------------------------------------------

class TestDeltaProperties:
    @given(st.lists(facts(max_arity=2), max_size=10), st.lists(facts(max_arity=2), max_size=10))
    @settings(max_examples=100)
    def test_merge_never_keeps_a_fact_on_both_sides(self, first, second):
        merged = Delta.insertion(first).merge(Delta.deletion(second))
        assert not (set(merged.inserted) & set(merged.deleted))

    @given(st.lists(facts(max_arity=2), max_size=10))
    def test_merge_with_empty_is_identity(self, fact_list):
        delta = Delta.insertion(fact_list)
        assert delta.merge(Delta.empty()) == delta
        assert Delta.empty().merge(delta) == delta


# ---------------------------------------------------------------------------
# matching
# ---------------------------------------------------------------------------

class TestMatchingProperties:
    @given(facts(max_arity=3))
    @settings(max_examples=100)
    def test_fully_variable_atom_matches_any_fact(self, fact):
        atom = Atom(
            relation=Variable("R"), peer=Variable("P"),
            args=tuple(Variable(f"x{i}") for i in range(fact.arity)),
        )
        result = match_atom_fact(atom, fact)
        assert result is not None
        assert result[Variable("R")] == Constant(fact.relation)
        assert result[Variable("P")] == Constant(fact.peer)

    @given(facts(max_arity=3))
    @settings(max_examples=100)
    def test_ground_atom_built_from_fact_matches_exactly_itself(self, fact):
        atom = Atom.of(fact.relation, fact.peer, *fact.values)
        assert match_atom_fact(atom, fact) == {}
        other = Fact(fact.relation, fact.peer, fact.values + ("extra",))
        assert match_atom_fact(atom, other) is None

    @given(facts(relation="pictures", max_arity=3))
    @settings(max_examples=50)
    def test_substituted_atom_converts_back_to_the_fact(self, fact):
        atom = Atom(
            relation=Constant(fact.relation), peer=Variable("P"),
            args=tuple(Variable(f"x{i}") for i in range(fact.arity)),
        )
        bindings = match_atom_fact(atom, fact)
        assert atom.substitute(bindings).to_fact() == fact
