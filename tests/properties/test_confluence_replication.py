"""Confluence of causal replication under adversarial delivery.

The tentpole property of :mod:`repro.replication`: whatever seeded schedule
of message **drop, duplication, reordering and partition** the in-memory
transport injects, a causal deployment reaches the *byte-identical* fixpoint
— and the identical ``explain()`` lineage — of a reliable run over a clean
transport.  The property is pinned on both storage backends and on both the
lockstep and the reactive scheduler, plus:

* hypothesis round-trips of the replication wire payloads
  (``DeltaEnvelopeMessage``, digests, pulls, acks);
* the duplicated-delegation-retraction regression (a twice-delivered
  retraction is a strict no-op the second time);
* JSONL event-log replayability of a failure schedule;
* causal crash recovery on the durable SQLite backend.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import system
from repro.core.facts import Fact
from repro.net.events import NetEventLog, read_events
from repro.replication.dots import Op
from repro.runtime import wire
from repro.runtime.inmemory import InMemoryTransport
from repro.runtime.messages import (
    DeltaEnvelopeMessage,
    ReplicationAckMessage,
    ReplicationDigestMessage,
    ReplicationPullMessage,
    message_from_wire,
)

BACKENDS = ("memory", "sqlite")
SCHEDULERS = ("lockstep", "reactive")

PROGRAM_ALICE = '''
collection extensional persistent src@alice(item);
rule mid@bob($x) :- src@alice($x);
'''

PROGRAM_BOB = '''
collection extensional persistent mid@bob(item);
rule sink@carol($x) :- mid@bob($x);
'''

PROGRAM_CAROL = '''
collection intensional sink@carol(item);
'''

#: Mixed insert/delete script; every batch crosses the wire in its own
#: messages, so the adversary gets many independent deltas to mangle.
SCRIPT = (
    ("insert", "a"), ("insert", "b"), ("insert", "c"),
    ("delete", "b"), ("insert", "d"), ("insert", "e"),
    ("delete", "a"), ("insert", "b"), ("insert", "f"),
)


def build(transport, replication, storage, scheduler, provenance=False):
    return (system()
            .transport(transport)
            .replication(replication)
            .storage(storage)
            .scheduler(scheduler)
            .provenance(provenance)
            .peer("alice").program(PROGRAM_ALICE)
            .peer("bob").program(PROGRAM_BOB)
            .peer("carol").program(PROGRAM_CAROL)
            .build())


def drive(deployment, script=SCRIPT, max_steps=800):
    for action, item in script:
        fact = f'src@alice("{item}")'
        if action == "insert":
            deployment.peer("alice").insert(fact)
        else:
            deployment.peer("alice").delete(fact)
        assert deployment.converge(max_steps=max_steps).converged
    return deployment


def snapshot_bytes(deployment):
    """A canonical byte string of every relation at every peer."""
    encoded = {
        peer: {relation: [wire.encode_fact(f) for f in sorted(facts, key=str)]
               for relation, facts in sorted(relations.items())}
        for peer, relations in deployment.snapshot().items()
    }
    return json.dumps(encoded, sort_keys=True).encode()


def lineage_story(deployment):
    """Normalised explain() output of every sink fact at carol."""
    stories = {}
    for fact in sorted(deployment.snapshot()["carol"].get("sink@carol", ()),
                       key=str):
        explanation = deployment.explain("carol", fact)
        stories[str(fact)] = {
            "derived": explanation.derived,
            "why": sorted(sorted(str(f) for f in alt)
                          for alt in explanation.why),
            "lineage": sorted(str(f) for f in explanation.lineage),
            "peers": sorted(explanation.peers),
        }
    return stories


@pytest.fixture(scope="module")
def reference():
    """Reliable run over a clean transport: the confluence baseline."""
    deployment = drive(build(InMemoryTransport(), "reliable", "memory",
                             "lockstep"))
    return snapshot_bytes(deployment)


class TestConfluence:
    @pytest.mark.parametrize("storage", BACKENDS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_drop_dup_reorder_reaches_reference_fixpoint(
            self, reference, storage, scheduler, seed):
        transport = InMemoryTransport(loss_probability=0.3,
                                      duplicate_probability=0.3,
                                      latency_jitter=2, reorder_window=4,
                                      seed=seed)
        deployment = drive(build(transport, "causal", storage, scheduler))
        assert snapshot_bytes(deployment) == reference
        assert transport.stats.messages_dropped > 0
        deployment.close()

    @pytest.mark.parametrize("storage", BACKENDS)
    def test_partition_heals_to_reference_fixpoint(self, reference, storage):
        transport = InMemoryTransport(seed=5)
        deployment = build(transport, "causal", storage, "lockstep")
        for index, (action, item) in enumerate(SCRIPT):
            # total partition during the middle third of the script
            transport.drop_probability = 1.0 if 3 <= index < 6 else 0.0
            fact = f'src@alice("{item}")'
            if action == "insert":
                deployment.peer("alice").insert(fact)
            else:
                deployment.peer("alice").delete(fact)
            deployment.converge(max_steps=60)
        transport.drop_probability = 0.0
        assert deployment.converge(max_steps=800).converged
        assert snapshot_bytes(deployment) == reference
        deployment.close()

    def test_reliable_mode_diverges_under_loss_but_causal_does_not(self):
        """The differential claim: same seed, same loss — only the causal
        deployment reaches the reference fixpoint."""
        reliable = drive(
            build(InMemoryTransport(loss_probability=0.5, seed=17),
                  "reliable", "memory", "lockstep"))
        causal = drive(
            build(InMemoryTransport(loss_probability=0.5, seed=17),
                  "causal", "memory", "lockstep"))
        clean = drive(build(InMemoryTransport(), "reliable", "memory",
                            "lockstep"))
        assert snapshot_bytes(causal) == snapshot_bytes(clean)
        assert snapshot_bytes(reliable) != snapshot_bytes(clean)

    @pytest.mark.parametrize("seed", [7, 23])
    def test_explain_lineage_matches_reliable_reference(self, seed):
        clean = drive(build(InMemoryTransport(), "reliable", "memory",
                            "lockstep", provenance=True))
        lossy = drive(build(
            InMemoryTransport(loss_probability=0.3, duplicate_probability=0.3,
                              reorder_window=3, seed=seed),
            "causal", "memory", "lockstep", provenance=True))
        assert lineage_story(lossy) == lineage_story(clean)
        assert snapshot_bytes(lossy) == snapshot_bytes(clean)


class TestDuplicatedRetraction:
    def test_twice_delivered_retraction_is_a_noop(self):
        """Regression: a duplicated delegation-retraction delivery must not
        double-decrement anything — the second copy is a strict no-op, and a
        later re-selection re-installs and re-derives cleanly."""
        transport = InMemoryTransport(duplicate_probability=1.0, seed=1)
        deployment = (system()
                      .transport(transport)
                      .replication("reliable")
                      .provenance()
                      .peer("jules").program('''
                          collection extensional persistent selected@jules(who);
                          collection intensional wall@jules(id);
                          rule wall@jules($id) :-
                              selected@jules($a), pictures@$a($id);
                      ''')
                      .peer("emilien").program('''
                          collection extensional persistent pictures@emilien(id);
                          fact pictures@emilien(1);
                          fact pictures@emilien(2);
                      ''')
                      .build())
        deployment.peer("jules").insert('selected@jules("emilien")')
        assert deployment.converge(max_steps=100).converged
        assert len(deployment.snapshot()["jules"]["wall@jules"]) == 2

        # every message is duplicated — including the retraction
        deployment.peer("jules").delete('selected@jules("emilien")')
        assert deployment.converge(max_steps=100).converged
        emilien = deployment.runtime.peer("emilien")
        assert len(emilien.installed_delegations()) == 0
        assert deployment.snapshot()["jules"].get("wall@jules", ()) == ()

        # the state is not corrupted: re-selecting re-derives the wall
        deployment.peer("jules").insert('selected@jules("emilien")')
        assert deployment.converge(max_steps=100).converged
        assert len(deployment.snapshot()["jules"]["wall@jules"]) == 2

    def test_duplicated_undelegate_op_under_causal(self):
        """The same regression through the causal path: op-level duplicates
        are absorbed by the causal context before they reach the engine."""
        transport = InMemoryTransport(duplicate_probability=1.0, seed=2)
        deployment = (system()
                      .transport(transport)
                      .replication("causal")
                      .peer("jules").program('''
                          collection extensional persistent selected@jules(who);
                          collection intensional wall@jules(id);
                          rule wall@jules($id) :-
                              selected@jules($a), pictures@$a($id);
                      ''')
                      .peer("emilien").program('''
                          collection extensional persistent pictures@emilien(id);
                          fact pictures@emilien(1);
                      ''')
                      .build())
        deployment.peer("jules").insert('selected@jules("emilien")')
        assert deployment.converge(max_steps=200).converged
        deployment.peer("jules").delete('selected@jules("emilien")')
        assert deployment.converge(max_steps=200).converged
        emilien = deployment.runtime.peer("emilien")
        assert len(emilien.installed_delegations()) == 0
        deployment.peer("jules").insert('selected@jules("emilien")')
        assert deployment.converge(max_steps=200).converged
        assert len(deployment.snapshot()["jules"]["wall@jules"]) == 1


class TestEventLogReplay:
    def test_failure_schedule_replays_from_jsonl(self, tmp_path):
        """Two runs with the same seeds emit the same JSONL failure schedule
        (drop/dup/join and friends), so a recorded schedule is replayable."""
        def run(path):
            log = NetEventLog(path=path)
            transport = InMemoryTransport(loss_probability=0.4,
                                          duplicate_probability=0.4,
                                          seed=13, event_log=log)
            deployment = drive(build(transport, "causal", "memory",
                                     "lockstep"), script=SCRIPT[:5])
            log.close()
            return deployment

        first = run(tmp_path / "first.jsonl")
        second = run(tmp_path / "second.jsonl")
        assert snapshot_bytes(first) == snapshot_bytes(second)

        def schedule(path):
            # Message ids come from a process-global counter, so they differ
            # in absolute value between runs; normalise by first appearance.
            dense = {}
            events = []
            for e in read_events(path):
                raw = e.get("message_id")
                if raw is not None and raw not in dense:
                    dense[raw] = len(dense)
                events.append((e["action"], e["node"], dense.get(raw),
                               e.get("kind")))
            return events

        events = schedule(tmp_path / "first.jsonl")
        assert events == schedule(tmp_path / "second.jsonl")
        actions = {action for action, _, _, _ in events}
        assert {"send", "deliver", "drop", "dup", "join", "register"} <= actions


class TestCausalCrashRecovery:
    def test_sqlite_reopen_under_loss_matches_clean_reference(
            self, tmp_path, reference):
        """A durable causal deployment killed mid-script and reopened over
        the same databases still reaches the reference fixpoint, with the
        adversary active in both lives."""
        def durable(seed):
            return (system()
                    .transport(InMemoryTransport(loss_probability=0.3,
                                                 duplicate_probability=0.3,
                                                 seed=seed))
                    .replication("causal")
                    .storage("sqlite", path=str(tmp_path))
                    .peer("alice").program(PROGRAM_ALICE)
                    .peer("bob").program(PROGRAM_BOB)
                    .peer("carol").program(PROGRAM_CAROL)
                    .build())

        first_life = durable(seed=29)
        drive(first_life, script=SCRIPT[:5])
        first_life.close()

        second_life = durable(seed=31)
        drive(second_life, script=SCRIPT[5:])
        assert snapshot_bytes(second_life) == reference
        second_life.close()


# --------------------------------------------------------------------------- #
# hypothesis wire round-trips of the replication payloads
# --------------------------------------------------------------------------- #

identifiers = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                      max_size=8)

replicated_facts = st.builds(
    Fact,
    relation=identifiers, peer=identifiers,
    values=st.tuples(st.integers(min_value=-999, max_value=999),
                     st.text(max_size=6)),
)


@st.composite
def ops(draw):
    seq = draw(st.integers(min_value=1, max_value=10**6))
    kind = draw(st.sampled_from(("insert", "delete", "delegate",
                                 "undelegate")))
    if kind == "insert":
        return Op(seq=seq, kind=kind, fact=draw(replicated_facts))
    if kind == "delete":
        removed = tuple(sorted(draw(st.sets(
            st.integers(min_value=1, max_value=10**6), max_size=4))))
        return Op(seq=seq, kind=kind, fact=draw(replicated_facts),
                  removed=removed)
    return Op(seq=seq, kind=kind, delegation_id=draw(identifiers))


class TestWireRoundTrip:
    @given(st.lists(ops(), max_size=6),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=120)
    def test_delta_envelope_roundtrip(self, op_list, frontier):
        message = DeltaEnvelopeMessage(sender="alice", recipient="bob",
                                       ops=tuple(op_list), frontier=frontier)
        encoded = json.loads(json.dumps(message.to_wire()))
        decoded = message_from_wire(encoded)
        assert decoded == message
        assert decoded.payload_size() == len(op_list)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60)
    def test_digest_and_ack_roundtrip(self, value):
        digest = ReplicationDigestMessage(sender="a", recipient="b",
                                          frontier=value)
        ack = ReplicationAckMessage(sender="b", recipient="a", acked=value)
        for message in (digest, ack):
            assert message_from_wire(
                json.loads(json.dumps(message.to_wire()))) == message

    @given(st.lists(st.integers(min_value=1, max_value=10**6), max_size=8))
    @settings(max_examples=60)
    def test_pull_roundtrip(self, want):
        message = ReplicationPullMessage(sender="b", recipient="a",
                                         want=tuple(want))
        decoded = message_from_wire(json.loads(json.dumps(message.to_wire())))
        assert decoded == message
        assert decoded.payload_size() == len(want)
