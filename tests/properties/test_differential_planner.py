"""Differential equivalence of the cost-based planner.

``REPRO_PLANNER=order`` may only change *how* a body is evaluated (literal
order, index probes) and ``magic`` may additionally restrict derivation to
demand-reachable facts of the *view's own* scoped relations — neither may
change what any user-visible relation holds, what a view answers, what a
stage's visible delta reports, or what ``explain()`` says about an answer.
These tests run randomized programs under insert/retract churn with the
planner on and off and require byte-identical observations, then check the
planned run actually took a different execution strategy (plans reordered /
magic predicates installed)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import system
from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact

CHURN_PROGRAM = """
collection extensional persistent link@p(src, dst);
collection extensional persistent blocked@p(node);
collection intensional tc@p(src, dst);
collection intensional ok@p(src, dst);
collection intensional bad@p(node);
rule tc@p($x, $y) :- link@p($x, $y);
rule tc@p($x, $z) :- link@p($x, $y), tc@p($y, $z);
rule ok@p($x, $y) :- tc@p($x, $y), not blocked@p($x);
rule bad@p($n) :- blocked@p($n), link@p($n, $y);
"""

VIEW_PROGRAM = """
collection extensional persistent link@p(src, dst);
collection extensional persistent mark@p(node);
"""

#: Bound-head recursive query: multi-clause, so magic mode rewrites it.
VIEW_QUERY = (
    "reach($x, $y) :- link@p($x, $y); "
    "reach($x, $z) :- reach($x, $y), link@p($y, $z); "
    "ans($y) :- reach(0, $y), not mark@p($y)"
)

operations = st.lists(
    st.tuples(st.sampled_from(["link+", "link-", "block+", "block-"]),
              st.integers(min_value=0, max_value=6),
              st.integers(min_value=0, max_value=6)),
    max_size=25,
)


def _apply(engine: WebdamLogEngine, operation) -> None:
    kind, a, b = operation
    if kind == "link+":
        engine.insert_fact(Fact("link", "p", (a, b)))
    elif kind == "link-":
        engine.delete_fact(Fact("link", "p", (a, b)))
    elif kind == "block+":
        engine.insert_fact(Fact("blocked", "p", (a,)))
    else:
        engine.delete_fact(Fact("blocked", "p", (a,)))


class TestEngineDifferential:
    @given(operations)
    @settings(max_examples=25, deadline=None)
    def test_churn_stream_matches_planner_off(self, stream):
        """Snapshots and visible deltas agree at every quiescence point."""
        off = WebdamLogEngine("p", planner="off")
        on = WebdamLogEngine("p", planner="order")
        off.load_program(CHURN_PROGRAM)
        on.load_program(CHURN_PROGRAM)
        off.run_to_quiescence()
        on.run_to_quiescence()
        for operation in stream:
            _apply(off, operation)
            _apply(on, operation)
            off_deltas = [r.visible_delta for r in
                          off.run_to_quiescence(max_stages=30)]
            on_deltas = [r.visible_delta for r in
                         on.run_to_quiescence(max_stages=30)]
            assert off.snapshot() == on.snapshot()
            assert [sorted(map(str, d.inserted)) for d in off_deltas] == \
                   [sorted(map(str, d.inserted)) for d in on_deltas]
            assert [sorted(map(str, d.deleted)) for d in off_deltas] == \
                   [sorted(map(str, d.deleted)) for d in on_deltas]
        # The equivalence must be between different strategies.
        assert off.eval_counters.get("plans_computed", 0) == 0
        if any(kind == "link+" for kind, _, _ in stream):
            assert on.eval_counters["plans_computed"] > 0


def _view_deployment(planner: str):
    deployment = (system().planner(planner)
                  .peer("p").program(VIEW_PROGRAM)
                  .build())
    view = deployment.query("p", VIEW_QUERY)
    deployment.converge()
    return deployment, view


def _user_snapshot(deployment):
    """Hub relations minus the view's private machinery (scoped aux
    relations, magic/demand predicates), whose presence is exactly the
    strategy difference under test."""
    snapshot = {}
    for relation, facts in deployment.peer("p").snapshot().items():
        if relation.startswith(("_view", "_magic_", "_demand_")):
            continue
        snapshot[relation] = tuple(sorted(map(str, facts)))
    return snapshot


class TestViewDifferential:
    @given(operations)
    @settings(max_examples=10, deadline=None)
    def test_magic_view_matches_planner_off(self, stream):
        """A bound-head recursive view answers identically in every mode,
        and the user-visible fixpoint is byte-identical, under churn."""
        runs = {mode: _view_deployment(mode)
                for mode in ("off", "order", "magic")}
        try:
            baseline_deployment, baseline_view = runs["off"]
            for operation in stream:
                kind, a, b = operation
                if kind == "link+":
                    fact, insert = f"link@p({a}, {b})", True
                elif kind == "link-":
                    fact, insert = f"link@p({a}, {b})", False
                elif kind == "block+":
                    fact, insert = f"mark@p({a})", True
                else:
                    fact, insert = f"mark@p({a})", False
                for deployment, _ in runs.values():
                    peer = deployment.peer("p")
                    (peer.insert if insert else peer.delete)(fact)
                    deployment.converge()
                expected = sorted(baseline_view.rows())
                for mode, (deployment, view) in runs.items():
                    assert sorted(view.rows()) == expected, mode
                    assert _user_snapshot(deployment) == \
                        _user_snapshot(baseline_deployment), mode
            # Strategy actually differed: magic predicates installed.
            assert runs["magic"][1].plan()["magic_relations"]
            assert not runs["off"][1].plan()["magic_relations"]
        finally:
            for deployment, view in runs.values():
                view.close()
                deployment.close()

    @given(operations)
    @settings(max_examples=10, deadline=None)
    def test_close_leaves_no_planner_residue(self, stream):
        """After closing a magic-rewritten view (at any churn point), no
        scoped, magic, demand or anchor fact survives anywhere."""
        deployment, view = _view_deployment("magic")
        try:
            for operation in stream[:8]:
                kind, a, b = operation
                peer = deployment.peer("p")
                if kind == "link+":
                    peer.insert(f"link@p({a}, {b})")
                elif kind == "link-":
                    peer.delete(f"link@p({a}, {b})")
                elif kind == "block+":
                    peer.insert(f"mark@p({a})")
                else:
                    peer.delete(f"mark@p({a})")
            deployment.converge()
            view.close()
            deployment.converge()
            for relation, facts in deployment.peer("p").snapshot().items():
                if relation.startswith(("_view", "_magic_", "_demand_")):
                    assert not facts, relation
            assert not deployment.peer("p").rules()
        finally:
            deployment.close()


class TestExplainDifferential:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=1, max_size=15))
    @settings(max_examples=10, deadline=None)
    def test_explain_lineage_identical(self, links):
        """Provenance answers are planner-invariant: the planner normalises
        derivation support back to written body order."""
        lineages = {}
        for mode in ("off", "order"):
            deployment = (system().planner(mode).provenance()
                          .peer("p").program(CHURN_PROGRAM)
                          .build())
            peer = deployment.peer("p")
            peer.insert_many([f"link@p({a}, {b})" for a, b in links])
            deployment.converge()
            engine_peer = deployment.runtime.peer("p")
            lineage = []
            for relation in ("tc", "ok", "bad"):
                for fact in sorted(engine_peer.query(relation), key=str):
                    lineage.append(str(peer.explain(fact)))
            lineages[mode] = lineage
            deployment.close()
        assert lineages["off"] == lineages["order"]
