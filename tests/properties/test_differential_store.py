"""Differential equivalence of the storage backends.

The sqlite backend — tables, bound-argument probes, whole-body SQL
compilation, GROUP BY pushdown — must be observationally identical to the
memory backend: byte-identical snapshots after every quiescence point and
identical live-view answers, under randomized insert/retract/delegation
churn.  Only the execution strategy may differ, which the tests confirm by
checking that the sqlite run actually exercised the compiled path."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import system
from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact

CHURN_PROGRAM = """
collection extensional persistent link@p(src, dst);
collection extensional persistent blocked@p(node);
collection intensional tc@p(src, dst);
collection intensional ok@p(src, dst);
collection intensional bad@p(node);
rule tc@p($x, $y) :- link@p($x, $y);
rule tc@p($x, $z) :- link@p($x, $y), tc@p($y, $z);
rule ok@p($x, $y) :- tc@p($x, $y), not blocked@p($x);
rule bad@p($n) :- blocked@p($n), link@p($n, $y);
"""

operations = st.lists(
    st.tuples(st.sampled_from(["link+", "link-", "block+", "block-"]),
              st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=7)),
    max_size=30,
)


def _engine_pair():
    sql = WebdamLogEngine("p", storage="sqlite")
    mem = WebdamLogEngine("p", storage="memory")
    sql.load_program(CHURN_PROGRAM)
    mem.load_program(CHURN_PROGRAM)
    return sql, mem


def _apply(engine, operation):
    kind, a, b = operation
    if kind == "link+":
        engine.insert_fact(Fact("link", "p", (a, b)))
    elif kind == "link-":
        engine.delete_fact(Fact("link", "p", (a, b)))
    elif kind == "block+":
        engine.insert_fact(Fact("blocked", "p", (a,)))
    else:
        engine.delete_fact(Fact("blocked", "p", (a,)))


class TestSinglePeerDifferential:
    @given(operations)
    @settings(max_examples=25, deadline=None)
    def test_churn_stream_matches_memory_backend(self, stream):
        sql, mem = _engine_pair()
        sql.run_to_quiescence()
        mem.run_to_quiescence()
        for operation in stream:
            _apply(sql, operation)
            _apply(mem, operation)
            sql.run_to_quiescence(max_stages=30)
            mem.run_to_quiescence(max_stages=30)
            assert sql.snapshot() == mem.snapshot()
        if any(kind.endswith("+") for kind, _, _ in stream):
            # The equivalence must be between *different* strategies: the
            # sqlite run has to have taken the compiled-SQL path.
            assert sql.eval_counters["compiled_sql"] > 0
        assert mem.eval_counters["compiled_sql"] == 0

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 9)), max_size=20))
    @settings(max_examples=15, deadline=None)
    def test_provided_facts_match_memory_backend(self, stream):
        """Provided facts force per-literal fallback on sqlite; results must
        still agree with the memory backend exactly."""
        program = """
        collection intensional seen@p(id);
        collection intensional twice@p(id);
        rule twice@p($x) :- seen@p($x), seen@p($x);
        """
        sql = WebdamLogEngine("p", storage="sqlite")
        mem = WebdamLogEngine("p", storage="memory")
        sql.load_program(program)
        mem.load_program(program)
        for insert, value in stream:
            fact = Fact("seen", "p", (value,))
            for engine in (sql, mem):
                if insert:
                    engine.receive_facts("remote", inserted=[fact])
                else:
                    engine.receive_facts("remote", deleted=[fact])
            sql.run_to_quiescence(max_stages=10)
            mem.run_to_quiescence(max_stages=10)
            assert sql.snapshot() == mem.snapshot()


def _build_deployment(backend: str):
    builder = system().storage(backend)
    builder.peer("hub").program("""
    collection extensional persistent follows@hub(who);
    collection extensional persistent hidden@hub(id);
    collection intensional wall@hub(id);
    collection intensional shown@hub(id);
    rule wall@hub($id) :- follows@hub($f), posts@$f($id);
    rule shown@hub($id) :- wall@hub($id), not hidden@hub($id);
    """)
    for name in ("left", "right"):
        builder.peer(name).program(
            f"collection extensional persistent posts@{name}(id);")
    return builder.build()


class TestDistributedDifferential:
    @pytest.mark.parametrize("seed", [3, 17, 101, 2024])
    def test_delegation_churn_matches_memory_deployment(self, seed):
        """Randomized multi-peer streams (delegations, retractions, hides)
        drive both backends in lockstep; snapshots and open live-view answers
        must agree after every convergence."""
        sql = _build_deployment("sqlite")
        mem = _build_deployment("memory")
        views = {}
        for label, deployment in (("sqlite", sql), ("memory", mem)):
            views[label] = [
                deployment.query("hub", "page($id) :- shown@hub($id)"),
                deployment.query(
                    "hub", "tally($f, count($id)) :- "
                    "follows@hub($f), posts@$f($id)"),
            ]
            deployment.converge()
        rng = random.Random(seed)
        for _ in range(25):
            roll = rng.random()
            target = rng.choice(["left", "right"])
            value = rng.randrange(12)
            for deployment in (sql, mem):
                if roll < 0.25:
                    deployment.peer("hub").insert(
                        Fact("follows", "hub", (target,)))
                elif roll < 0.4:
                    deployment.peer("hub").delete(
                        Fact("follows", "hub", (target,)))
                elif roll < 0.55:
                    deployment.peer("hub").insert(Fact("hidden", "hub", (value,)))
                elif roll < 0.65:
                    deployment.peer("hub").delete(Fact("hidden", "hub", (value,)))
                elif roll < 0.9:
                    deployment.peer(target).insert(
                        Fact("posts", target, (value,)))
                else:
                    deployment.peer(target).delete(
                        Fact("posts", target, (value,)))
            assert sql.converge(max_steps=80).converged
            assert mem.converge(max_steps=80).converged
            assert sql.snapshot() == mem.snapshot()
            for sql_view, mem_view in zip(views["sqlite"], views["memory"]):
                assert sorted(sql_view.rows()) == sorted(mem_view.rows())
        for deployment_views in views.values():
            for view in deployment_views:
                view.close()
        sql.close()
        mem.close()

    def test_durable_deployment_matches_memory_after_reload(self, tmp_path):
        """The same churn through a durable deployment that is closed and
        reopened mid-stream still matches an uninterrupted memory run."""
        mem = _build_deployment("memory")
        durable = (system().storage("sqlite", path=str(tmp_path))
                   .peer("hub").program("""
                   collection extensional persistent follows@hub(who);
                   collection extensional persistent hidden@hub(id);
                   collection intensional wall@hub(id);
                   collection intensional shown@hub(id);
                   rule wall@hub($id) :- follows@hub($f), posts@$f($id);
                   rule shown@hub($id) :- wall@hub($id), not hidden@hub($id);
                   """).done()
                   .peer("left").program(
                       "collection extensional persistent posts@left(id);").done()
                   .peer("right").program(
                       "collection extensional persistent posts@right(id);").done()
                   .build())
        rng = random.Random(7)
        script = []
        for _ in range(16):
            script.append((rng.random(), rng.choice(["left", "right"]),
                           rng.randrange(10)))

        def apply(deployment, step):
            roll, target, value = step
            if roll < 0.3:
                deployment.peer("hub").insert(Fact("follows", "hub", (target,)))
            elif roll < 0.45:
                deployment.peer("hub").insert(Fact("hidden", "hub", (value,)))
            elif roll < 0.85:
                deployment.peer(target).insert(Fact("posts", target, (value,)))
            else:
                deployment.peer(target).delete(Fact("posts", target, (value,)))

        for step in script[:8]:
            apply(mem, step)
            apply(durable, step)
        mem.converge()
        durable.converge()
        durable.close()
        durable = (system().storage("sqlite", path=str(tmp_path))
                   .peer("hub").peer("left").peer("right").build())
        durable.converge()
        for step in script[8:]:
            apply(mem, step)
            apply(durable, step)
        mem.converge()
        durable.converge()
        assert durable.snapshot() == mem.snapshot()
        durable.close()
        mem.close()
