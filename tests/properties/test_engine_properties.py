"""Property-based tests of the evaluators and the distributed engine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facts import Fact
from repro.core.schema import RelationKind, RelationSchema
from repro.datalog.naive import NaiveEvaluator
from repro.datalog.program import Database, DatalogProgram, atom, rule
from repro.datalog.seminaive import SeminaiveEvaluator
from repro.runtime.system import WebdamLogSystem

edges = st.lists(
    st.tuples(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=12)),
    max_size=40,
)


def transitive_closure_program() -> DatalogProgram:
    program = DatalogProgram()
    program.add_rule(rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y")))
    program.add_rule(rule(atom("path", "?x", "?z"),
                          atom("path", "?x", "?y"), atom("edge", "?y", "?z")))
    return program


def reference_closure(edge_set):
    """Straightforward Warshall-style closure used as ground truth."""
    closure = set(edge_set)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


class TestEvaluatorProperties:
    @given(edges)
    @settings(max_examples=40, deadline=None)
    def test_naive_and_seminaive_agree_with_reference(self, edge_list):
        database = Database()
        for a, b in edge_list:
            database.add("edge", (a, b))
        naive_db = NaiveEvaluator(transitive_closure_program()).run(database)
        semi_db = SeminaiveEvaluator(transitive_closure_program()).run(database)
        expected = reference_closure(set(edge_list))
        assert naive_db.relation("path") == expected
        assert semi_db.relation("path") == expected

    @given(edges)
    @settings(max_examples=30, deadline=None)
    def test_evaluation_is_monotone_in_the_input(self, edge_list):
        if not edge_list:
            return
        smaller = edge_list[: len(edge_list) // 2]
        db_small = Database()
        db_large = Database()
        for a, b in smaller:
            db_small.add("edge", (a, b))
        for a, b in edge_list:
            db_large.add("edge", (a, b))
        evaluator = SeminaiveEvaluator(transitive_closure_program())
        small_paths = evaluator.run(db_small).relation("path")
        large_paths = evaluator.run(db_large).relation("path")
        assert small_paths <= large_paths


class TestDistributedConvergenceProperties:
    @given(edges)
    @settings(max_examples=15, deadline=None)
    def test_two_peer_split_matches_centralised_closure(self, edge_list):
        """Distributing the edge relation over two peers does not change the result.

        Peer ``a`` holds the even-numbered source vertices, peer ``b`` the odd
        ones; peer ``a`` computes the closure by pulling ``b``'s edges through
        a delegation-free mirror rule.  The distributed fixpoint must equal
        the centralised one.
        """
        system = WebdamLogSystem()
        a = system.add_peer("a")
        b = system.add_peer("b")
        a.declare(RelationSchema("path", "a", ("src", "dst"),
                                 kind=RelationKind.INTENSIONAL))
        a.add_rule("alledges@a($x, $y) :- edge@a($x, $y)")
        b.add_rule("alledges@a($x, $y) :- edge@b($x, $y)")
        a.add_rule("path@a($x, $y) :- alledges@a($x, $y)")
        a.add_rule("path@a($x, $z) :- path@a($x, $y), alledges@a($y, $z)")
        for src, dst in edge_list:
            owner = a if src % 2 == 0 else b
            owner.insert_fact(Fact("edge", owner.name, (src, dst)))
        summary = system.converge(max_steps=60)
        assert summary.converged
        computed = {(f.values[0], f.values[1]) for f in a.query("path")}
        assert computed == reference_closure(set(edge_list))

    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=15),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_delegation_view_equals_selected_union(self, picture_ids, seed):
        """attendeePictures@viewer == union of pictures of the selected peers."""
        rng = random.Random(seed)
        system = WebdamLogSystem()
        viewer = system.add_peer("viewer")
        owners = [system.add_peer(f"owner{i}") for i in range(3)]
        viewer.declare(RelationSchema("attendeePictures", "viewer", ("id",),
                                      kind=RelationKind.INTENSIONAL))
        viewer.add_rule("attendeePictures@viewer($id) :- "
                        "selectedAttendee@viewer($a), pictures@$a($id)")
        expected = set()
        selected = {owner.name for owner in owners if rng.random() < 0.6}
        for owner_name in selected:
            viewer.insert_fact(Fact("selectedAttendee", "viewer", (owner_name,)))
        for picture_id in picture_ids:
            owner = owners[picture_id % len(owners)]
            owner.insert_fact(Fact("pictures", owner.name, (picture_id,)))
            if owner.name in selected:
                expected.add(picture_id)
        summary = system.converge(max_steps=60)
        assert summary.converged
        got = {f.values[0] for f in viewer.query("attendeePictures")}
        assert got == expected
