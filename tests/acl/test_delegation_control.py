"""Tests of the control-of-delegation model (pending queue, approval, rejection)."""

import pytest

from repro.acl.delegation_control import DelegationController, DelegationDecision
from repro.acl.trust import TrustStore
from repro.core.engine import WebdamLogEngine
from repro.core.errors import AccessControlError
from repro.core.facts import Fact
from repro.core.parser import parse_rule


def make_controller(trusted=(), auto_accept=False):
    engine = WebdamLogEngine("Jules")
    trust = TrustStore("Jules", trusted=trusted)
    return engine, DelegationController(engine, trust=trust, auto_accept_all=auto_accept)


def delegated_rule(author="Julia"):
    return parse_rule("spam@Julia($x) :- pictures@Jules($x, $n)", author=author)


class TestSubmission:
    def test_trusted_delegator_auto_accepted(self):
        engine, controller = make_controller(trusted=["sigmod"])
        decision = controller.submit("sigmod", "d1", delegated_rule("sigmod"))
        assert decision is DelegationDecision.AUTO_ACCEPTED
        engine.run_stage()
        assert len(engine.installed_delegations()) == 1
        assert controller.pending() == ()

    def test_untrusted_delegator_goes_pending(self):
        engine, controller = make_controller()
        decision = controller.submit("Julia", "d1", delegated_rule())
        assert decision is DelegationDecision.PENDING
        engine.run_stage()
        assert len(engine.installed_delegations()) == 0
        assert len(controller.pending()) == 1
        assert controller.pending_from("Julia")[0].delegation_id == "d1"

    def test_auto_accept_all_bypasses_queue(self):
        engine, controller = make_controller(auto_accept=True)
        decision = controller.submit("Julia", "d1", delegated_rule())
        assert decision is DelegationDecision.AUTO_ACCEPTED

    def test_notification_recorded(self):
        _engine, controller = make_controller()
        controller.submit("Julia", "d1", delegated_rule())
        notes = controller.notifications()
        assert len(notes) == 1
        assert "Julia" in notes[0]
        controller.notifications(clear=True)
        assert controller.notifications() == ()


class TestDecisions:
    def test_approve_installs_rule(self):
        engine, controller = make_controller()
        controller.submit("Julia", "d1", delegated_rule())
        approved = controller.approve("d1")
        assert approved.delegator == "Julia"
        engine.run_stage()
        assert len(engine.installed_delegations()) == 1
        assert controller.pending() == ()

    def test_reject_discards_rule(self):
        engine, controller = make_controller()
        controller.submit("Julia", "d1", delegated_rule())
        controller.reject("d1")
        engine.run_stage()
        assert len(engine.installed_delegations()) == 0

    def test_approve_unknown_raises(self):
        _engine, controller = make_controller()
        with pytest.raises(AccessControlError):
            controller.approve("nope")
        with pytest.raises(AccessControlError):
            controller.reject("nope")

    def test_approve_all_filtered_by_delegator(self):
        engine, controller = make_controller()
        controller.submit("Julia", "d1", delegated_rule())
        controller.submit("Emilien", "d2", delegated_rule("Emilien"))
        approved = controller.approve_all("Julia")
        assert [p.delegation_id for p in approved] == ["d1"]
        assert len(controller.pending()) == 1
        controller.approve_all()
        assert controller.pending() == ()


class TestRetraction:
    def test_retraction_of_pending_delegation_removes_it(self):
        engine, controller = make_controller()
        controller.submit("Julia", "d1", delegated_rule())
        decision = controller.submit_retraction("Julia", "d1")
        assert decision is DelegationDecision.RETRACTED
        assert controller.pending() == ()
        engine.run_stage()
        assert len(engine.installed_delegations()) == 0

    def test_only_original_delegator_may_retract_pending(self):
        _engine, controller = make_controller()
        controller.submit("Julia", "d1", delegated_rule())
        with pytest.raises(AccessControlError):
            controller.submit_retraction("Mallory", "d1")
        assert len(controller.pending()) == 1

    def test_retraction_of_installed_delegation_forwarded(self):
        engine, controller = make_controller(trusted=["sigmod"])
        controller.submit("sigmod", "d1", delegated_rule("sigmod"))
        engine.run_stage()
        controller.submit_retraction("sigmod", "d1")
        engine.run_stage()
        assert len(engine.installed_delegations()) == 0


class TestAuditLog:
    def test_log_and_counts(self):
        engine, controller = make_controller(trusted=["sigmod"])
        controller.submit("sigmod", "d0", delegated_rule("sigmod"))
        controller.submit("Julia", "d1", delegated_rule())
        controller.submit("Emilien", "d2", delegated_rule("Emilien"))
        controller.approve("d1")
        controller.reject("d2")
        counts = controller.counts()
        assert counts["auto-accepted"] == 1
        assert counts["pending"] == 2
        assert counts["approved"] == 1
        assert counts["rejected"] == 1
        assert counts["pending_now"] == 0
        assert len(controller.log()) == 5
