"""Tests of the discretionary / provenance-based access-control model."""

import pytest

from repro.acl.policies import PUBLIC, AccessControlPolicy, Privilege, ViewPolicy
from repro.core.errors import AccessControlError
from repro.core.facts import Fact
from repro.provenance.graph import Derivation, ProvenanceGraph


def make_provenance():
    """A view fact derived from two base relations at different peers."""
    graph = ProvenanceGraph()
    derived = Fact("attendeePictures", "Jules", (1, "sea.jpg"))
    base_selected = Fact("selectedAttendee", "Jules", ("Emilien",))
    base_picture = Fact("pictures", "Emilien", (1, "sea.jpg"))
    graph.add(Derivation(fact=derived, rule_id="rule-1",
                         support=(base_selected, base_picture)))
    return graph, derived


class TestDiscretionaryGrants:
    def test_owner_holds_everything(self):
        policy = AccessControlPolicy("Jules")
        assert policy.can_read("pictures@Jules", "Jules")
        assert policy.can_write("pictures@Jules", "Jules")

    def test_grant_and_revoke(self):
        policy = AccessControlPolicy("Jules")
        policy.grant("pictures@Jules", "Emilien", Privilege.READ)
        assert policy.can_read("pictures@Jules", "Emilien")
        assert not policy.can_write("pictures@Jules", "Emilien")
        removed = policy.revoke("pictures@Jules", "Emilien")
        assert removed == 1
        assert not policy.can_read("pictures@Jules", "Emilien")

    def test_public_grant(self):
        policy = AccessControlPolicy("Jules")
        policy.grant("pictures@Jules", PUBLIC, Privilege.READ)
        assert policy.can_read("pictures@Jules", "anyone")

    def test_grant_privilege_delegation(self):
        policy = AccessControlPolicy("Jules")
        # Emilien cannot grant without the GRANT privilege.
        with pytest.raises(AccessControlError):
            policy.grant("pictures@Jules", "Julia", Privilege.READ, grantor="Emilien")
        policy.grant("pictures@Jules", "Emilien", Privilege.GRANT)
        granted = policy.grant("pictures@Jules", "Julia", Privilege.READ, grantor="Emilien")
        assert granted.grantor == "Emilien"
        assert policy.can_read("pictures@Jules", "Julia")

    def test_grants_listing_is_deterministic(self):
        policy = AccessControlPolicy("Jules")
        policy.grant("b@Jules", "x", Privilege.READ)
        policy.grant("a@Jules", "y", Privilege.WRITE)
        listed = policy.grants()
        assert [g.relation for g in listed] == ["a@Jules", "b@Jules"]


class TestProvenanceBasedViewPolicy:
    def test_base_fact_uses_discretionary_policy(self):
        policy = AccessControlPolicy("Jules")
        base = Fact("pictures", "Jules", (1,))
        assert not policy.can_read_fact(base, "Emilien")
        policy.grant("pictures@Jules", "Emilien", Privilege.READ)
        assert policy.can_read_fact(base, "Emilien")

    def test_derived_fact_requires_all_base_relations(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        policy.grant("selectedAttendee@Jules", "Julia", Privilege.READ)
        # Julia can read only one of the two base relations: denied.
        assert not policy.can_read_fact(derived, "Julia", provenance=graph)
        policy.grant("pictures@Emilien", "Julia", Privilege.READ)
        assert policy.can_read_fact(derived, "Julia", provenance=graph)

    def test_declassification_overrides_default_policy(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        policy.declassify("attendeePictures@Jules", "Julia")
        # Julia still needs READ on the view itself (or ownership).
        assert not policy.can_read_fact(derived, "Julia", provenance=graph)
        policy.grant("attendeePictures@Jules", "Julia", Privilege.READ)
        assert policy.can_read_fact(derived, "Julia", provenance=graph)
        assert policy.is_declassified("attendeePictures@Jules", "Julia")
        assert not policy.is_declassified("attendeePictures@Jules", "Mallory")

    def test_readable_facts_filter(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        base = Fact("selectedAttendee", "Jules", ("Emilien",))
        policy.grant("selectedAttendee@Jules", "Julia", Privilege.READ)
        readable = policy.readable_facts([derived, base], "Julia", provenance=graph)
        assert readable == (base,)


class TestViewPolicy:
    def test_derive_collects_base_relations(self):
        graph, derived = make_provenance()
        view_policy = ViewPolicy.derive("attendeePictures@Jules", graph, [derived])
        assert view_policy.base_relations == frozenset({
            "selectedAttendee@Jules", "pictures@Emilien"
        })

    def test_readers_intersection(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        policy.grant("selectedAttendee@Jules", "Julia", Privilege.READ)
        policy.grant("pictures@Emilien", "Julia", Privilege.READ)
        policy.grant("selectedAttendee@Jules", "Mallory", Privilege.READ)
        view_policy = ViewPolicy.derive("attendeePictures@Jules", graph, [derived])
        readers = view_policy.readers(policy, ["Julia", "Mallory", "Jules"])
        assert "Julia" in readers
        assert "Mallory" not in readers
        assert "Jules" in readers  # owner reads every base relation implicitly

    def test_declassified_readers(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        view_policy = ViewPolicy.derive("attendeePictures@Jules", graph, [derived],
                                        declassified_for=["Mallory"])
        readers = view_policy.readers(policy, ["Mallory", "Julia"])
        assert readers == ("Mallory",)
