"""Tests of the cached, delta-invalidated :class:`PolicyEngine`."""

from repro.acl.policies import PUBLIC, AccessControlPolicy, PolicyEngine, Privilege
from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact
from repro.provenance.graph import Derivation, ProvenanceGraph, ProvenanceTracker


def make_provenance():
    graph = ProvenanceGraph()
    derived = Fact("attendeePictures", "Jules", (1, "sea.jpg"))
    base_selected = Fact("selectedAttendee", "Jules", ("Emilien",))
    base_picture = Fact("pictures", "Emilien", (1, "sea.jpg"))
    graph.add(Derivation(fact=derived, rule_id="rule-1",
                         support=(base_selected, base_picture)))
    return graph, derived


class TestDecisions:
    def test_matches_policy_semantics(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, graph)
        policy.grant("selectedAttendee@Jules", "Julia", Privilege.READ)
        assert not engine.can_read_fact(derived, "Julia")
        assert engine.can_read_fact(derived, "Julia") == \
            policy.can_read_fact(derived, "Julia", provenance=graph)
        policy.grant("pictures@Emilien", "Julia", Privilege.READ)
        assert engine.can_read_fact(derived, "Julia")
        assert engine.can_read_fact(derived, "Julia") == \
            policy.can_read_fact(derived, "Julia", provenance=graph)

    def test_base_fact_uses_discretionary_policy(self):
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, ProvenanceGraph())
        base = Fact("pictures", "Jules", (1,))
        assert not engine.can_read_fact(base, "Emilien")
        policy.grant("pictures@Jules", "Emilien", Privilege.READ)
        assert engine.can_read_fact(base, "Emilien")

    def test_declassification(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, graph)
        policy.declassify("attendeePictures@Jules", "Julia")
        assert not engine.can_read_fact(derived, "Julia")
        policy.grant("attendeePictures@Jules", "Julia", Privilege.READ)
        assert engine.can_read_fact(derived, "Julia")

    def test_filter_readable(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, graph)
        base = Fact("selectedAttendee", "Jules", ("Emilien",))
        policy.grant("selectedAttendee@Jules", "Julia", Privilege.READ)
        assert engine.filter_readable([derived, base], "Julia") == (base,)

    def test_accepts_tracker_or_graph_or_none(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        tracker = ProvenanceTracker()
        tracker.graph = graph
        via_tracker = PolicyEngine(policy, tracker)
        via_graph = PolicyEngine(policy, graph)
        without = PolicyEngine(policy, None)
        assert (via_tracker.can_read_fact(derived, "Jules")
                == via_graph.can_read_fact(derived, "Jules"))
        # Without provenance every fact is treated as a base fact.
        assert not without.can_read_fact(derived, "Mallory")


class TestDeltaInvalidation:
    def test_revoke_invalidates_cached_decision(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, graph)
        policy.grant("selectedAttendee@Jules", "Julia", Privilege.READ)
        policy.grant("pictures@Emilien", "Julia", Privilege.READ)
        assert engine.can_read_fact(derived, "Julia")
        policy.revoke("pictures@Emilien", "Julia")
        assert not engine.can_read_fact(derived, "Julia")

    def test_provenance_delta_changes_decision(self):
        """A new derivation widening the lineage flips the cached answer."""
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, graph)
        policy.grant("selectedAttendee@Jules", "Julia", Privilege.READ)
        policy.grant("pictures@Emilien", "Julia", Privilege.READ)
        assert engine.can_read_fact(derived, "Julia")
        # The support of the selected-attendee fact becomes derived from a
        # relation Julia may not read: the lineage now includes it.
        secret = Fact("secrets", "Jules", ("x",))
        graph.add(Derivation(
            fact=Fact("selectedAttendee", "Jules", ("Emilien",)),
            rule_id="rule-2", support=(secret,),
        ))
        assert not engine.can_read_fact(derived, "Julia")

    def test_view_policy_cached_until_graph_changes(self):
        graph, derived = make_provenance()
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, graph)
        first = engine.view_policy("attendeePictures@Jules")
        assert first.base_relations == frozenset({
            "selectedAttendee@Jules", "pictures@Emilien"})
        assert engine.view_policy("attendeePictures@Jules") is first
        graph.add(Derivation(fact=derived, rule_id="rule-3",
                             support=(Fact("extra", "Jules", (1,)),)))
        second = engine.view_policy("attendeePictures@Jules")
        assert second is not first
        assert "extra@Jules" in second.base_relations

    def test_subset_view_policy_is_not_cached(self):
        """A facts= subset must not narrow later whole-view decisions."""
        graph, derived = make_provenance()
        other = Fact("attendeePictures", "Jules", (2, "boat.jpg"))
        graph.add(Derivation(fact=other, rule_id="rule-9",
                             support=(Fact("private", "Jules", (2,)),)))
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, graph)
        subset = engine.view_policy("attendeePictures@Jules", facts=[derived])
        assert "private@Jules" not in subset.base_relations
        whole = engine.view_policy("attendeePictures@Jules")
        assert "private@Jules" in whole.base_relations

    def test_view_policy_includes_declassification(self):
        graph, _ = make_provenance()
        policy = AccessControlPolicy("Jules")
        engine = PolicyEngine(policy, graph)
        assert engine.view_policy("attendeePictures@Jules").declassified_for == frozenset()
        policy.declassify("attendeePictures@Jules", "Mallory")
        assert engine.view_policy("attendeePictures@Jules").declassified_for == \
            frozenset({"Mallory"})


class TestLiveEngineIntegration:
    """PolicyEngine filtering over a provenance-tracked engine's results."""

    PROGRAM = """
    collection extensional persistent selected@alice(name);
    collection extensional persistent pictures@alice(id, owner);
    collection intensional view@alice(id, owner);
    rule view@alice($id, $o) :- selected@alice($o), pictures@alice($id, $o);
    """

    def test_filtering_tracks_incremental_updates(self):
        engine = WebdamLogEngine("alice")
        tracker = ProvenanceTracker()
        engine.provenance = tracker
        engine.load_program(self.PROGRAM)
        engine.insert_fact('selected@alice("bob")')
        engine.insert_fact('pictures@alice(1, "bob")')
        engine.run_to_quiescence()

        policy = AccessControlPolicy("alice")
        acl = PolicyEngine(policy, tracker)
        policy.grant("pictures@alice", "carol", Privilege.READ)
        view = engine.query("view")
        assert acl.filter_readable(view, "carol") == ()
        policy.grant("selected@alice", "carol", Privilege.READ)
        assert acl.filter_readable(view, "carol") == view

        # Incremental update: new picture arrives on the delta path; the
        # decision for the new fact reuses the cached base-set verdict.
        engine.insert_fact('pictures@alice(2, "bob")')
        result = engine.run_stage()
        assert result.evaluation_path == "delta"
        view = engine.query("view")
        assert len(view) == 2
        assert acl.filter_readable(view, "carol") == view
