"""Tests of the trust store."""

from repro.acl.trust import TrustStore


class TestTrustStore:
    def test_owner_always_trusted(self):
        trust = TrustStore("alice")
        assert trust.is_trusted("alice")
        trust.untrust("alice")
        assert trust.is_trusted("alice")

    def test_trust_and_untrust(self):
        trust = TrustStore("alice")
        assert not trust.is_trusted("bob")
        trust.trust("bob")
        assert trust.is_trusted("bob")
        assert "bob" in trust
        trust.untrust("bob")
        assert not trust.is_trusted("bob")

    def test_initial_trusted_set(self):
        trust = TrustStore("alice", trusted=["sigmod", "bob"])
        assert trust.trusted_peers() == frozenset({"alice", "sigmod", "bob"})

    def test_trust_all(self):
        trust = TrustStore("alice", trust_all=True)
        assert trust.is_trusted("anyone")

    def test_demo_default_trusts_only_sigmod(self):
        trust = TrustStore.demo_default("Jules")
        assert trust.is_trusted("sigmod")
        assert trust.is_trusted("Jules")
        assert not trust.is_trusted("Emilien")
        assert not trust.is_trusted("Julia")
