"""Tests of the naive and seminaive evaluators (they must agree)."""

import pytest

from repro.datalog.naive import NaiveEvaluator, evaluate_rule
from repro.datalog.program import Database, DatalogProgram, atom, rule
from repro.datalog.seminaive import SeminaiveEvaluator, incremental_insert


def chain_database(length: int) -> Database:
    """A chain graph 0 -> 1 -> ... -> length."""
    db = Database()
    for index in range(length):
        db.add("edge", (index, index + 1))
    return db


def transitive_closure_program() -> DatalogProgram:
    program = DatalogProgram()
    program.add_rule(rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y")))
    program.add_rule(rule(atom("path", "?x", "?z"),
                          atom("path", "?x", "?y"), atom("edge", "?y", "?z")))
    return program


def expected_chain_closure(length: int) -> set:
    return {(i, j) for i in range(length + 1) for j in range(i + 1, length + 1)}


@pytest.mark.parametrize("evaluator_class", [NaiveEvaluator, SeminaiveEvaluator])
class TestTransitiveClosure:
    def test_chain_closure(self, evaluator_class):
        database = chain_database(6)
        evaluator = evaluator_class(transitive_closure_program())
        evaluator.evaluate(database)
        assert database.relation("path") == expected_chain_closure(6)

    def test_cycle_terminates(self, evaluator_class):
        database = Database([("edge", (1, 2)), ("edge", (2, 3)), ("edge", (3, 1))])
        evaluator = evaluator_class(transitive_closure_program())
        evaluator.evaluate(database)
        assert database.size("path") == 9  # complete relation over 3 nodes

    def test_run_leaves_input_untouched(self, evaluator_class):
        database = chain_database(3)
        evaluator = evaluator_class(transitive_closure_program())
        result = evaluator.run(database)
        assert database.size("path") == 0
        assert result.size("path") == len(expected_chain_closure(3))


class TestAgreement:
    def test_same_generation(self):
        # same-generation: classic non-linear recursion.
        program = DatalogProgram()
        program.add_rule(rule(atom("sg", "?x", "?y"),
                              atom("parent", "?x", "?p"), atom("parent", "?y", "?p")))
        program.add_rule(rule(atom("sg", "?x", "?y"),
                              atom("parent", "?x", "?px"), atom("sg", "?px", "?py"),
                              atom("parent", "?y", "?py")))
        database = Database()
        # two small family trees
        parents = [(2, 1), (3, 1), (4, 2), (5, 2), (6, 3), (7, 3)]
        for child, parent in parents:
            database.add("parent", (child, parent))
        naive_db = NaiveEvaluator(program).run(database)
        semi_db = SeminaiveEvaluator(program).run(database)
        assert naive_db.relation("sg") == semi_db.relation("sg")
        assert (4, 6) in naive_db.relation("sg")

    def test_negation_agreement(self):
        program = DatalogProgram()
        program.add_rule(rule(atom("reach", "?x"), atom("source", "?x")))
        program.add_rule(rule(atom("reach", "?y"),
                              atom("reach", "?x"), atom("edge", "?x", "?y")))
        program.add_rule(DatalogRule_unreach())
        database = Database([
            ("source", (0,)), ("node", (0,)), ("node", (1,)), ("node", (2,)),
            ("node", (3,)), ("edge", (0, 1)), ("edge", (1, 2)),
        ])
        naive_db = NaiveEvaluator(program).run(database)
        semi_db = SeminaiveEvaluator(program).run(database)
        assert naive_db.relation("unreachable") == semi_db.relation("unreachable") == \
            frozenset({(3,)})

    def test_seminaive_visits_fewer_firings_on_long_chains(self):
        database = chain_database(30)
        naive = NaiveEvaluator(transitive_closure_program())
        semi = SeminaiveEvaluator(transitive_closure_program())
        naive_stats = naive.evaluate(database.copy())
        semi_stats = semi.evaluate(database.copy())
        assert naive_stats.derived_facts == semi_stats.derived_facts
        # The whole point of seminaive evaluation: far less rederivation work.
        assert semi_stats.derived_facts > 0
        assert naive_stats.iterations >= semi_stats.iterations


def DatalogRule_unreach():
    """unreachable(X) :- node(X), not reach(X)."""
    from repro.datalog.program import DatalogRule

    return DatalogRule(atom("unreachable", "?x"),
                       (atom("node", "?x"), atom("reach", "?x", negated=True)))


class TestEvaluateRuleHelper:
    def test_single_rule_evaluation(self):
        database = Database([("edge", (1, 2)), ("edge", (2, 3))])
        produced = evaluate_rule(rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y")),
                                 database)
        assert {a.terms for a in produced} == {(1, 2), (2, 3)}

    def test_delta_restriction(self):
        database = Database([("edge", (1, 2)), ("edge", (2, 3)), ("path", (1, 2))])
        r = rule(atom("path", "?x", "?z"), atom("path", "?x", "?y"), atom("edge", "?y", "?z"))
        produced = evaluate_rule(r, database, delta_predicate="path",
                                 delta_rows={(1, 2)})
        assert {a.terms for a in produced} == {(1, 3)}


class TestIncrementalInsert:
    def test_incremental_matches_full_recomputation(self):
        program = transitive_closure_program()
        database = chain_database(5)
        SeminaiveEvaluator(program).evaluate(database)
        # Add one edge incrementally.
        stats = incremental_insert(program, database, [("edge", (6, 7)), ("edge", (5, 6))])
        assert stats.derived_facts > 0
        fresh = chain_database(7)
        SeminaiveEvaluator(program).evaluate(fresh)
        assert database.relation("path") == fresh.relation("path")

    def test_incremental_rejects_negation(self):
        program = DatalogProgram()
        from repro.datalog.program import DatalogRule

        program.add_rule(DatalogRule(atom("p", "?x"),
                                     (atom("a", "?x"), atom("b", "?x", negated=True))))
        with pytest.raises(ValueError):
            incremental_insert(program, Database(), [("a", (1,))])
