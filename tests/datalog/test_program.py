"""Tests of the datalog substrate's data model."""

import pytest

from repro.datalog.program import (
    Database,
    DatalogAtom,
    DatalogProgram,
    DatalogRule,
    Var,
    atom,
    rule,
)


class TestAtomAndVar:
    def test_atom_constructor_converts_question_strings(self):
        a = atom("edge", "?x", "?y", 3)
        assert a.terms == (Var("x"), Var("y"), 3)
        assert a.arity == 3

    def test_variables_and_groundness(self):
        a = atom("edge", "?x", 1)
        assert a.variables() == (Var("x"),)
        assert not a.is_ground()
        assert atom("edge", 1, 2).is_ground()

    def test_substitute(self):
        a = atom("edge", "?x", "?y")
        bound = a.substitute({Var("x"): 1})
        assert bound.terms == (1, Var("y"))

    def test_negate(self):
        assert atom("edge", 1).negate().negated
        assert str(atom("edge", "?x", negated=True)).startswith("not ")


class TestRule:
    def test_safety_check(self):
        safe = rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y"))
        safe.check_safety()
        unsafe = rule(atom("path", "?x", "?z"), atom("edge", "?x", "?y"))
        with pytest.raises(ValueError):
            unsafe.check_safety()

    def test_negated_variable_must_be_bound(self):
        bad = DatalogRule(atom("p", "?x"), (atom("base", "?x"),
                                            atom("other", "?y", negated=True)))
        with pytest.raises(ValueError):
            bad.check_safety()

    def test_negated_head_rejected(self):
        with pytest.raises(ValueError):
            DatalogRule(atom("p", "?x", negated=True), (atom("base", "?x"),))

    def test_body_partitions(self):
        r = DatalogRule(atom("p", "?x"),
                        (atom("a", "?x"), atom("b", "?x", negated=True)))
        assert [a.predicate for a in r.positive_body()] == ["a"]
        assert [a.predicate for a in r.negative_body()] == ["b"]

    def test_variables_in_order(self):
        r = rule(atom("p", "?x", "?y"), atom("a", "?y", "?x"), atom("b", "?z"))
        assert r.variables() == (Var("x"), Var("y"), Var("z"))


class TestDatabase:
    def test_add_remove_contains(self):
        db = Database()
        assert db.add("edge", (1, 2))
        assert not db.add("edge", (1, 2))
        assert db.contains("edge", (1, 2))
        assert db.remove("edge", (1, 2))
        assert not db.remove("edge", (1, 2))

    def test_add_atom_requires_ground(self):
        db = Database()
        assert db.add_atom(atom("edge", 1, 2))
        with pytest.raises(ValueError):
            db.add_atom(atom("edge", "?x", 2))

    def test_relation_snapshot_and_size(self):
        db = Database([("edge", (1, 2)), ("edge", (2, 3)), ("node", (1,))])
        assert db.relation("edge") == frozenset({(1, 2), (2, 3)})
        assert db.size("edge") == 2
        assert db.size() == 3
        assert len(db) == 3
        assert db.predicates() == ("edge", "node")

    def test_copy_and_merge(self):
        db = Database([("edge", (1, 2))])
        clone = db.copy()
        clone.add("edge", (2, 3))
        assert db.size() == 1
        merged = Database()
        added = merged.merge(clone)
        assert added == 2
        assert merged == clone

    def test_equality_ignores_empty_relations(self):
        left = Database([("edge", (1, 2))])
        right = Database([("edge", (1, 2))])
        right.add("node", (1,))
        right.remove("node", (1,))
        assert left == right

    def test_iteration(self):
        db = Database([("edge", (1, 2)), ("node", (1,))])
        entries = set(db)
        assert ("edge", (1, 2)) in entries
        assert ("node", (1,)) in entries


class TestProgram:
    def test_idb_edb_partition(self):
        program = DatalogProgram()
        program.add_rule(rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y")))
        program.add_rule(rule(atom("path", "?x", "?z"),
                              atom("path", "?x", "?y"), atom("edge", "?y", "?z")))
        assert program.idb_predicates() == {"path"}
        assert program.edb_predicates() == {"edge"}
        assert len(program.rules_for("path")) == 2
        assert len(program) == 2

    def test_add_rule_validates_safety(self):
        program = DatalogProgram()
        with pytest.raises(ValueError):
            program.add_rule(rule(atom("p", "?x", "?y"), atom("edge", "?x", "?x")))
