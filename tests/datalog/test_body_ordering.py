"""Cost ordering of datalog rule bodies (:func:`plan_body_order`) and its
use by the seminaive evaluator: the reordered evaluation must derive
exactly the written-order fixpoint."""

from __future__ import annotations

import random

from repro.datalog.indexes import plan_body_order
from repro.datalog.program import (
    Database,
    DatalogAtom,
    DatalogProgram,
    DatalogRule,
    Var,
)
from repro.datalog.seminaive import SeminaiveEvaluator, incremental_insert

X, Y, Z = Var("X"), Var("Y"), Var("Z")


def chain_db(big=200, small=3):
    database = Database()
    for index in range(big):
        database.add("big", (index, index + 1))
    for index in range(small):
        database.add("small", (index,))
    return database


class TestPlanBodyOrder:
    def test_smallest_relation_first(self):
        body = (DatalogAtom("big", (X, Y)), DatalogAtom("small", (X,)))
        assert plan_body_order(body, chain_db()) == (1, 0)

    def test_written_order_returns_none(self):
        body = (DatalogAtom("small", (X,)), DatalogAtom("big", (X, Y)))
        assert plan_body_order(body, chain_db()) is None

    def test_delta_occurrence_stays_first(self):
        body = (DatalogAtom("big", (X, Y)), DatalogAtom("small", (Y,)))
        order = plan_body_order(body, chain_db(), delta_predicate="big")
        assert order is None or order[0] == 0

    def test_negation_waits_for_bindings(self):
        body = (DatalogAtom("big", (X, Y)),
                DatalogAtom("bad", (Y,), True),
                DatalogAtom("small", (X,)))
        database = chain_db()
        database.add("bad", (1,))
        order = plan_body_order(body, database)
        # small is cheapest, but the negation on Y must wait for big.
        assert order == (2, 0, 1)

    def test_same_predicate_occurrences_keep_relative_order(self):
        body = (DatalogAtom("big", (X, Y)),
                DatalogAtom("big", (Y, Z)),
                DatalogAtom("small", (X,)))
        order = plan_body_order(body, chain_db(), delta_predicate="big")
        assert order is not None
        first = order.index(0)
        second = order.index(1)
        assert first < second


class TestSeminaivePlanned:
    def test_planned_fixpoint_matches_off(self):
        rng = random.Random(11)
        rules = [
            DatalogRule(DatalogAtom("tc", (X, Y)),
                        (DatalogAtom("e", (X, Y)),)),
            DatalogRule(DatalogAtom("tc", (X, Z)),
                        (DatalogAtom("tc", (X, Y)), DatalogAtom("e", (Y, Z)))),
            DatalogRule(DatalogAtom("ok", (X,)),
                        (DatalogAtom("n", (X,)),
                         DatalogAtom("tc", (X, X), True))),
        ]
        program = DatalogProgram(rules)
        facts = [("e", (rng.randint(0, 9), rng.randint(0, 9)))
                 for _ in range(40)]
        facts += [("n", (value,)) for value in range(10)]
        off_db, on_db = Database(facts), Database(facts)
        SeminaiveEvaluator(program, planner="off").evaluate(off_db)
        SeminaiveEvaluator(program, planner="order").evaluate(on_db)
        for predicate in set(off_db.predicates()) | set(on_db.predicates()):
            assert off_db.relation(predicate) == on_db.relation(predicate)

    def test_incremental_insert_matches_off(self):
        rules = [
            DatalogRule(DatalogAtom("tc", (X, Y)),
                        (DatalogAtom("e", (X, Y)),)),
            DatalogRule(DatalogAtom("tc", (X, Z)),
                        (DatalogAtom("tc", (X, Y)), DatalogAtom("e", (Y, Z)))),
        ]
        program = DatalogProgram(rules)
        base = [("e", (index, index + 1)) for index in range(10)]
        off_db, on_db = Database(base), Database(base)
        SeminaiveEvaluator(program, planner="off").evaluate(off_db)
        SeminaiveEvaluator(program, planner="order").evaluate(on_db)
        extra = [("e", (3, 7)), ("e", (7, 0))]
        incremental_insert(program, off_db, extra, planner="off")
        incremental_insert(program, on_db, extra, planner="order")
        for predicate in set(off_db.predicates()):
            assert off_db.relation(predicate) == on_db.relation(predicate)
