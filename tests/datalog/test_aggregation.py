"""Tests of group-by aggregation."""

import pytest

from repro.datalog.aggregation import (
    Aggregate,
    aggregate_relation,
    apply_head_aggregates,
    make_aggregate_rule,
)
from repro.datalog.naive import evaluate_rule
from repro.datalog.program import Database, Var, atom


class TestAggregateEnum:
    def test_from_name(self):
        assert Aggregate.from_name("count") is Aggregate.COUNT
        assert Aggregate.from_name("AVG") is Aggregate.AVG
        with pytest.raises(ValueError):
            Aggregate.from_name("median")


class TestAggregateRelation:
    ROWS = [
        ("alice", 1, 5), ("alice", 2, 3), ("bob", 3, 4), ("bob", 4, 4), ("bob", 5, 2),
    ]

    def test_count_per_group(self):
        result = aggregate_relation(self.ROWS, group_by=[0],
                                    aggregates=[(1, Aggregate.COUNT)])
        assert set(result) == {("alice", 2), ("bob", 3)}

    def test_multiple_aggregates(self):
        result = aggregate_relation(self.ROWS, group_by=[0],
                                    aggregates=[(2, Aggregate.AVG), (2, Aggregate.MAX),
                                                (2, Aggregate.MIN)])
        as_dict = {row[0]: row[1:] for row in result}
        assert as_dict["alice"] == (4.0, 5, 3)
        assert as_dict["bob"] == (pytest.approx(10 / 3), 4, 2)

    def test_sum(self):
        result = aggregate_relation(self.ROWS, group_by=[0],
                                    aggregates=[(2, Aggregate.SUM)])
        assert set(result) == {("alice", 8), ("bob", 10)}

    def test_empty_input(self):
        assert aggregate_relation([], group_by=[0], aggregates=[(1, Aggregate.COUNT)]) == []

    def test_group_by_multiple_columns(self):
        rows = [(1, "a", 10), (1, "a", 20), (1, "b", 5)]
        result = aggregate_relation(rows, group_by=[0, 1],
                                    aggregates=[(2, Aggregate.SUM)])
        assert set(result) == {(1, "a", 30), (1, "b", 5)}


class TestAggregateRules:
    def test_count_rule(self):
        # picture_count(Owner, count(Id)) :- pictures(Id, Owner)
        r = make_aggregate_rule(
            head=atom("picture_count", "?owner", "?id"),
            body=[atom("pictures", "?id", "?owner")],
            aggregates={1: ("count", Var("id"))},
        )
        database = Database([("pictures", (1, "alice")), ("pictures", (2, "alice")),
                             ("pictures", (3, "bob"))])
        produced = evaluate_rule(r, database)
        assert {a.terms for a in produced} == {("alice", 2), ("bob", 1)}

    def test_avg_rule(self):
        r = make_aggregate_rule(
            head=atom("avg_rating", "?id", "?value"),
            body=[atom("rate", "?id", "?value")],
            aggregates={1: ("avg", Var("value"))},
        )
        database = Database([("rate", (1, 5)), ("rate", (1, 3)), ("rate", (2, 4))])
        produced = evaluate_rule(r, database)
        assert {a.terms for a in produced} == {(1, 4.0), (2, 4.0)}

    def test_duplicate_derivations_collapse_before_aggregation(self):
        r = make_aggregate_rule(
            head=atom("cnt", "?owner", "?id"),
            body=[atom("pictures", "?id", "?owner"), atom("pictures", "?id", "?owner")],
            aggregates={1: ("count", Var("id"))},
        )
        database = Database([("pictures", (1, "alice")), ("pictures", (2, "alice"))])
        produced = evaluate_rule(r, database)
        assert {a.terms for a in produced} == {("alice", 2)}

    def test_apply_head_aggregates_passthrough_without_aggregates(self):
        from repro.datalog.program import DatalogRule

        plain = DatalogRule(atom("p", "?x"), (atom("q", "?x"),))
        heads = [atom("p", 1), atom("p", 2)]
        assert apply_head_aggregates(plain, heads) == heads
