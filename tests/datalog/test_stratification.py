"""Tests of dependency analysis and stratification."""

import pytest

from repro.datalog.program import DatalogProgram, DatalogRule, atom, rule
from repro.datalog.stratification import (
    DependencyGraph,
    StratificationError,
    condensation_order,
    stratify,
)


def negated(a):
    return a.negate()


class TestDependencyGraph:
    def test_edges_and_direction(self):
        program = DatalogProgram()
        program.add_rule(rule(atom("p", "?x"), atom("q", "?x")))
        graph = DependencyGraph.from_program(program)
        assert graph.depends_on("p") == {"q"}
        assert graph.depends_on("q") == set()

    def test_negative_edges_recorded(self):
        program = DatalogProgram()
        program.add_rule(DatalogRule(atom("p", "?x"),
                                     (atom("a", "?x"), negated(atom("q", "?x")))))
        graph = DependencyGraph.from_program(program)
        assert ("q", "p") in graph.negative_edges()
        assert ("a", "p") not in graph.negative_edges()

    def test_negative_flag_sticks_when_edge_seen_both_ways(self):
        program = DatalogProgram()
        program.add_rule(DatalogRule(atom("p", "?x"),
                                     (atom("q", "?x"), negated(atom("q", "?x")))))
        graph = DependencyGraph.from_program(program)
        assert ("q", "p") in graph.negative_edges()

    def test_is_recursive(self):
        program = DatalogProgram()
        program.add_rule(rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y")))
        program.add_rule(rule(atom("path", "?x", "?z"),
                              atom("path", "?x", "?y"), atom("edge", "?y", "?z")))
        graph = DependencyGraph.from_program(program)
        assert graph.is_recursive("path")
        assert not graph.is_recursive("edge")

    def test_negative_cycle_detection(self):
        program = DatalogProgram()
        program.add_rule(DatalogRule(atom("p", "?x"),
                                     (atom("base", "?x"), negated(atom("q", "?x")))))
        program.add_rule(DatalogRule(atom("q", "?x"),
                                     (atom("base", "?x"), negated(atom("p", "?x")))))
        graph = DependencyGraph.from_program(program)
        assert graph.has_negative_cycle()
        with pytest.raises(StratificationError):
            graph.stratify()


class TestStratify:
    def test_positive_program_single_stratum(self):
        program = DatalogProgram()
        program.add_rule(rule(atom("p", "?x"), atom("q", "?x")))
        program.add_rule(rule(atom("r", "?x"), atom("p", "?x")))
        strata = stratify(program)
        assert len(strata) == 1
        assert len(strata[0]) == 2

    def test_negation_splits_strata(self):
        program = DatalogProgram()
        program.add_rule(rule(atom("reach", "?x"), atom("source", "?x")))
        program.add_rule(rule(atom("reach", "?y"),
                              atom("reach", "?x"), atom("edge", "?x", "?y")))
        program.add_rule(DatalogRule(atom("unreachable", "?x"),
                                     (atom("node", "?x"), negated(atom("reach", "?x")))))
        strata = stratify(program)
        assert len(strata) == 2
        assert {r.head.predicate for r in strata[0]} == {"reach"}
        assert {r.head.predicate for r in strata[1]} == {"unreachable"}

    def test_chained_negation_three_strata(self):
        program = DatalogProgram()
        program.add_rule(rule(atom("a", "?x"), atom("base", "?x")))
        program.add_rule(DatalogRule(atom("b", "?x"),
                                     (atom("base", "?x"), negated(atom("a", "?x")))))
        program.add_rule(DatalogRule(atom("c", "?x"),
                                     (atom("base", "?x"), negated(atom("b", "?x")))))
        strata = stratify(program)
        assert [sorted({r.head.predicate for r in s}) for s in strata] == [["a"], ["b"], ["c"]]

    def test_stratum_ordering_respects_positive_dependencies_on_negated_strata(self):
        program = DatalogProgram()
        program.add_rule(DatalogRule(atom("filtered", "?x"),
                                     (atom("base", "?x"), negated(atom("bad", "?x")))))
        program.add_rule(rule(atom("bad", "?x"), atom("flagged", "?x")))
        program.add_rule(rule(atom("report", "?x"), atom("filtered", "?x")))
        strata = stratify(program)
        positions = {}
        for index, stratum in enumerate(strata):
            for r in stratum:
                positions[r.head.predicate] = index
        assert positions["bad"] < positions["filtered"]
        assert positions["filtered"] <= positions["report"]


class TestCondensationOrder:
    def test_topological_component_order(self):
        rules = [
            rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y")),
            rule(atom("path", "?x", "?z"), atom("path", "?x", "?y"), atom("edge", "?y", "?z")),
            rule(atom("report", "?x"), atom("path", "?x", "?x")),
        ]
        order = condensation_order(rules)
        flattened = [predicate for component in order for predicate in component]
        assert flattened.index("edge") < flattened.index("path")
        assert flattened.index("path") < flattened.index("report")
        # path is alone in its (recursive) component
        assert ["path"] in order
