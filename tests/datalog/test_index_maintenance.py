"""Incremental maintenance of the datalog join indexes."""

from repro.datalog.indexes import IndexPool, RelationIndex
from repro.datalog.program import Database, DatalogProgram, atom, rule
from repro.datalog.seminaive import SeminaiveEvaluator


class TestRelationIndex:
    def test_len_is_a_running_count(self):
        index = RelationIndex([(1, "a"), (2, "b")], positions=(0,))
        assert len(index) == 2
        index.add((3, "c"))
        assert len(index) == 3
        assert index.lookup((3,)) == [(3, "c")]

    def test_add_updates_existing_buckets(self):
        index = RelationIndex([(1, "a")], positions=(0,))
        index.add((1, "b"))
        assert sorted(index.lookup((1,))) == [(1, "a"), (1, "b")]


class TestIndexPool:
    def test_add_row_maintains_cached_indexes(self):
        database = Database([("edge", (1, 2))])
        pool = IndexPool(database)
        by_src = pool.index("edge", (0,))
        assert by_src.lookup((1,)) == [(1, 2)]
        database.add("edge", (1, 3))
        pool.add_row("edge", (1, 3))
        assert sorted(by_src.lookup((1,))) == [(1, 2), (1, 3)]
        # A second index on the same predicate is kept in sync too.
        by_dst = pool.index("edge", (1,))
        database.add("edge", (4, 3))
        pool.add_row("edge", (4, 3))
        assert sorted(by_dst.lookup((3,))) == [(1, 3), (4, 3)]

    def test_add_row_for_unindexed_predicate_is_a_noop(self):
        pool = IndexPool(Database())
        pool.add_row("never_indexed", (1,))  # must not raise


class TestSeminaiveStaysCorrect:
    def test_closure_agrees_with_reference_after_pool_reuse(self):
        program = DatalogProgram()
        program.add_rule(rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y")))
        program.add_rule(rule(atom("path", "?x", "?z"),
                              atom("path", "?x", "?y"), atom("edge", "?y", "?z")))
        database = Database()
        n = 12
        for i in range(n - 1):
            database.add("edge", (i, i + 1))
        result = SeminaiveEvaluator(program).run(database)
        expected = {(i, j) for i in range(n) for j in range(i + 1, n)}
        assert result.relation("path") == expected
