"""StorageTable semantics parity: the sqlite backend must behave exactly
like the memory backend (which is the seed's dict/index table, extracted
verbatim) for every operation of the :class:`repro.store.StorageTable`
protocol — insertion, key replacement, type-strict matching, scans over
bound-argument subsets, zero-arity relations, and the metadata store."""

from __future__ import annotations

import pytest

from repro.core.schema import RelationKind, RelationSchema
from repro.store.backend import STORE_NAMESPACE, StoreError, resolve_backend
from repro.store.memory import MemoryBackend
from repro.store.sqlite import SqliteBackend


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    made = MemoryBackend() if request.param == "memory" else SqliteBackend()
    yield made
    made.close()


def _schema(name="r", columns=("a", "b"), key=()):
    return RelationSchema(name=name, peer="p", columns=tuple(columns),
                          kind=RelationKind.EXTENSIONAL, key=tuple(key))


class TestTableSemantics:
    def test_insert_iter_contains_len(self, backend):
        table = backend.table(STORE_NAMESPACE, _schema())
        inserted, displaced = table.insert((1, "x"))
        assert inserted == [(1, "x")] and displaced == []
        inserted, displaced = table.insert((1, "x"))
        assert inserted == [] and displaced == []  # duplicate is a no-op
        table.insert((2, b"\x00\xff"))
        table.insert((None, 2.5))
        assert len(table) == 3
        assert (1, "x") in table
        assert (2, b"\x00\xff") in table
        assert (None, 2.5) in table
        assert (3, "x") not in table
        assert sorted(table, key=repr) == sorted(
            [(1, "x"), (2, b"\x00\xff"), (None, 2.5)], key=repr)

    def test_type_strict_rows_and_probes(self, backend):
        """``True``, ``1`` and ``1.0`` are distinct rows (and probe keys),
        matching the hash indexes' type-aware keying."""
        table = backend.table(STORE_NAMESPACE, _schema(columns=("v",)))
        for value in (True, 1, 1.0):
            inserted, _ = table.insert((value,))
            assert inserted, value
        assert len(table) == 3
        assert [row for row in table.scan({0: True})] == [(True,)]
        only_int = list(table.scan({0: 1}))
        assert only_int == [(1,)] and type(only_int[0][0]) is int
        only_float = list(table.scan({0: 1.0}))
        assert only_float == [(1.0,)] and type(only_float[0][0]) is float

    def test_primary_key_replacement(self, backend):
        schema = _schema(columns=("id", "val"), key=("id",))
        table = backend.table(STORE_NAMESPACE, schema)
        table.insert((1, "old"))
        inserted, displaced = table.insert((1, "new"))
        assert inserted == [(1, "new")]
        assert displaced == [(1, "old")]
        assert list(table) == [(1, "new")]
        # Exact duplicate of the current row: no-op, nothing displaced.
        inserted, displaced = table.insert((1, "new"))
        assert inserted == [] and displaced == []

    def test_zero_arity(self, backend):
        table = backend.table(STORE_NAMESPACE, _schema(name="flag", columns=()))
        assert len(table) == 0 and () not in table
        inserted, _ = table.insert(())
        assert inserted == [()]
        assert () in table and list(table) == [()]
        assert table.insert(()) == ([], [])
        assert table.delete(()) is True
        assert len(table) == 0

    def test_scan_bound_subsets(self, backend):
        table = backend.table(STORE_NAMESPACE, _schema(columns=("a", "b", "c")))
        rows = [(i % 3, f"s{i % 2}", i) for i in range(12)]
        for row in rows:
            table.insert(row)
        assert sorted(table.scan({0: 1})) == sorted(r for r in rows if r[0] == 1)
        assert sorted(table.scan({0: 1, 1: "s0"})) == sorted(
            r for r in rows if r[0] == 1 and r[1] == "s0")
        assert list(table.scan({1: "nope"})) == []
        # A binding past the arity can never match.
        assert list(table.scan({7: 1})) == []

    def test_delete_and_clear(self, backend):
        table = backend.table(STORE_NAMESPACE, _schema())
        table.insert((1, "x"))
        table.insert((2, "y"))
        assert table.delete((1, "x")) is True
        assert table.delete((1, "x")) is False
        assert table.delete((9, "zz")) is False
        removed = table.clear()
        assert removed == [(2, "y")]
        assert len(table) == 0 and table.clear() == []

    def test_same_relation_two_namespaces(self, backend):
        """Store and derived tables of one relation are independent."""
        schema = _schema(name="dual", columns=("x",))
        store = backend.table("store", schema)
        derived = backend.table("derived", schema)
        store.insert((1,))
        derived.insert((2,))
        assert list(store) == [(1,)] and list(derived) == [(2,)]


class TestMetadata:
    def test_meta_round_trip_preserves_order(self, backend):
        for index in range(5):
            backend.save_meta("rule", f"rule-{index}", f"payload-{index}")
        assert backend.load_meta("rule") == [
            (f"rule-{index}", f"payload-{index}") for index in range(5)]
        assert backend.load_meta("other") == []

    def test_meta_overwrite_keeps_position(self, backend):
        backend.save_meta("rule", "a", "1")
        backend.save_meta("rule", "b", "2")
        backend.save_meta("rule", "a", "1-bis")
        assert backend.load_meta("rule") == [("a", "1-bis"), ("b", "2")]

    def test_meta_delete(self, backend):
        backend.save_meta("delegation", "d1", "x")
        backend.save_meta("delegation", "d2", "y")
        backend.delete_meta("delegation", "d1")
        backend.delete_meta("delegation", "missing")
        assert backend.load_meta("delegation") == [("d2", "y")]


class TestSqliteSpecifics:
    def test_stored_relations_catalog(self, tmp_path):
        path = tmp_path / "cat.db"
        backend = SqliteBackend(str(path))
        backend.table(STORE_NAMESPACE, _schema(name="edges"))
        backend.table(STORE_NAMESPACE, _schema(name="nodes", columns=("n",)))
        backend.commit()
        backend.close()
        reopened = SqliteBackend(str(path))
        assert reopened.stored_relations(STORE_NAMESPACE) == (
            ("edges", "p", 2), ("nodes", "p", 1))
        # Re-attaching with the stored arity works; a drifted one refuses.
        table = reopened.table(STORE_NAMESPACE, _schema(name="edges"))
        assert len(table) == 0
        with pytest.raises(StoreError):
            reopened.table(STORE_NAMESPACE, _schema(name="nodes", columns=("n", "m")))
        reopened.close()

    def test_abort_discards_uncommitted_work(self, tmp_path):
        path = tmp_path / "crash.db"
        backend = SqliteBackend(str(path))
        table = backend.table(STORE_NAMESPACE, _schema(name="t", columns=("x",)))
        table.insert((1,))
        backend.commit()
        table.insert((2,))
        backend.save_meta("rule", "r1", "uncommitted")
        backend.abort()
        assert backend.closed
        reopened = SqliteBackend(str(path))
        table = reopened.table(STORE_NAMESPACE, _schema(name="t", columns=("x",)))
        assert list(table) == [(1,)]
        assert reopened.load_meta("rule") == []
        reopened.close()

    def test_resolve_backend_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        assert isinstance(resolve_backend(None, peer="p"), MemoryBackend)
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        backend = resolve_backend(None, peer="p")
        assert isinstance(backend, SqliteBackend) and not backend.persistent
        backend.close()
        durable = resolve_backend("sqlite", peer="p",
                                  options={"path": str(tmp_path)})
        assert durable.persistent
        durable.close()
        assert (tmp_path / "p.db").exists()
