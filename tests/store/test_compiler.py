"""Rule-body → SQL compilation: the whole-body pushdown path must agree
with the tuple-at-a-time Python evaluator on every shape it claims to
handle (joins, bound-argument probes, negation, ground heads) and must
*refuse* — ``compile()`` returning ``None`` — every shape it cannot prove
equivalent (variable relation/peer positions, remote literals, provided
facts), so the evaluator falls back literal by literal."""

from __future__ import annotations

import pytest

from repro.api import system
from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact
from repro.core.rules import Atom, Rule
from repro.core.terms import Variable
from repro.provenance.graph import ProvenanceTracker
from repro.store.compiler import _EMPTY


def sqlite_engine(program: str) -> WebdamLogEngine:
    engine = WebdamLogEngine("p", storage="sqlite")
    engine.load_program(program)
    return engine


def memory_engine(program: str) -> WebdamLogEngine:
    engine = WebdamLogEngine("p", storage="memory")
    engine.load_program(program)
    return engine


def converge_pair(program: str, facts):
    """The same program and facts through both backends; returns the engines."""
    engines = (sqlite_engine(program), memory_engine(program))
    for engine in engines:
        for fact in facts:
            engine.insert_fact(fact)
        engine.run_to_quiescence(max_stages=50)
    return engines


class TestCompiledShapes:
    def test_join_runs_as_single_statement(self):
        program = """
        collection extensional persistent link@p(src, dst);
        collection intensional hop2@p(src, dst);
        rule hop2@p($x, $z) :- link@p($x, $y), link@p($y, $z);
        """
        facts = [Fact("link", "p", (i, i + 1)) for i in range(5)]
        sql, mem = converge_pair(program, facts)
        assert sql.snapshot() == mem.snapshot()
        assert sql.eval_counters["compiled_sql"] > 0
        assert sql.state.backend.counters["compiled_statements"] > 0
        assert mem.eval_counters["compiled_sql"] == 0

    def test_bound_argument_probe(self):
        program = """
        collection extensional persistent rate@p(user, stars);
        collection intensional fives@p(user);
        rule fives@p($u) :- rate@p($u, 5);
        """
        facts = [Fact("rate", "p", (f"u{i}", i % 6)) for i in range(12)]
        sql, mem = converge_pair(program, facts)
        assert sql.snapshot() == mem.snapshot()
        assert sql.eval_counters["compiled_sql"] > 0

    def test_negation_as_not_exists(self):
        program = """
        collection extensional persistent link@p(src, dst);
        collection extensional persistent blocked@p(node);
        collection intensional ok@p(src, dst);
        rule ok@p($x, $y) :- link@p($x, $y), not blocked@p($x);
        """
        facts = ([Fact("link", "p", (i, i + 1)) for i in range(6)]
                 + [Fact("blocked", "p", (2,)), Fact("blocked", "p", (4,))])
        sql, mem = converge_pair(program, facts)
        assert sql.snapshot() == mem.snapshot()
        assert sql.eval_counters["compiled_sql"] > 0

    def test_repeated_variable_inside_negated_literal(self):
        """A variable repeated inside one negated literal constrains that
        literal's rows against themselves (here: no self-loop exists at all)
        without binding anything for the rest of the body.  The safety check
        keeps such rules out of parsed programs, so drive the compiler
        directly with a hand-built rule."""
        engine = sqlite_engine("""
        collection extensional persistent node@p(id);
        collection extensional persistent link@p(src, dst);
        collection intensional calm@p(id);
        """)
        x, z = Variable("x"), Variable("z")
        rule = Rule(head=Atom("calm", "p", (x,)),
                    body=(Atom("node", "p", (x,)),
                          Atom("link", "p", (z, z), negated=True)))
        for i in range(3):
            engine.insert_fact(Fact("node", "p", (i,)))
        engine.insert_fact(Fact("link", "p", (1, 2)))
        engine.run_to_quiescence()
        rows = engine.state.pushdown.run(rule)
        assert sorted(s[x].value for s in rows) == [0, 1, 2]
        engine.insert_fact(Fact("link", "p", (2, 2)))  # self-loop appears
        engine.run_to_quiescence()
        assert engine.state.pushdown.run(rule) == []

    def test_ground_head_existence(self):
        program = """
        collection extensional persistent sensor@p(id, level);
        collection intensional alarm@p();
        rule alarm@p() :- sensor@p($x, 5);
        """
        quiet = [Fact("sensor", "p", (1, 2)), Fact("sensor", "p", (2, 3))]
        sql, mem = converge_pair(program, quiet)
        assert sql.snapshot() == mem.snapshot()
        assert "alarm@p" not in sql.snapshot()
        loud = quiet + [Fact("sensor", "p", (3, 5))]
        sql, mem = converge_pair(program, loud)
        assert sql.snapshot() == mem.snapshot()
        assert sql.snapshot()["alarm@p"] == (Fact("alarm", "p", ()),)

    def test_empty_relation_compiles_to_no_statement(self):
        """A body reading a relation with no stored facts is provably empty:
        the pushdown answers without running any SQL."""
        engine = sqlite_engine("""
        collection extensional persistent ghost@p(x);
        collection intensional echo@p(x);
        rule echo@p($x) :- ghost@p($x);
        """)
        engine.run_to_quiescence()
        [rule] = engine.state.own_rules
        assert engine.state.pushdown.compile(rule) is _EMPTY
        assert engine.state.pushdown.run(rule) == []
        assert engine.state.backend.counters["compiled_statements"] == 0


class TestFallbacks:
    def test_variable_peer_literal_is_not_compiled(self):
        engine = sqlite_engine("""
        collection extensional persistent follows@p(who);
        collection intensional wall@p(id);
        rule wall@p($id) :- follows@p($f), posts@$f($id);
        """)
        [rule] = engine.state.own_rules
        assert engine.state.pushdown.compile(rule) is None
        assert engine.state.pushdown.run(rule) is None

    def test_remote_literal_is_not_compiled(self):
        engine = sqlite_engine("""
        collection extensional persistent posts@q(id);
        collection intensional mirror@p(id);
        rule mirror@p($id) :- posts@q($id);
        """)
        [rule] = engine.state.own_rules
        assert engine.state.pushdown.compile(rule) is None

    def test_provided_facts_force_fallback(self):
        """Facts pushed into a local intensional relation live outside the
        store tables; a body reading that relation must not be pushed down —
        and the fallback still computes the same answers as a memory engine."""
        program = """
        collection intensional seen@p(id);
        collection intensional twice@p(a, b);
        rule twice@p($x, $y) :- seen@p($x), seen@p($y);
        """
        engines = (sqlite_engine(program), memory_engine(program))
        for engine in engines:
            engine.receive_facts("remote", inserted=[Fact("seen", "p", (1,)),
                                                     Fact("seen", "p", (2,))])
            engine.run_to_quiescence(max_stages=10)
        sql, mem = engines
        assert sql.snapshot() == mem.snapshot()
        assert len(sql.snapshot()["twice@p"]) == 4

    def test_provenance_disables_pushdown(self):
        """Provenance recording needs per-derivation support tuples, which a
        set-at-a-time SQL result cannot carry — the engine must keep the
        evaluator on the Python path."""
        engine = WebdamLogEngine("p", storage="sqlite")
        engine.provenance = ProvenanceTracker()
        engine.load_program("""
        collection extensional persistent link@p(src, dst);
        collection intensional hop2@p(src, dst);
        rule hop2@p($x, $z) :- link@p($x, $y), link@p($y, $z);
        """)
        for i in range(4):
            engine.insert_fact(Fact("link", "p", (i, i + 1)))
        engine.run_to_quiescence()
        assert engine.eval_counters["compiled_sql"] == 0
        assert len(engine.snapshot()["hop2@p"]) == 3


class TestAggregatePushdown:
    def _deployment(self, rows):
        deployment = (system().storage("sqlite")
                      .peer("hub").program("""
                      collection extensional persistent sales@hub(region, amount);
                      """).done().build())
        for region, amount in rows:
            deployment.peer("hub").insert(Fact("sales", "hub", (region, amount)))
        deployment.converge()
        return deployment

    def _counters(self, deployment):
        return deployment.runtime.peer("hub").engine.state.backend.counters

    def test_integer_sum_group_by(self):
        deployment = self._deployment(
            [("eu", 10), ("eu", 20), ("us", 5), ("us", 7)])
        view = deployment.query(
            "hub", "totals($r, sum($a)) :- sales@hub($r, $a)")
        deployment.converge()
        assert sorted(view.rows()) == [("eu", 30), ("us", 12)]
        assert self._counters(deployment)["aggregate_pushdowns"] == 1
        deployment.close()

    def test_float_sum_falls_back(self):
        """Float accumulation order is not associative — SUM/AVG over floats
        must come from the Python path, bit-identical by construction."""
        deployment = self._deployment(
            [("eu", 0.1), ("eu", 0.2), ("us", 5)])
        view = deployment.query(
            "hub", "totals($r, sum($a)) :- sales@hub($r, $a)")
        deployment.converge()
        assert self._counters(deployment)["aggregate_pushdowns"] == 0
        assert sorted(view.rows()) == [("eu", 0.1 + 0.2), ("us", 5)]
        deployment.close()

    def test_mixed_type_min_falls_back(self):
        """MIN over a column holding several value types cannot be decoded
        from one SQL result column; both backends must take the Python path
        (whose own behaviour on unorderable mixes — raising — is unchanged)."""
        deployment = self._deployment(
            [("eu", 3), ("eu", 7), ("us", "cheap"), ("us", "dear")])
        view = deployment.query(
            "hub", "floor($r, min($a)) :- sales@hub($r, $a)")
        deployment.converge()
        assert self._counters(deployment)["aggregate_pushdowns"] == 0
        assert sorted(view.rows()) == [("eu", 3), ("us", "cheap")]
        deployment.close()

    def test_avg_and_count_match_memory(self):
        rows = [(f"r{i % 3}", i) for i in range(11)]
        answers = {}
        for backend in ("memory", "sqlite"):
            deployment = (system().storage(backend)
                          .peer("hub").program("""
                          collection extensional persistent sales@hub(region, amount);
                          """).done().build())
            for region, amount in rows:
                deployment.peer("hub").insert(Fact("sales", "hub", (region, amount)))
            deployment.converge()
            view = deployment.query(
                "hub",
                "board($r, avg($a), count($a)) :- sales@hub($r, $a)")
            deployment.converge()
            answers[backend] = sorted(view.rows())
            deployment.close()
        assert answers["memory"] == answers["sqlite"]
