"""Crash recovery: a durable SQLite deployment killed at an arbitrary stage
boundary — or mid-stage, before the stage transaction commits — must reopen
to its last committed state and re-converge to exactly the fixpoint an
uninterrupted run reaches.  Facts, rules, schemas and installed delegation
remainders are durable; in-flight stage work is rolled back whole."""

from __future__ import annotations

import pytest

from repro.api import system
from repro.core.facts import Fact

PROGRAM_HUB = """
collection extensional persistent follows@hub(who);
collection extensional persistent local@hub(id);
collection intensional wall@hub(id);
collection intensional big@hub(id);
rule wall@hub($id) :- local@hub($id);
rule wall@hub($id) :- follows@hub($f), posts@$f($id);
rule big@hub($id) :- wall@hub($id), not small@hub($id);
collection extensional persistent small@hub(id);
"""

PROGRAM_LEAF = "collection extensional persistent posts@{name}(id);"


def build(path, peers=("hub", "left", "right"), programs=True, provenance=False):
    builder = system().storage("sqlite", path=str(path))
    if provenance:
        builder = builder.provenance()
    for name in peers:
        peer = builder.peer(name)
        if programs:
            if name == "hub":
                peer.program(PROGRAM_HUB)
            else:
                peer.program(PROGRAM_LEAF.format(name=name))
    return builder.build()


def seed(deployment):
    deployment.peer("hub").insert(Fact("follows", "hub", ("left",)))
    deployment.peer("hub").insert(Fact("follows", "hub", ("right",)))
    deployment.peer("hub").insert(Fact("local", "hub", (0,)))
    deployment.peer("hub").insert(Fact("small", "hub", (3,)))
    for index in range(4):
        deployment.peer("left").insert(Fact("posts", "left", (index,)))
        deployment.peer("right").insert(Fact("posts", "right", (index + 10,)))


def churn(deployment, rounds):
    """A deterministic mixed stream: inserts, deletes, a follow retraction."""
    for i in range(rounds):
        deployment.peer("left").insert(Fact("posts", "left", (100 + i,)))
        deployment.peer("hub").insert(Fact("small", "hub", (100 + i,)))
        if i % 3 == 1:
            deployment.peer("left").delete(Fact("posts", "left", (100 + i - 1,)))
        if i == rounds - 1:
            deployment.peer("hub").delete(Fact("follows", "hub", ("right",)))
        deployment.converge()


def crash(deployment):
    """Simulated process death: every peer's backend drops its connection
    without committing.  The deployment object is unusable afterwards."""
    for name in deployment.peer_names():
        deployment.runtime.peer(name).engine.state.backend.abort()


class TestReopen:
    def test_reopen_reconverges_to_identical_fixpoint(self, tmp_path):
        deployment = build(tmp_path)
        seed(deployment)
        deployment.converge()
        expected = deployment.snapshot()
        assert expected["hub"]["wall@hub"]  # sanity: delegation produced facts
        deployment.close()

        reopened = build(tmp_path, programs=False)
        reopened.converge()
        assert reopened.snapshot() == expected
        reopened.close()

    def test_rules_stay_live_after_reopen(self, tmp_path):
        deployment = build(tmp_path)
        seed(deployment)
        deployment.converge()
        deployment.close()

        reopened = build(tmp_path, programs=False)
        reopened.converge()
        reopened.peer("left").insert(Fact("posts", "left", (77,)))
        reopened.converge()
        walls = reopened.snapshot()["hub"]["wall@hub"]
        assert Fact("wall", "hub", (77,)) in walls
        reopened.close()

    def test_new_rules_after_reopen_get_fresh_ids(self, tmp_path):
        deployment = build(tmp_path)
        seed(deployment)
        deployment.converge()
        old_ids = {rule.rule_id for rule
                   in deployment.runtime.peer("hub").engine.state.own_rules}
        deployment.close()

        reopened = build(tmp_path, programs=False)
        reopened.converge()
        state = reopened.runtime.peer("hub").engine.state
        assert {rule.rule_id for rule in state.own_rules} == old_ids
        added = reopened.peer("hub").add_rule(
            "rule big@hub($id) :- local@hub($id)")
        assert added.rule_id not in old_ids
        reopened.converge()
        reopened.close()

    def test_delegation_reinstall_is_idempotent(self, tmp_path):
        deployment = build(tmp_path)
        seed(deployment)
        deployment.converge()

        def installed(dep):
            return {name: len(dep.runtime.peer(name).engine.state.delegations_in.all())
                    for name in dep.peer_names()}

        first = installed(deployment)
        assert first["left"] == 1 and first["right"] == 1
        deployment.close()
        for _ in range(2):  # reopen twice: re-sent remainders must dedup
            reopened = build(tmp_path, programs=False)
            reopened.converge()
            assert installed(reopened) == first
            reopened.close()


class TestCrash:
    def test_uncommitted_inserts_roll_back(self, tmp_path):
        deployment = build(tmp_path)
        seed(deployment)
        deployment.converge()
        committed = deployment.snapshot()
        # These writes join the next stage transaction, which never commits.
        deployment.peer("left").insert(Fact("posts", "left", (999,)))
        deployment.peer("hub").insert(Fact("local", "hub", (999,)))
        crash(deployment)

        reopened = build(tmp_path, programs=False)
        reopened.converge()
        assert reopened.snapshot() == committed
        reopened.close()

    def test_crash_mid_churn_then_replay_matches_uninterrupted_run(self, tmp_path):
        """Kill the deployment partway through a churn stream (with an extra
        un-converged stage in flight), reopen, replay the remaining churn:
        the final fixpoint must be byte-identical to a run that never died."""
        control_path = tmp_path / "control"
        crash_path = tmp_path / "crashed"
        control = build(control_path)
        seed(control)
        control.converge()
        churn(control, rounds=6)
        expected = control.snapshot()
        control.close()

        victim = build(crash_path)
        seed(victim)
        victim.converge()
        churn(victim, rounds=3)
        # A fourth round begins: one stage runs (committed), then death
        # before quiescence.
        victim.peer("left").insert(Fact("posts", "left", (103,)))
        victim.peer("hub").insert(Fact("small", "hub", (103,)))
        victim.runtime.peer("left").engine.run_stage()
        crash(victim)

        survivor = build(crash_path, programs=False)
        survivor.converge()
        # Replay round 3 onward; re-inserting what the interrupted round
        # already committed is harmless (set semantics).
        for i in range(3, 6):
            survivor.peer("left").insert(Fact("posts", "left", (100 + i,)))
            survivor.peer("hub").insert(Fact("small", "hub", (100 + i,)))
            if i % 3 == 1:
                survivor.peer("left").delete(Fact("posts", "left", (100 + i - 1,)))
            if i == 5:
                survivor.peer("hub").delete(Fact("follows", "hub", ("right",)))
            survivor.converge()
        assert survivor.snapshot() == expected
        survivor.close()

    def test_explain_works_after_crash_recovery(self, tmp_path):
        """Provenance is rebuilt by the full recompute on reopen, so lineage
        queries keep working on a recovered deployment."""
        deployment = build(tmp_path, provenance=True)
        seed(deployment)
        deployment.converge()
        target = Fact("wall", "hub", (1,))
        before = deployment.explain("hub", target)
        assert before.why
        crash(deployment)

        reopened = build(tmp_path, programs=False, provenance=True)
        reopened.converge()
        after = reopened.explain("hub", target)
        assert after.why
        assert {tuple(sorted(str(s) for s in alt)) for alt in after.why} == \
               {tuple(sorted(str(s) for s in alt)) for alt in before.why}
        reopened.close()
