"""Tests of the canonical Wepic rule set."""

from repro.core.schema import RelationKind
from repro.wepic.rules import WepicRules, attendee_schemas, sigmod_schemas


class TestSchemas:
    def test_attendee_schemas_cover_all_relations(self):
        schemas = {s.name: s for s in attendee_schemas("Jules")}
        for expected in ("pictures", "selectedAttendee", "selectedPictures",
                         "communicate", "rate", "comment", "tag", "authorized",
                         "wepic", "email", "attendeePictures", "attendeeRatings"):
            assert expected in schemas
        assert schemas["attendeePictures"].kind is RelationKind.INTENSIONAL
        assert schemas["pictures"].kind is RelationKind.EXTENSIONAL
        assert all(s.peer == "Jules" for s in schemas.values())

    def test_sigmod_schemas_include_group_relations(self):
        schemas = {s.qualified_name for s in sigmod_schemas()}
        assert "pictures@sigmod" in schemas
        assert "pictures@SigmodFB" in schemas
        assert "attendees@sigmod" in schemas


class TestAttendeeRules:
    def setup_method(self):
        self.rules = WepicRules()

    def test_attendee_pictures_rule_matches_paper(self):
        rule = self.rules.attendee_pictures_rule("Jules")
        assert rule.head.relation_constant() == "attendeePictures"
        assert rule.head.peer_constant() == "Jules"
        assert rule.body[0].relation_constant() == "selectedAttendee"
        assert rule.body[1].relation_constant() == "pictures"
        assert rule.body[1].peer_constant() is None  # variable peer
        rule.check_safety()

    def test_transfer_rule_has_variable_relation_head(self):
        rule = self.rules.transfer_rule("Jules")
        assert rule.head.relation_constant() is None
        assert rule.head.peer_constant() is None
        assert len(rule.body) == 3
        rule.check_safety()

    def test_publish_to_sigmod_rule(self):
        rule = self.rules.publish_to_sigmod_rule("Emilien")
        assert rule.head.peer_constant() == "sigmod"
        assert rule.body[0].peer_constant() == "Emilien"

    def test_rating_filtered_rule_adds_rate_literal(self):
        rule = self.rules.rating_filtered_rule("Jules", rating=5)
        assert len(rule.body) == 3
        rate_literal = rule.body[2]
        assert rate_literal.relation_constant() == "rate"
        assert rate_literal.args[1].value == 5
        rule.check_safety()

    def test_owner_filtered_rule(self):
        rule = self.rules.owner_filtered_rule("Jules", "Emilien")
        constants = [a.value for a in rule.head.args if hasattr(a, "value")]
        assert "Emilien" in constants
        rule.check_safety()

    def test_tagged_attendee_rule(self):
        rule = self.rules.tagged_attendee_rule("Jules", "Julia")
        assert rule.body[2].relation_constant() == "tag"
        rule.check_safety()

    def test_attendee_rules_bundle(self):
        bundle = self.rules.attendee_rules("Jules")
        heads = [r.head.relation_constant() for r in bundle]
        assert "attendeePictures" in heads
        assert "pictures" in heads  # publish to sigmod
        without_publish = self.rules.attendee_rules("Jules", publish_to_sigmod=False)
        assert len(without_publish) == len(bundle) - 1

    def test_rules_are_authored_by_the_peer(self):
        for rule in self.rules.attendee_rules("Jules"):
            assert rule.author == "Jules"


class TestSigmodRules:
    def setup_method(self):
        self.rules = WepicRules()

    def test_facebook_publication_rule_matches_paper(self):
        rule = self.rules.facebook_publication_rule()
        assert rule.head.peer_constant() == "SigmodFB"
        assert rule.body[0].peer_constant() == "sigmod"
        authorized = rule.body[1]
        assert authorized.relation_constant() == "authorized"
        assert authorized.peer_constant() is None  # @$owner
        assert authorized.args[0].value == "Facebook"
        rule.check_safety()

    def test_retrieval_rules_cover_pictures_comments_tags(self):
        rules = self.rules.facebook_retrieval_rules()
        heads = {r.head.relation_constant() for r in rules}
        assert heads == {"pictures", "comments", "tags"}
        assert all(r.head.peer_constant() == "sigmod" for r in rules)
        assert all(r.body[0].peer_constant() == "SigmodFB" for r in rules)

    def test_sigmod_rules_toggles(self):
        assert len(self.rules.sigmod_rules()) == 4
        assert len(self.rules.sigmod_rules(publish_to_facebook=False)) == 3
        assert len(self.rules.sigmod_rules(retrieve_from_facebook=False)) == 1
        assert self.rules.sigmod_rules(False, False) == []

    def test_custom_peer_names(self):
        rules = WepicRules(sigmod_peer="conf", group_peer="ConfFB")
        rule = rules.facebook_publication_rule()
        assert rule.head.peer_constant() == "ConfFB"
        assert rule.body[0].peer_constant() == "conf"
