"""Tests of the picture and annotation data models."""

import pytest

from repro.core.errors import WorkloadError
from repro.core.facts import Fact
from repro.wepic.annotations import (
    Comment,
    NameTag,
    Rating,
    comment_from_fact,
    rating_from_fact,
    tag_from_fact,
)
from repro.wepic.pictures import (
    Picture,
    PictureLibrary,
    generate_library,
    generate_picture,
)


class TestPicture:
    def test_fact_roundtrip(self):
        picture = Picture(picture_id=3, name="sea.jpg", owner="Emilien", data="0101")
        fact = picture.to_fact()
        assert fact == Fact("pictures", "Emilien", (3, "sea.jpg", "Emilien", "0101"))
        assert Picture.from_fact(fact) == picture

    def test_to_fact_with_custom_relation_and_peer(self):
        picture = Picture(1, "a.jpg", "Emilien", "0")
        fact = picture.to_fact(relation="selectedPictures", peer="sigmod")
        assert fact.relation == "selectedPictures"
        assert fact.peer == "sigmod"

    def test_from_fact_arity_checked(self):
        with pytest.raises(ValueError):
            Picture.from_fact(Fact("pictures", "p", (1, "a")))

    def test_size(self):
        assert Picture(1, "a", "o", "0101").size() == 4


class TestGeneration:
    def test_deterministic_generation(self):
        first = generate_picture("Emilien", index=3, size=32)
        second = generate_picture("Emilien", index=3, size=32)
        assert first == second
        assert len(first.data) == 32
        assert set(first.data) <= {"0", "1"}

    def test_different_owners_get_different_content(self):
        a = generate_picture("Emilien", index=3, size=32)
        b = generate_picture("Jules", index=3, size=32)
        assert a.data != b.data

    def test_generate_library(self):
        library = generate_library("Jules", 5, size=16, start_id=10)
        assert len(library) == 5
        assert library.ids() == (10, 11, 12, 13, 14)
        assert library.owner == "Jules"
        assert library.total_size() == 5 * 16
        assert library.by_id(12) is not None
        assert library.by_id(99) is None

    def test_library_facts(self):
        library = generate_library("Jules", 2)
        facts = library.facts()
        assert all(f.peer == "Jules" for f in facts)
        assert all(f.relation == "pictures" for f in facts)

    def test_library_add_and_iter(self):
        library = PictureLibrary(owner="Jules")
        library.add(generate_picture("Jules", index=1))
        assert len(list(library)) == 1


class TestAnnotations:
    def test_rating_bounds(self):
        Rating(picture_id=1, author="Jules", value=1)
        Rating(picture_id=1, author="Jules", value=5)
        with pytest.raises(WorkloadError):
            Rating(picture_id=1, author="Jules", value=0)
        with pytest.raises(WorkloadError):
            Rating(picture_id=1, author="Jules", value=6)

    def test_rating_fact_roundtrip(self):
        rating = Rating(picture_id=7, author="Jules", value=4)
        fact = rating.to_fact()
        assert fact == Fact("rate", "Jules", (7, 4))
        assert rating_from_fact(fact) == rating

    def test_rating_fact_at_owner_peer(self):
        rating = Rating(picture_id=7, author="Jules", value=4)
        fact = rating.to_fact(peer="Emilien")
        assert fact.peer == "Emilien"
        # Re-reading attributes authorship to the hosting peer.
        assert rating_from_fact(fact).author == "Emilien"

    def test_comment_fact_roundtrip(self):
        comment = Comment(picture_id=7, author="Jules", text="nice")
        fact = comment.to_fact()
        assert fact == Fact("comment", "Jules", (7, "Jules", "nice"))
        assert comment_from_fact(fact) == comment

    def test_tag_fact_roundtrip(self):
        tag = NameTag(picture_id=7, author="Jules", attendee="Julia")
        fact = tag.to_fact()
        assert fact == Fact("tag", "Jules", (7, "Julia"))
        assert tag_from_fact(fact) == tag

    def test_malformed_facts_rejected(self):
        with pytest.raises(WorkloadError):
            rating_from_fact(Fact("rate", "p", (1,)))
        with pytest.raises(WorkloadError):
            comment_from_fact(Fact("comment", "p", (1,)))
        with pytest.raises(WorkloadError):
            tag_from_fact(Fact("tag", "p", (1,)))
