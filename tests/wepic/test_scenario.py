"""Tests of the Figure-2 demo scenario builder."""

import pytest

from repro.core.facts import Fact
from repro.wepic.scenario import build_demo_scenario


class TestScenarioConstruction:
    def test_default_topology_matches_figure_2(self, demo_scenario):
        names = demo_scenario.system.peer_names()
        assert set(names) == {"Emilien", "Jules", "sigmod", "SigmodFB"}
        assert demo_scenario.attendees() == ("Emilien", "Jules")
        # Every attendee is registered at the sigmod peer.
        registered = {f.values[0] for f in demo_scenario.sigmod_peer.query("attendees")}
        assert registered == {"Emilien", "Jules"}

    def test_attendees_have_libraries_and_rules(self, demo_scenario):
        for name in demo_scenario.attendees():
            app = demo_scenario.app(name)
            assert len(app.local_pictures()) == 2
            assert len(app.installed_rules()) >= 3

    def test_facebook_accounts_and_membership(self, demo_scenario):
        assert set(demo_scenario.facebook.users()) >= {"Emilien", "Jules"}
        assert demo_scenario.facebook.group_members("sigmod") == ("Emilien", "Jules")

    def test_without_facebook(self):
        scenario = build_demo_scenario(with_facebook=False, pictures_per_attendee=1)
        assert "SigmodFB" not in scenario.system.peer_names()
        summary = scenario.run()
        assert summary.converged

    def test_custom_attendee_list(self):
        scenario = build_demo_scenario(attendees=("Alice", "Bob", "Carol"),
                                       pictures_per_attendee=1)
        assert scenario.attendees() == ("Alice", "Bob", "Carol")


class TestScenarioDynamics:
    def test_pictures_published_to_sigmod(self, demo_scenario):
        demo_scenario.run()
        published = demo_scenario.sigmod_pictures()
        assert len(published) == 4  # 2 attendees x 2 pictures

    def test_upload_propagates_to_sigmod(self, demo_scenario):
        demo_scenario.run()
        emilien = demo_scenario.app("Emilien")
        emilien.upload_picture(name="new.jpg", picture_id=77)
        demo_scenario.run()
        names = {f.values[1] for f in demo_scenario.sigmod_pictures()}
        assert "new.jpg" in names

    def test_no_publication_when_disabled(self):
        scenario = build_demo_scenario(pictures_per_attendee=1, publish_to_sigmod=False)
        scenario.run()
        assert scenario.sigmod_pictures() == ()

    def test_add_attendee_at_runtime(self, demo_scenario):
        demo_scenario.run()
        newcomer = demo_scenario.add_attendee("Julia", pictures=2)
        demo_scenario.run()
        assert "Julia" in demo_scenario.system.peer_names()
        assert len(newcomer.local_pictures()) == 2
        registered = {f.values[0] for f in demo_scenario.sigmod_peer.query("attendees")}
        assert "Julia" in registered
        # The newcomer can immediately use the delegation-based view.
        newcomer.select_attendee("Emilien")
        demo_scenario.run()
        assert newcomer.attendee_pictures()

    def test_control_delegation_scenario(self, controlled_scenario):
        """Delegations between attendees need explicit approval (Figure 3)."""
        jules = controlled_scenario.app("Jules")
        emilien = controlled_scenario.app("Emilien")
        jules.select_attendee("Emilien")
        controlled_scenario.run()
        # Jules is untrusted at Emilien, so the delegations (one per Jules rule
        # whose body reaches Emilien) are pending, and the view stays empty.
        assert jules.attendee_pictures() == ()
        pending = emilien.pending_delegations()
        assert len(pending) >= 1
        assert all(p.delegator == "Jules" for p in pending)
        # Approve the delegation behind the attendee-pictures rule.
        pictures_delegation = [
            p for p in pending
            if p.rule.head.relation_constant() == "attendeePictures"
        ]
        assert len(pictures_delegation) == 1
        emilien.approve_delegation(pictures_delegation[0].delegation_id)
        controlled_scenario.run()
        assert len(jules.attendee_pictures()) == 2

    def test_rejected_delegation_never_installs(self, controlled_scenario):
        jules = controlled_scenario.app("Jules")
        emilien = controlled_scenario.app("Emilien")
        jules.select_attendee("Emilien")
        controlled_scenario.run()
        for pending in emilien.pending_delegations():
            emilien.reject_delegation(pending.delegation_id)
        controlled_scenario.run()
        assert jules.attendee_pictures() == ()
        # No delegation from Jules was installed (delegations from the trusted
        # sigmod peer, e.g. the Facebook-publication rule, are unaffected).
        from_jules = [d for d in emilien.peer.installed_delegations()
                      if d.delegator == "Jules"]
        assert from_jules == []

    def test_facebook_publication_requires_authorization(self, demo_scenario):
        demo_scenario.run()
        assert demo_scenario.facebook.photos_in_group("sigmod") == ()
        emilien = demo_scenario.app("Emilien")
        emilien.authorize_all_facebook()
        demo_scenario.run()
        group_photos = demo_scenario.facebook.photos_in_group("sigmod")
        assert len(group_photos) == 2
        assert all(photo.owner == "Emilien" for photo in group_photos)

    def test_facebook_comments_flow_back_to_sigmod(self, demo_scenario):
        emilien = demo_scenario.app("Emilien")
        emilien.authorize_all_facebook()
        demo_scenario.run()
        photo = demo_scenario.facebook.photos_in_group("sigmod")[0]
        demo_scenario.facebook.add_comment(photo.photo_id, "Jules", "nice")
        demo_scenario.facebook.add_tag(photo.photo_id, "Julia")
        demo_scenario.run()
        comments = demo_scenario.sigmod_peer.query("comments")
        tags = demo_scenario.sigmod_peer.query("tags")
        assert any("nice" in f.values for f in comments)
        assert any("Julia" in f.values for f in tags)
