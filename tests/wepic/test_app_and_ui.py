"""Tests of the WepicApp, ranking and the headless UI."""

import pytest

from repro.core.facts import Fact
from repro.wepic.pictures import generate_picture
from repro.wepic.ranking import collect_ratings, rank_pictures, rating_summary, top_pictures
from repro.wepic.scenario import build_demo_scenario
from repro.wepic.ui import WepicUI


class TestUploadAndView:
    def test_upload_and_local_pictures(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        before = len(jules.local_pictures())
        uploaded = jules.upload_picture(name="custom.jpg", picture_id=500)
        assert uploaded.owner == "Jules"
        assert len(jules.local_pictures()) == before + 1
        assert jules.remove_picture(uploaded.picture_id) == 1
        assert len(jules.local_pictures()) == before

    def test_select_and_view_attendee_pictures(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        jules.select_attendee("Emilien")
        demo_scenario.run()
        pictures = jules.attendee_pictures()
        assert pictures
        assert all(p.owner == "Emilien" for p in pictures)
        assert jules.selected_attendees() == ("Emilien",)
        jules.deselect_attendee("Emilien")
        demo_scenario.run()
        assert jules.attendee_pictures() == ()

    def test_selecting_multiple_attendees_merges_views(self):
        scenario = build_demo_scenario(attendees=("Emilien", "Jules", "Julia"),
                                       pictures_per_attendee=1)
        julia = scenario.app("Julia")
        julia.select_attendee("Emilien")
        julia.select_attendee("Jules")
        scenario.run()
        owners = {p.owner for p in julia.attendee_pictures()}
        assert owners == {"Emilien", "Jules"}


class TestTransfer:
    def test_email_transfer(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        emilien.set_protocol("email")
        jules.select_attendee("Emilien")
        jules.select_picture_for_transfer(jules.local_pictures()[0])
        demo_scenario.run()
        assert demo_scenario.email.sent_count >= 1

    def test_wepic_transfer_lands_in_wepic_relation(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        emilien.set_protocol("wepic")
        jules.select_attendee("Emilien")
        picture = jules.local_pictures()[0]
        jules.select_picture_for_transfer(picture)
        demo_scenario.run()
        received = emilien.received_transfers()
        assert any(picture.name in fact.values for fact in received)

    def test_clear_transfer_selection(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        jules.select_picture_for_transfer(jules.local_pictures()[0])
        jules.clear_transfer_selection()
        assert jules.peer.query("selectedPictures") == ()


class TestAnnotationsAndRanking:
    def test_rating_pushed_to_owner(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        target = emilien.local_pictures()[0]
        jules.rate_picture(target.picture_id, 5, owner="Emilien")
        demo_scenario.run()
        owner_side = [r for r in emilien.ratings() if r.picture_id == target.picture_id]
        assert owner_side and owner_side[0].value == 5

    def test_comment_and_tag(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        target = emilien.local_pictures()[0]
        jules.comment_picture(target.picture_id, "great shot", owner="Emilien")
        jules.tag_picture(target.picture_id, "Julia", owner="Emilien")
        demo_scenario.run()
        assert emilien.peer.query("comment")
        assert emilien.peer.query("tag")

    def test_gathered_ratings_view(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        target = emilien.local_pictures()[0]
        emilien.rate_picture(target.picture_id, 4)
        jules.select_attendee("Emilien")
        demo_scenario.run()
        gathered = jules.gathered_ratings()
        assert Fact("attendeeRatings", "Jules", (target.picture_id, 4)) in gathered

    def test_ranked_attendee_pictures(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        pictures = emilien.local_pictures()
        emilien.rate_picture(pictures[0].picture_id, 5)
        emilien.rate_picture(pictures[1].picture_id, 2)
        jules.select_attendee("Emilien")
        demo_scenario.run()
        ranking = jules.ranked_attendee_pictures()
        assert ranking[0].picture.picture_id == pictures[0].picture_id
        assert ranking[0].average_rating == 5.0


class TestRankingHelpers:
    def make_pictures(self):
        return [generate_picture("Emilien", index=i) for i in (1, 2, 3)]

    def test_collect_ratings(self):
        facts = [Fact("rate", "p", (1, 5)), Fact("rate", "q", (1, 3)), Fact("rate", "p", (2, 4))]
        assert collect_ratings(facts) == {1: [5, 3], 2: [4]}

    def test_rank_orders_by_average(self):
        pictures = self.make_pictures()
        facts = [Fact("rate", "p", (1, 3)), Fact("rate", "p", (2, 5)), Fact("rate", "p", (3, 4))]
        ranking = rank_pictures(pictures, facts)
        assert [r.picture.picture_id for r in ranking] == [2, 3, 1]

    def test_unrated_pictures_at_bottom_or_dropped(self):
        pictures = self.make_pictures()
        facts = [Fact("rate", "p", (1, 4))]
        with_unrated = rank_pictures(pictures, facts)
        assert len(with_unrated) == 3
        assert with_unrated[0].picture.picture_id == 1
        without = rank_pictures(pictures, facts, include_unrated=False)
        assert len(without) == 1

    def test_min_rating_threshold(self):
        pictures = self.make_pictures()
        facts = [Fact("rate", "p", (1, 2)), Fact("rate", "p", (2, 5))]
        ranking = rank_pictures(pictures, facts, min_rating=4.0)
        assert [r.picture.picture_id for r in ranking] == [2]

    def test_rating_summary_aggregates(self):
        facts = [Fact("rate", "p", (1, 5)), Fact("rate", "q", (1, 3)), Fact("rate", "p", (2, 4))]
        summary = rating_summary(facts)
        assert (1, 4.0, 2) in summary
        assert (2, 4.0, 1) in summary

    def test_top_pictures(self):
        pictures = self.make_pictures()
        facts = [Fact("rate", "p", (i, i + 2)) for i in (1, 2, 3)]
        top = top_pictures(pictures, facts, count=2)
        assert len(top) == 2
        assert top[0].picture.picture_id == 3


class TestRuleCustomisation:
    def test_rating_filter_changes_attendee_pictures_frame(self, demo_scenario):
        """The paper's 'Customizing rules' scenario."""
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        pictures = emilien.local_pictures()
        emilien.rate_picture(pictures[0].picture_id, 5)
        emilien.rate_picture(pictures[1].picture_id, 3)
        jules.select_attendee("Emilien")
        demo_scenario.run()
        assert len(jules.attendee_pictures()) == 2
        # Customise: only pictures rated 5 by their owner.
        jules.restrict_to_rating(5)
        demo_scenario.run()
        filtered = jules.attendee_pictures()
        assert [p.picture_id for p in filtered] == [pictures[0].picture_id]
        # Restore the original rule.
        jules.reset_attendee_pictures_rule()
        demo_scenario.run()
        assert len(jules.attendee_pictures()) == 2

    def test_owner_filter(self):
        scenario = build_demo_scenario(attendees=("Emilien", "Jules", "Julia"),
                                       pictures_per_attendee=1)
        julia = scenario.app("Julia")
        julia.select_attendee("Emilien")
        julia.select_attendee("Jules")
        julia.restrict_to_owner("Emilien")
        scenario.run()
        owners = {p.owner for p in julia.attendee_pictures()}
        assert owners == {"Emilien"}

    def test_add_custom_rule(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        rule = jules.add_rule("ownerNames@Jules($o) :- pictures@Jules($i, $n, $o, $d)")
        demo_scenario.run()
        assert rule in jules.installed_rules()
        assert jules.peer.query("ownerNames")

    def test_rule_id_lookup(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        assert jules.rule_id("attendee_pictures")
        with pytest.raises(KeyError):
            jules.rule_id("nonexistent")


class TestUI:
    def test_frames_reflect_state(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        jules.select_attendee("Emilien")
        demo_scenario.run()
        ui = WepicUI(jules)
        summary = ui.summary()
        assert summary["my_pictures"] == len(jules.local_pictures())
        assert summary["selected_attendees"] == 1
        assert summary["attendee_pictures"] == len(jules.attendee_pictures())
        assert summary["rules"] >= 3

    def test_render_contains_all_frames(self, demo_scenario):
        ui = demo_scenario.ui("Jules")
        text = ui.render()
        for title in ("My pictures", "Selected attendees", "Attendee pictures",
                      "Ranked pictures", "Program of Jules", "Delegated rules",
                      "Pending delegations"):
            assert title in text

    def test_empty_frame_rendering(self, demo_scenario):
        ui = demo_scenario.ui("Jules")
        frame = ui.pending_delegations_frame()
        assert "(empty)" in frame.render()


class TestLiveViewPages:
    def test_rating_summary_view_is_a_standing_aggregate(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        jules.select_attendee("Emilien")
        view = jules.rating_summary_view()
        demo_scenario.run()
        assert view.rows() == ()
        emilien.rate_picture(1, 5)
        emilien.rate_picture(1, 3)
        demo_scenario.run()
        assert view.rows() == ((1, 4.0, 2),)
        # Standing: the same handle keeps tracking later churn.
        emilien.rate_picture(2, 4)
        demo_scenario.run()
        assert sorted(view.rows()) == [(1, 4.0, 2), (2, 4.0, 1)]
        # The factory caches the open view.
        assert jules.rating_summary_view() is view

    def test_wall_view_filters_by_owner_and_rating(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        jules.select_attendee("Emilien")
        demo_scenario.run()
        wall = jules.wall_view(owner="Emilien")
        demo_scenario.run()
        assert sorted(row[0] for row in wall.rows()) == [1, 2]
        rated = jules.wall_view(owner="Emilien", rating=5)
        jules.rate_picture(2, 5)
        demo_scenario.run()
        assert sorted(rated.rows()) == [(2, "keynote-2.jpg")]

    def test_close_views_uninstalls_everything(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        rules_before = len(jules.peer.rules())
        jules.rating_summary_view()
        jules.wall_view(owner="Emilien")
        assert len(jules.peer.rules()) == rules_before + 2
        assert jules.close_views() == 2
        assert len(jules.peer.rules()) == rules_before
        assert jules.close_views() == 0

    def test_live_pages_require_the_facade(self):
        from repro.runtime.peer import Peer
        from repro.wepic.app import WepicApp

        app = WepicApp(Peer("solo"), install_rules=False)
        with pytest.raises(RuntimeError, match="PeerHandle"):
            app.rating_summary_view()

    def test_ui_frames_render_the_live_views(self, demo_scenario):
        jules = demo_scenario.app("Jules")
        emilien = demo_scenario.app("Emilien")
        jules.select_attendee("Emilien")
        ui = demo_scenario.ui("Jules")
        # No view opened yet: the frames render empty (and stay read-only).
        assert ui.rating_summary_frame().lines == []
        assert ui.filtered_wall_frame("Emilien").lines == []
        jules.rating_summary_view()
        jules.wall_view(owner="Emilien")
        emilien.rate_picture(3, 5)
        demo_scenario.run()
        assert ui.rating_summary_frame().lines == \
            ["picture 3: 5.00 stars (1 ratings)"]
        assert ui.filtered_wall_frame("Emilien").lines
        assert "Rating summary (live view)" in ui.render()

    def test_rendering_never_mutates_the_program(self, demo_scenario):
        # Regression: drawing the UI must not install rules — the Rules tab
        # on the same screen would otherwise show internal view rules the
        # user never wrote.
        jules = demo_scenario.app("Jules")
        ui = demo_scenario.ui("Jules")
        rules_before = [r.rule_id for r in jules.peer.rules()]
        ui.render()
        ui.frames()
        ui.summary()
        ui.filtered_wall_frame("Emilien")
        assert [r.rule_id for r in jules.peer.rules()] == rules_before
