"""Failure injection: message loss, peer removal, higher latency."""

import pytest

from repro.core.facts import Fact
from repro.core.schema import RelationKind, RelationSchema
from repro.runtime.system import WebdamLogSystem
from repro.wepic.scenario import build_demo_scenario


def attendee_view_system(drop_probability=0.0, seed=0, latency=1):
    # Pinned to reliable replication: these tests document the reliable
    # mode's eventual-consistency model, where lost messages stay lost
    # (causal mode repairs loss — see tests/properties/
    # test_confluence_replication.py).
    system = WebdamLogSystem(drop_probability=drop_probability, seed=seed,
                             latency=latency, replication="reliable")
    jules = system.add_peer("Jules")
    emilien = system.add_peer("Emilien")
    jules.declare(RelationSchema("attendeePictures", "Jules", ("id",),
                                 kind=RelationKind.INTENSIONAL))
    jules.add_rule("attendeePictures@Jules($id) :- "
                   "selectedAttendee@Jules($a), pictures@$a($id)")
    jules.insert_fact(Fact("selectedAttendee", "Jules", ("Emilien",)))
    for picture_id in range(5):
        emilien.insert_fact(Fact("pictures", "Emilien", (picture_id,)))
    return system, jules, emilien


class TestMessageLoss:
    def test_lossless_baseline_converges_to_full_view(self):
        system, jules, _ = attendee_view_system()
        assert system.converge().converged
        assert len(jules.query("attendeePictures")) == 5

    def test_total_loss_keeps_view_empty_but_system_stable(self):
        system, jules, emilien = attendee_view_system(drop_probability=1.0)
        summary = system.converge(max_steps=30)
        assert summary.converged
        assert jules.query("attendeePictures") == ()
        assert len(emilien.installed_delegations()) == 0
        assert system.network.stats.messages_dropped > 0

    def test_partial_loss_never_yields_wrong_facts(self):
        # Whatever the loss pattern, facts that do arrive are genuine.
        system, jules, _ = attendee_view_system(drop_probability=0.4, seed=7)
        system.converge(max_steps=40)
        ids = {f.values[0] for f in jules.query("attendeePictures")}
        assert ids <= {0, 1, 2, 3, 4}


class TestPeerRemoval:
    def test_removed_peer_stops_receiving_but_system_continues(self):
        system, jules, emilien = attendee_view_system()
        system.converge()
        system.remove_peer("Emilien")
        # Jules keeps working; new selections towards the dead peer do not
        # crash rounds, the messages are just undeliverable.
        jules.insert_fact(Fact("selectedAttendee", "Jules", ("Ghost",)))
        summary = system.converge(max_steps=20)
        assert summary.converged
        assert "Emilien" not in system

    def test_view_survives_with_provided_facts_after_removal(self):
        system, jules, _ = attendee_view_system()
        system.converge()
        assert len(jules.query("attendeePictures")) == 5
        system.remove_peer("Emilien")
        system.converge(max_steps=10)
        # Without the sender the provided facts are never retracted: the view
        # keeps its last known content (documented eventual-consistency model).
        assert len(jules.query("attendeePictures")) == 5


class TestLatency:
    @pytest.mark.parametrize("latency", [1, 2, 4])
    def test_convergence_under_any_latency(self, latency):
        system, jules, _ = attendee_view_system(latency=latency)
        summary = system.converge(max_steps=60)
        assert summary.converged
        assert len(jules.query("attendeePictures")) == 5

    def test_rounds_grow_with_latency(self):
        rounds = []
        for latency in (1, 3):
            system, _, _ = attendee_view_system(latency=latency)
            rounds.append(system.converge(max_steps=60).round_count)
        assert rounds[1] > rounds[0]


class TestScenarioUnderLoss:
    def test_demo_scenario_with_loss_converges(self):
        scenario = build_demo_scenario(pictures_per_attendee=1)
        scenario.system.network.drop_probability = 0.3
        jules = scenario.app("Jules")
        jules.select_attendee("Emilien")
        summary = scenario.run(max_rounds=60)
        assert summary.converged
