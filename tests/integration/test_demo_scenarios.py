"""End-to-end reproduction of the four demonstration scenarios of Section 4.

Each test walks through one of the scenarios the demo presents to the SIGMOD
audience, asserting the observable outcome the paper describes.
"""

import pytest

from repro.core.facts import Fact
from repro.wepic.scenario import build_demo_scenario
from repro.workloads.generator import WorkloadConfig, generate_workload, load_workload


class TestInteractionViaFacebook:
    """Section 4, 'Interaction via Facebook'."""

    def test_upload_propagates_to_sigmod_then_to_facebook_group(self):
        scenario = build_demo_scenario(pictures_per_attendee=0)
        emilien = scenario.app("Emilien")
        # Émilien uploads a photo and authorises its Facebook publication.
        picture = emilien.upload_picture(name="keynote.jpg", picture_id=1)
        emilien.authorize_facebook(picture)
        scenario.run()
        # ... it is published to pictures@sigmod ...
        sigmod_names = {f.values[1] for f in scenario.sigmod_pictures()}
        assert "keynote.jpg" in sigmod_names
        # ... and propagated to pictures@SigmodFB (the Facebook group).
        group_photos = scenario.facebook.photos_in_group("sigmod")
        assert [p.name for p in group_photos] == ["keynote.jpg"]
        assert group_photos[0].owner == "Emilien"

    def test_unauthorized_pictures_stay_off_facebook(self):
        scenario = build_demo_scenario(pictures_per_attendee=0)
        emilien = scenario.app("Emilien")
        emilien.upload_picture(name="private.jpg", picture_id=2)
        scenario.run()
        assert {f.values[1] for f in scenario.sigmod_pictures()} == {"private.jpg"}
        assert scenario.facebook.photos_in_group("sigmod") == ()

    def test_facebook_content_flows_back_without_facebook_account(self):
        """Any Wepic user sees SigmodFB pictures via the sigmod peer."""
        scenario = build_demo_scenario(pictures_per_attendee=0)
        # A photo posted directly on Facebook by some member...
        scenario.facebook.add_user("Gerome")
        scenario.facebook.join_group("sigmod", "Gerome")
        scenario.facebook.post_photo("Gerome", "banquet.jpg", "1100", group="sigmod")
        scenario.run()
        # ...reaches the sigmod peer, from which any attendee can read it.
        names = {f.values[1] for f in scenario.sigmod_pictures()}
        assert "banquet.jpg" in names
        jules = scenario.app("Jules")
        jules.select_attendee("sigmod")
        scenario.run()
        assert "banquet.jpg" in {p.name for p in jules.attendee_pictures()}


class TestCustomizingRules:
    """Section 4, 'Customizing rules'."""

    def test_rating_filter_changes_the_attendee_pictures_frame(self):
        scenario = build_demo_scenario(pictures_per_attendee=3)
        jules = scenario.app("Jules")
        emilien = scenario.app("Emilien")
        pictures = emilien.local_pictures()
        emilien.rate_picture(pictures[0].picture_id, 5)
        emilien.rate_picture(pictures[1].picture_id, 4)
        jules.select_attendee("Emilien")
        scenario.run()
        assert len(jules.attendee_pictures()) == 3
        jules.restrict_to_rating(5)
        scenario.run()
        assert [p.picture_id for p in jules.attendee_pictures()] == [pictures[0].picture_id]
        ui_summary = scenario.ui("Jules").summary()
        assert ui_summary["attendee_pictures"] == 1


class TestControlOfDelegation:
    """Section 4, 'Illustration of the control of delegation'."""

    def test_emilien_installs_a_rule_at_jules_after_approval(self):
        scenario = build_demo_scenario(pictures_per_attendee=1, control_delegation=True)
        jules = scenario.app("Jules")
        emilien = scenario.app("Emilien")
        # Let the initial setup (including the trusted sigmod peer's own
        # delegations) settle before measuring Jules' installed program.
        scenario.run()
        rules_before = len(jules.peer.engine.state.all_rules())
        # Émilien writes a rule whose body lives at Jules' peer: evaluating it
        # requires installing a delegation at Jules.
        emilien.add_rule("julesPictureNames@Emilien($n) :- pictures@Jules($i, $n, $o, $d)")
        scenario.run()
        # The delegation is pending, not installed; Émilien sees nothing yet.
        assert emilien.peer.query("julesPictureNames") == ()
        pending = jules.pending_delegations()
        assert len(pending) == 1
        assert pending[0].delegator == "Emilien"
        # Jules approves: his program changes and Émilien's view fills up.
        jules.approve_delegation(pending[0].delegation_id)
        scenario.run()
        assert len(jules.peer.engine.state.all_rules()) == rules_before + 1
        assert len(emilien.peer.query("julesPictureNames")) == 1


class TestInteractionViaTheWeb:
    """Section 4, 'Interaction via the Web' (audience peers joining)."""

    def test_new_peers_join_and_use_all_features(self):
        scenario = build_demo_scenario(pictures_per_attendee=1)
        scenario.run()
        audience = [scenario.add_attendee(f"Guest{i}", pictures=1) for i in range(3)]
        scenario.run()
        assert len(scenario.system.peers) == 4 + 3  # 2 attendees + sigmod + FB + guests
        # Every guest is registered at the sigmod peer.
        registered = {f.values[0] for f in scenario.sigmod_peer.query("attendees")}
        assert {"Guest0", "Guest1", "Guest2"} <= registered
        # A guest selects an original attendee and sees their pictures.
        guest = audience[0]
        guest.select_attendee("Emilien")
        scenario.run()
        assert {p.owner for p in guest.attendee_pictures()} == {"Emilien"}
        # And guests' own uploads reach the sigmod peer too.
        owners_at_sigmod = {f.values[2] for f in scenario.sigmod_pictures()}
        assert {"Guest0", "Guest1", "Guest2"} <= owners_at_sigmod


class TestWorkloadDrivenScenario:
    def test_generated_workload_converges_and_views_are_consistent(self):
        config = WorkloadConfig(attendees=4, pictures_per_attendee=3,
                                ratings_per_attendee=3, seed=5)
        workload = generate_workload(config)
        scenario = build_demo_scenario(attendees=workload.attendees,
                                       pictures_per_attendee=0)
        load_workload(scenario, workload)
        summary = scenario.run(max_rounds=80)
        assert summary.converged
        # Every attendee's view equals the pictures of the attendees they selected.
        for attendee in workload.attendees:
            app = scenario.app(attendee)
            expected = set()
            for other in workload.selections[attendee]:
                expected |= {p.picture_id for p in workload.libraries[other]}
            got = {p.picture_id for p in app.attendee_pictures()}
            assert got == expected
