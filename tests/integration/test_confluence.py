"""Fixpoint confluence under adversarial in-memory delivery.

Webdamlog's insert-only fragment is confluent: whatever order (or how
often) messages arrive, the fixpoint is the same set of facts.  These
tests drive the same program through a lockstep baseline and through
adversarial transports — reordered, duplicated, jittered delivery — and
require bit-identical snapshots.

Message *loss* is the one adversary that legitimately changes the
outcome: dropped deltas are never retransmitted by the in-memory
transport, so the result is a subset of the baseline (documented
eventual-consistency model, see tests/integration/test_failure_injection.py).
"""

import pytest

from repro.api import system
from repro.runtime.inmemory import InMemoryTransport

PROGRAM_ALICE = '''
collection extensional persistent src@alice(item);
rule mid@bob($x) :- src@alice($x);
'''

PROGRAM_BOB = '''
collection extensional persistent mid@bob(item);
rule sink@carol($x) :- mid@bob($x);
'''

PROGRAM_CAROL = '''
collection extensional persistent sink@carol(item);
rule echo@alice($x) :- sink@carol($x);
'''

ITEMS = tuple(f"item{i}" for i in range(12))


def run(transport, replication=None):
    builder = system().transport(transport)
    if replication is not None:
        builder = builder.replication(replication)
    deployment = (builder
                  .peer("alice").program(PROGRAM_ALICE)
                  .peer("bob").program(PROGRAM_BOB)
                  .peer("carol").program(PROGRAM_CAROL)
                  .build())
    # insert one item per converge cycle so every item crosses the wire in
    # its own messages (a single batch would give the adversary only three
    # deltas to reorder/drop)
    for item in ITEMS:
        deployment.peer("alice").insert(f'src@alice("{item}")')
        assert deployment.converge(max_steps=400).converged
    return deployment.snapshot()


@pytest.fixture(scope="module")
def baseline():
    return run(InMemoryTransport())


def test_baseline_pushes_facts_through_the_chain(baseline):
    assert {f.values[0] for f in baseline["carol"]["sink@carol"]} == set(ITEMS)
    assert {f.values[0] for f in baseline["alice"]["echo@alice"]} == set(ITEMS)


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_reordered_delivery_is_confluent(baseline, seed):
    transport = InMemoryTransport(shuffle_seed=seed)
    assert run(transport) == baseline


@pytest.mark.parametrize("seed", [2, 9])
def test_duplicated_delivery_is_confluent(baseline, seed):
    transport = InMemoryTransport(duplicate_probability=0.5, seed=seed)
    snapshot = run(transport)
    assert snapshot == baseline
    assert transport.stats.messages_delivered > transport.stats.messages_sent


@pytest.mark.parametrize("seed", [3, 13])
def test_jittered_latency_is_confluent(baseline, seed):
    transport = InMemoryTransport(latency=1, latency_jitter=4, seed=seed)
    assert run(transport) == baseline


@pytest.mark.parametrize("seed", [4, 21])
def test_all_adversaries_combined_are_confluent(baseline, seed):
    transport = InMemoryTransport(latency=1, latency_jitter=3,
                                  duplicate_probability=0.3,
                                  shuffle_seed=seed, seed=seed)
    assert run(transport) == baseline


@pytest.mark.parametrize("seed", [5, 17])
def test_lossy_delivery_diverges_only_downward(baseline, seed):
    """Loss is NOT confluent here: under *reliable* replication the
    in-memory transport never retransmits, so derived views may be
    missing items — but anything that did arrive must match the baseline
    (no wrong facts).  Causal replication removes this caveat — see
    tests/properties/test_confluence_replication.py."""
    transport = InMemoryTransport(drop_probability=0.5, seed=seed)
    snapshot = run(transport, replication="reliable")
    assert transport.stats.messages_dropped > 0
    for peer, relations in snapshot.items():
        for relation, facts in relations.items():
            assert set(facts) <= set(baseline[peer][relation])
    # the loss actually bit: something is missing somewhere
    assert snapshot != baseline
