"""Unit tests of ReplicationState: anti-entropy, persistence, event logging.

Two :class:`ReplicationState` instances are driven directly (no engine, no
transport) so every protocol exchange — envelope, digest, pull, ack — is
visible and individually droppable.
"""

from repro.core.facts import Fact
from repro.net.events import NetEventLog
from repro.replication.state import ReplicationState
from repro.runtime.messages import (
    DeltaEnvelopeMessage,
    FactMessage,
    ReplicationAckMessage,
    ReplicationDigestMessage,
    ReplicationPullMessage,
)
from repro.store.memory import MemoryBackend

F1 = Fact("r", "bob", (1,))
F2 = Fact("r", "bob", (2,))
F3 = Fact("r", "bob", (3,))


def fact_message(*inserted, deleted=()):
    return FactMessage(sender="alice", recipient="bob",
                       inserted=frozenset(inserted), deleted=frozenset(deleted))


def exchange(sender, receiver, messages):
    """Deliver protocol messages to their handler; returns engine effects."""
    effects = []
    for message in messages:
        if isinstance(message, DeltaEnvelopeMessage):
            target = receiver if message.recipient == receiver.peer else sender
            effects.extend(target.apply_envelope(message))
        elif isinstance(message, ReplicationDigestMessage):
            receiver.on_digest(message.sender, message.frontier)
        elif isinstance(message, ReplicationPullMessage):
            sender.on_pull(message.sender, message.want)
        elif isinstance(message, ReplicationAckMessage):
            sender.on_ack(message.sender, message.acked)
    return effects


class TestCleanPath:
    def test_envelope_then_ack_reaches_quiescence(self):
        alice = ReplicationState("alice")
        bob = ReplicationState("bob")
        assert alice.encode_outgoing([fact_message(F1, F2)]) == []
        out = alice.flush()
        assert len(out) == 1 and isinstance(out[0], DeltaEnvelopeMessage)
        effects = exchange(alice, bob, out)
        assert set(effects) == {("insert", F1), ("insert", F2)}
        # bob queued an ack; his flush ships it; alice prunes
        exchange(alice, bob, bob.flush())
        assert not alice.needs_attention()
        assert not bob.needs_attention()
        assert alice.outbox("bob").log == {}

    def test_passthrough_for_unmanaged_messages(self):
        from repro.runtime.messages import PeerJoinMessage
        alice = ReplicationState("alice")
        join = PeerJoinMessage(sender="alice", recipient="bob", peer_name="x")
        assert alice.encode_outgoing([join]) == [join]


class TestLossRepair:
    def test_lost_envelope_recovered_by_digest_and_pull(self):
        alice = ReplicationState("alice", digest_interval=2)
        bob = ReplicationState("bob")
        alice.encode_outgoing([fact_message(F1)])
        lost = alice.flush()  # envelope DROPPED by the adversary
        assert len(lost) == 1
        assert alice.needs_attention()  # unacked channel keeps alice awake
        # ticks pass; a digest eventually fires
        digests = []
        while not digests:
            digests = alice.flush()
        assert isinstance(digests[0], ReplicationDigestMessage)
        exchange(alice, bob, digests)
        pulls = bob.flush()
        assert isinstance(pulls[0], ReplicationPullMessage)
        assert pulls[0].want == (1,)
        exchange(alice, bob, pulls)
        repair = alice.flush()
        assert exchange(alice, bob, repair) == [("insert", F1)]
        exchange(alice, bob, bob.flush())
        assert not alice.needs_attention() and not bob.needs_attention()

    def test_lost_ack_recovered_by_digest_reack(self):
        alice = ReplicationState("alice", digest_interval=2)
        bob = ReplicationState("bob")
        alice.encode_outgoing([fact_message(F1)])
        exchange(alice, bob, alice.flush())
        bob.flush()  # ack DROPPED
        digests = []
        while not digests:
            digests = alice.flush()
        exchange(alice, bob, digests)  # digest of a complete channel: re-ack
        exchange(alice, bob, bob.flush())
        assert alice.outbox("bob").acked == 1
        assert not alice.needs_attention()

    def test_duplicated_envelope_is_noop(self):
        alice = ReplicationState("alice")
        bob = ReplicationState("bob")
        alice.encode_outgoing([fact_message(F1)])
        envelope = alice.flush()[0]
        assert bob.apply_envelope(envelope) == [("insert", F1)]
        assert bob.apply_envelope(envelope) == []
        assert bob.counters["envelopes_applied"] == 2
        assert len(bob.inbox("alice").visible) == 1

    def test_reordered_envelopes_converge(self):
        alice = ReplicationState("alice")
        bob = ReplicationState("bob")
        alice.encode_outgoing([fact_message(F1)])
        first = alice.flush()[0]
        alice.encode_outgoing([fact_message(F3, deleted=(F1,))])
        second = alice.flush()[0]
        # the adversary delivers the later envelope first
        bob.apply_envelope(second)
        bob.apply_envelope(first)
        assert bob.inbox("alice").visible == {F3: {2}}


class TestChannelLifecycle:
    def test_mark_unreachable_silences_channel(self):
        alice = ReplicationState("alice")
        alice.encode_outgoing([fact_message(F1)])
        alice.mark_unreachable("bob")
        assert alice.flush() == []
        assert not alice.needs_attention()

    def test_drop_channel_forgets_both_halves(self):
        alice = ReplicationState("alice")
        alice.encode_outgoing([fact_message(F1)])
        alice.inbox("bob")
        alice.drop_channel("bob")
        assert alice.outboxes == {} and alice.inboxes == {}
        assert not alice.needs_attention()


class TestPersistence:
    def test_persist_restore_roundtrip(self):
        backend = MemoryBackend()
        alice = ReplicationState("alice")
        alice.encode_outgoing([fact_message(F1, F2)])
        envelope = alice.flush()[0]
        alice.on_ack("bob", 1)
        alice.persist(backend)

        bob = ReplicationState("bob")
        bob.apply_envelope(envelope)
        bob.persist(backend)

        alice2 = ReplicationState("alice")
        alice2.restore(backend)
        box = alice2.outbox("bob")
        assert box.seq == 2 and box.acked == 1
        # in-flight unacked ops retransmit after a crash
        assert box.last_sent == 1
        assert [op.seq for op in box.take_unsent()] == [2]
        assert sorted(box.live, key=str) == sorted((F1, F2), key=str)

        bob2 = ReplicationState("bob")
        bob2.restore(backend)
        inbox = bob2.inbox("alice")
        assert inbox.cc.base == 2
        assert inbox.visible == {F1: {1}, F2: {2}} or len(inbox.visible) == 2
        # the retransmitted duplicate is absorbed
        assert bob2.apply_envelope(envelope) == []

    def test_dropped_channel_removed_from_backend(self):
        backend = MemoryBackend()
        alice = ReplicationState("alice")
        alice.encode_outgoing([fact_message(F1)])
        alice.flush()
        alice.persist(backend)
        assert backend.load_meta("replication")
        alice.drop_channel("bob")
        alice.persist(backend)
        assert backend.load_meta("replication") == []

    def test_persist_skips_clean_channels(self):
        backend = MemoryBackend()
        alice = ReplicationState("alice")
        alice.encode_outgoing([fact_message(F1)])
        alice.flush()
        alice.persist(backend)
        records = dict(backend.load_meta("replication"))
        backend.save_meta("replication", "out:bob", "SENTINEL")
        alice.persist(backend)  # nothing dirty: must not overwrite
        assert dict(backend.load_meta("replication"))["out:bob"] == "SENTINEL"
        assert records  # sanity: the first persist did write


class TestEventLog:
    def test_joins_digests_and_pulls_are_recorded(self):
        log = NetEventLog()
        alice = ReplicationState("alice", digest_interval=1, event_log=log)
        bob = ReplicationState("bob", event_log=log)
        alice.encode_outgoing([fact_message(F1)])
        alice.flush()  # envelope dropped
        exchange(alice, bob, alice.flush())  # digest arrives
        exchange(alice, bob, bob.flush())    # pull
        exchange(alice, bob, alice.flush())  # repair envelope
        actions = {event["action"] for event in log.events()}
        assert {"digest", "pull", "join"} <= actions
