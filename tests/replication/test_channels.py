"""Unit tests of the dotted delta channels (repro.replication).

The channel pair is the correctness core of causal replication: a single
writer assigns contiguous sequence numbers, the reader joins ops through a
causal context, and visibility is the non-emptiness of a fact's surviving
dot set.  These tests pin the algebraic properties the confluence suite
relies on — idempotence, commutativity, tombstone absorption, LWW
delegations — at the smallest possible scale, including exhaustively over
permutations.
"""

import itertools

import pytest

from repro.core.facts import Fact
from repro.core.parser import parse_rule
from repro.core.schema import RelationKind, RelationSchema
from repro.replication.channel import ChannelInbox, ChannelOutbox
from repro.replication.dots import CausalContext, Op
from repro.replication import (
    DEFAULT_REPLICATION_MODE,
    REPLICATION_MODES,
    resolve_replication_mode,
)

F1 = Fact("r", "bob", (1,))
F2 = Fact("r", "bob", (2,))


class TestCausalContext:
    def test_add_is_idempotent_and_fills_gaps(self):
        cc = CausalContext()
        assert cc.add(2)
        assert not cc.add(2)
        assert cc.base == 0 and cc.extras == {2}
        assert cc.add(1)
        assert cc.base == 2 and cc.extras == set()

    def test_missing_and_complete(self):
        cc = CausalContext()
        cc.add(1)
        cc.add(4)
        assert cc.missing(4) == [2, 3]
        assert not cc.is_complete(4)
        cc.add(2)
        cc.add(3)
        assert cc.is_complete(4)
        assert cc.missing(6) == [5, 6]

    def test_encode_decode_roundtrip(self):
        cc = CausalContext()
        for seq in (1, 2, 5, 9):
            cc.add(seq)
        decoded = CausalContext.decode(cc.encode())
        assert decoded.base == cc.base
        assert decoded.extras == cc.extras


class TestOutbox:
    def test_insert_assigns_contiguous_seqs_and_dedupes_live(self):
        box = ChannelOutbox("bob")
        op1 = box.insert(F1)
        op2 = box.insert(F2)
        assert (op1.seq, op2.seq) == (1, 2)
        assert box.insert(F1) is None  # already live: no new dot
        assert box.frontier == 2

    def test_delete_carries_observed_dots(self):
        box = ChannelOutbox("bob")
        box.insert(F1)
        op = box.delete(F1)
        assert op.removed == (1,)
        # re-insert gets a fresh dot, unrelated to the deleted one
        assert box.insert(F1).seq == 3

    def test_delete_without_live_dots_is_out_of_band(self):
        box = ChannelOutbox("bob")
        assert box.delete(F1).removed == ()

    def test_ack_prunes_log_and_take_unsent_advances(self):
        box = ChannelOutbox("bob")
        box.insert(F1)
        box.insert(F2)
        assert [op.seq for op in box.take_unsent()] == [1, 2]
        assert box.take_unsent() == []
        assert box.unacked
        box.ack(2)
        assert not box.unacked
        assert box.log == {}
        # stale pull for pruned seqs answers nothing
        assert box.ops_for((1, 2)) == []

    def test_ack_is_monotone(self):
        box = ChannelOutbox("bob")
        box.insert(F1)
        box.insert(F2)
        box.ack(2)
        box.ack(1)  # late duplicate ack must not resurrect anything
        assert box.acked == 2


class TestInboxJoin:
    def test_duplicate_op_has_no_effect(self):
        box = ChannelInbox("alice")
        op = Op(seq=1, kind="insert", fact=F1)
        assert box.apply(op) == [("insert", F1)]
        assert box.apply(op) == []
        assert box.visible == {F1: {1}}

    def test_delete_before_insert_leaves_tombstone(self):
        box = ChannelInbox("alice")
        delete = Op(seq=2, kind="delete", fact=F1, removed=(1,))
        insert = Op(seq=1, kind="insert", fact=F1)
        assert box.apply(delete) == []
        assert box.apply(insert) == []  # consumed by the tombstone
        assert box.visible == {}

    def test_out_of_band_delete_passes_through(self):
        box = ChannelInbox("alice")
        assert box.apply(Op(seq=1, kind="delete", fact=F1, removed=())) \
            == [("delete", F1)]

    def test_all_permutations_of_insert_delete_reinsert_converge(self):
        ops = (
            Op(seq=1, kind="insert", fact=F1),
            Op(seq=2, kind="delete", fact=F1, removed=(1,)),
            Op(seq=3, kind="insert", fact=F1),
        )
        for permutation in itertools.permutations(ops):
            box = ChannelInbox("alice")
            for op in permutation:
                box.apply(op)
            assert box.visible == {F1: {3}}, permutation

    def test_duplicated_reordered_batches_converge(self):
        ops = [
            Op(seq=1, kind="insert", fact=F1),
            Op(seq=2, kind="insert", fact=F2),
            Op(seq=3, kind="delete", fact=F1, removed=(1,)),
        ]
        reference = ChannelInbox("alice")
        reference.apply_all(ops)
        for permutation in itertools.permutations(ops):
            box = ChannelInbox("alice")
            box.apply_all(permutation)
            box.apply_all(permutation)  # whole batch duplicated
            assert box.visible == reference.visible

    def test_delegation_retract_wins_by_sender_order(self):
        rule = parse_rule("v@bob($x) :- r@alice($x)", author="alice")
        schema = RelationSchema("v", "bob", ("x",), kind=RelationKind.INTENSIONAL)
        install = Op(seq=1, kind="delegate", delegation_id="d1",
                     rule=rule, schemas=(schema,))
        retract = Op(seq=2, kind="undelegate", delegation_id="d1")
        ordered = ChannelInbox("alice")
        effects = ordered.apply_all([install, retract])
        assert effects == [("delegate", "d1", rule, (schema,)),
                           ("undelegate", "d1")]
        reordered = ChannelInbox("alice")
        assert reordered.apply(retract) == [("undelegate", "d1")]
        # the stale install arrives late: retract already won
        assert reordered.apply(install) == []

    def test_missing_tracks_advertised_frontier(self):
        box = ChannelInbox("alice")
        box.apply(Op(seq=2, kind="insert", fact=F1))
        box.observe_frontier(3)
        assert box.missing() == [1, 3]
        assert not box.is_complete()
        box.apply(Op(seq=1, kind="insert", fact=F2))
        box.apply(Op(seq=3, kind="delete", fact=F1, removed=(2,)))
        assert box.is_complete()


class TestModeResolution:
    def test_default_is_reliable(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICATION", raising=False)
        assert resolve_replication_mode(None) == DEFAULT_REPLICATION_MODE \
            == "reliable"

    def test_env_fallback_and_explicit_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATION", "causal")
        assert resolve_replication_mode(None) == "causal"
        assert resolve_replication_mode("reliable") == "reliable"

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICATION", raising=False)
        with pytest.raises(ValueError):
            resolve_replication_mode("best-effort")
        monkeypatch.setenv("REPRO_REPLICATION", "best-effort")
        with pytest.raises(ValueError):
            resolve_replication_mode(None)
        assert set(REPLICATION_MODES) == {"reliable", "causal"}
