"""Tests of relation schemas and the schema registry."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import (
    RelationKind,
    RelationName,
    RelationSchema,
    SchemaRegistry,
    declare,
)


class TestRelationName:
    def test_parse_qualified_name(self):
        rel = RelationName.parse("pictures@sigmod")
        assert rel.name == "pictures"
        assert rel.peer == "sigmod"
        assert str(rel) == "pictures@sigmod"

    def test_parse_requires_at(self):
        with pytest.raises(SchemaError):
            RelationName.parse("pictures")

    def test_empty_components_rejected(self):
        with pytest.raises(SchemaError):
            RelationName("", "sigmod")
        with pytest.raises(SchemaError):
            RelationName("pictures", "")


class TestRelationSchema:
    def test_basic_properties(self):
        schema = RelationSchema("pictures", "alice", ("id", "name", "owner", "data"))
        assert schema.arity == 4
        assert schema.qualified_name == "pictures@alice"
        assert schema.is_extensional()
        assert not schema.is_intensional()

    def test_intensional_kind(self):
        schema = RelationSchema("view", "alice", ("x",), kind=RelationKind.INTENSIONAL)
        assert schema.is_intensional()

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", "p", ("a", "a"))

    def test_key_columns_must_exist(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", "p", ("a", "b"), key=("c",))

    def test_key_indexes(self):
        schema = RelationSchema("r", "p", ("a", "b", "c"), key=("c", "a"))
        assert schema.key_indexes() == (2, 0)

    def test_str_rendering(self):
        schema = RelationSchema("friends", "bob", ("user", "friend"))
        assert "friends@bob(user, friend)" in str(schema)
        assert "extensional" in str(schema)

    def test_declare_helper(self):
        schema = declare("rate@alice", ["id", "rating"], kind="intensional")
        assert schema.kind is RelationKind.INTENSIONAL
        assert schema.peer == "alice"


class TestSchemaRegistry:
    def test_declare_and_get(self):
        registry = SchemaRegistry()
        schema = RelationSchema("pictures", "alice", ("id", "name"))
        registry.declare(schema)
        assert registry.get("pictures", "alice") == schema
        assert registry.get("pictures", "bob") is None
        assert "pictures@alice" in registry

    def test_redeclare_identical_is_noop(self):
        registry = SchemaRegistry()
        schema = RelationSchema("r", "p", ("a",))
        registry.declare(schema)
        registry.declare(RelationSchema("r", "p", ("a",)))
        assert len(registry) == 1

    def test_conflicting_arity_rejected(self):
        registry = SchemaRegistry()
        registry.declare(RelationSchema("r", "p", ("a",)))
        with pytest.raises(SchemaError):
            registry.declare(RelationSchema("r", "p", ("a", "b")))

    def test_conflicting_kind_rejected(self):
        registry = SchemaRegistry()
        registry.declare(RelationSchema("r", "p", ("a",)))
        with pytest.raises(SchemaError):
            registry.declare(RelationSchema("r", "p", ("a",), kind=RelationKind.INTENSIONAL))

    def test_replace_allows_conflicts(self):
        registry = SchemaRegistry()
        registry.declare(RelationSchema("r", "p", ("a",)))
        replaced = RelationSchema("r", "p", ("a", "b"))
        registry.declare(replaced, replace=True)
        assert registry.get("r", "p").arity == 2

    def test_declare_implicit_creates_positional_columns(self):
        registry = SchemaRegistry()
        schema = registry.declare_implicit("seen", "alice", 3)
        assert schema.columns == ("c0", "c1", "c2")
        assert schema.is_extensional()

    def test_declare_implicit_checks_arity(self):
        registry = SchemaRegistry()
        registry.declare(RelationSchema("r", "p", ("a", "b")))
        with pytest.raises(SchemaError):
            registry.declare_implicit("r", "p", 3)

    def test_lookup_unknown_raises(self):
        registry = SchemaRegistry()
        with pytest.raises(SchemaError):
            registry.lookup("nope@p")

    def test_relations_of_peer_sorted(self):
        registry = SchemaRegistry([
            RelationSchema("z", "p", ("a",)),
            RelationSchema("a", "p", ("a",)),
            RelationSchema("m", "q", ("a",)),
        ])
        names = [s.name for s in registry.relations_of_peer("p")]
        assert names == ["a", "z"]

    def test_extensional_and_intensional_partitions(self):
        registry = SchemaRegistry([
            RelationSchema("base", "p", ("a",)),
            RelationSchema("view", "p", ("a",), kind=RelationKind.INTENSIONAL),
        ])
        assert [s.name for s in registry.extensional()] == ["base"]
        assert [s.name for s in registry.intensional()] == ["view"]

    def test_check_arity(self):
        registry = SchemaRegistry([RelationSchema("r", "p", ("a", "b"))])
        registry.check_arity("r", "p", 2)
        with pytest.raises(SchemaError):
            registry.check_arity("r", "p", 3)
        # Unknown relations are not checked.
        registry.check_arity("unknown", "p", 7)

    def test_copy_is_independent(self):
        registry = SchemaRegistry([RelationSchema("r", "p", ("a",))])
        clone = registry.copy()
        clone.declare(RelationSchema("s", "p", ("a",)))
        assert registry.get("s", "p") is None
        assert clone.get("s", "p") is not None
