"""Tests of the term model (constants, variables, coercion)."""

import pytest

from repro.core.terms import Constant, Variable, make_term, term_sort_key


class TestConstant:
    def test_wraps_plain_values(self):
        assert Constant("sea.jpg").value == "sea.jpg"
        assert Constant(42).value == 42
        assert Constant(3.5).value == 3.5
        assert Constant(True).value is True
        assert Constant(None).value is None
        assert Constant(b"\x01\x02").value == b"\x01\x02"

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            Constant(["list"])
        with pytest.raises(TypeError):
            Constant({"a": 1})

    def test_equality_is_type_sensitive(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(True)
        assert Constant(1) != Constant(1.0)
        assert Constant("1") != Constant(1)

    def test_hash_consistent_with_equality(self):
        assert hash(Constant("x")) == hash(Constant("x"))
        assert len({Constant(1), Constant(True), Constant(1)}) == 2

    def test_string_rendering_quotes_strings(self):
        assert str(Constant("sea.jpg")) == '"sea.jpg"'
        assert str(Constant(7)) == "7"

    def test_string_rendering_escapes_quotes(self):
        assert str(Constant('he said "hi"')) == '"he said \\"hi\\""'

    def test_is_constant_and_is_variable(self):
        constant = Constant("x")
        assert constant.is_constant()
        assert not constant.is_variable()


class TestVariable:
    def test_strips_leading_dollar(self):
        assert Variable("$x").name == "x"
        assert Variable("x").name == "x"

    def test_rejects_empty_names(self):
        with pytest.raises((TypeError, ValueError)):
            Variable("")
        with pytest.raises(ValueError):
            Variable("$")

    def test_equality_and_hash(self):
        assert Variable("x") == Variable("$x")
        assert Variable("x") != Variable("y")
        assert len({Variable("x"), Variable("$x")}) == 1

    def test_str_renders_with_dollar(self):
        assert str(Variable("attendee")) == "$attendee"

    def test_anonymous_detection(self):
        assert Variable("_").is_anonymous()
        assert Variable("_anon3").is_anonymous()
        assert not Variable("x").is_anonymous()

    def test_variable_differs_from_constant(self):
        assert Variable("x") != Constant("x")
        assert Constant("x") != Variable("x")


class TestMakeTerm:
    def test_passthrough_of_terms(self):
        constant = Constant(3)
        assert make_term(constant) is constant
        variable = Variable("x")
        assert make_term(variable) is variable

    def test_dollar_strings_become_variables(self):
        term = make_term("$attendee")
        assert isinstance(term, Variable)
        assert term.name == "attendee"

    def test_plain_values_become_constants(self):
        assert make_term("alice") == Constant("alice")
        assert make_term(5) == Constant(5)
        assert make_term(None) == Constant(None)


class TestSortKey:
    def test_variables_sort_before_constants(self):
        key_var = term_sort_key(Variable("z"))
        key_const = term_sort_key(Constant("a"))
        assert key_var < key_const

    def test_constants_sort_by_type_then_value(self):
        values = [Constant(3), Constant(1), Constant("b"), Constant("a")]
        ordered = sorted(values, key=term_sort_key)
        assert ordered == [Constant(1), Constant(3), Constant("a"), Constant("b")]

    def test_sort_key_handles_none_bytes_bool(self):
        keys = [term_sort_key(Constant(None)), term_sort_key(Constant(b"x")),
                term_sort_key(Constant(True))]
        assert len(keys) == 3  # no exception raised, all comparable tuples
        assert all(isinstance(k, tuple) for k in keys)
