"""Tests of the WebdamLog parser."""

import pytest

from repro.core.errors import ParseError
from repro.core.parser import (
    parse_atom,
    parse_fact,
    parse_program,
    parse_query,
    parse_rule,
    tokenize,
)
from repro.core.schema import RelationKind
from repro.core.terms import Constant, Variable


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize('rule r@p($x) :- s@p("a", 3);')
        kinds = [t.kind for t in tokens]
        assert "IMPLIES" in kinds
        assert "VARIABLE" in kinds
        assert "STRING" in kinds
        assert "INT" in kinds

    def test_comments_are_skipped(self):
        tokens = tokenize("// a comment\n# another\nfact r@p(1);")
        assert all(t.kind != "COMMENT" for t in tokens)
        assert tokens[0].text == "fact"

    def test_line_and_column_tracking(self):
        tokens = tokenize("fact\n  r@p(1);")
        r_token = [t for t in tokens if t.text == "r"][0]
        assert r_token.line == 2
        assert r_token.column == 3

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("fact r@p(%);")
        assert excinfo.value.line == 1


class TestParseFact:
    def test_simple_fact(self):
        fact = parse_fact('fact pictures@sigmod(32, "sea.jpg", "Emilien");')
        assert fact.relation == "pictures"
        assert fact.peer == "sigmod"
        assert fact.values == (32, "sea.jpg", "Emilien")

    def test_fact_keyword_optional(self):
        fact = parse_fact('friends@alice("bob");')
        assert fact.values == ("bob",)

    def test_bare_identifiers_become_strings(self):
        fact = parse_fact("selectedAttendee@Jules(Emilien)")
        assert fact.values == ("Emilien",)

    def test_literal_types(self):
        fact = parse_fact('mixed@p("text", 42, 3.5, true, false, null);')
        assert fact.values == ("text", 42, 3.5, True, False, None)

    def test_negative_numbers(self):
        fact = parse_fact("delta@p(-3, -2.5);")
        assert fact.values == (-3, -2.5)

    def test_escaped_quotes_in_strings(self):
        fact = parse_fact('note@p("he said \\"hi\\"");')
        assert fact.values == ('he said "hi"',)

    def test_fact_with_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_fact("pictures@alice($x);")

    def test_default_peer(self):
        fact = parse_fact("pictures(1)", default_peer="alice")
        assert fact.peer == "alice"

    def test_missing_peer_without_default_rejected(self):
        with pytest.raises(ParseError):
            parse_fact("pictures(1)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_fact("r@p(1); extra")


class TestParseRule:
    def test_paper_attendee_pictures_rule(self):
        rule = parse_rule(
            "attendeePictures@Jules($id, $name, $owner, $data) :- "
            "selectedAttendee@Jules($attendee), "
            "pictures@$attendee($id, $name, $owner, $data)"
        )
        assert rule.head.relation_constant() == "attendeePictures"
        assert rule.head.peer_constant() == "Jules"
        assert len(rule.body) == 2
        assert rule.body[1].peer == Variable("attendee")
        rule.check_safety()

    def test_paper_transfer_rule_with_relation_variable(self):
        rule = parse_rule(
            "$protocol@$attendee($attendee, $name, $id, $owner) :- "
            "selectedAttendee@Jules($attendee), "
            "communicate@$attendee($protocol), "
            "selectedPictures@Jules($name, $id, $owner)"
        )
        assert rule.head.relation == Variable("protocol")
        assert rule.head.peer == Variable("attendee")
        rule.check_safety()

    def test_rule_keyword_optional_and_semicolon_optional(self):
        with_keyword = parse_rule("rule v@p($x) :- b@p($x);")
        without = parse_rule("v@p($x) :- b@p($x)")
        assert with_keyword.head.relation_constant() == without.head.relation_constant()

    def test_negation_in_body(self):
        rule = parse_rule("v@p($x) :- b@p($x), not banned@p($x)")
        assert rule.body[1].negated
        bang = parse_rule("v@p($x) :- b@p($x), !banned@p($x)")
        assert bang.body[1].negated

    def test_author_recorded(self):
        rule = parse_rule("v@p($x) :- b@p($x)", author="alice")
        assert rule.author == "alice"

    def test_constants_in_rule_body(self):
        rule = parse_rule('best@p($id) :- rate@p($id, 5), pictures@p($id, "sea.jpg")')
        assert rule.body[0].args[1] == Constant(5)
        assert rule.body[1].args[1] == Constant("sea.jpg")

    def test_anonymous_variables_are_distinct(self):
        rule = parse_rule("v@p($x) :- b@p($x, $_, $_)")
        anon = [a for a in rule.body[0].args if a != Variable("x")]
        assert anon[0] != anon[1]

    def test_missing_implies_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("v@p($x) b@p($x)")


class TestParseProgram:
    PROGRAM = """
    // The Wepic program of Jules
    collection extensional persistent pictures@Jules(id, name, owner, data);
    collection extensional selectedAttendee@Jules(attendee);
    collection intensional attendeePictures@Jules(id, name, owner, data);
    peer sigmod "cloud.webdam.example:10000";

    fact pictures@Jules(1, "sea.jpg", "Jules", "0101");
    fact selectedAttendee@Jules("Emilien");

    rule attendeePictures@Jules($id, $n, $o, $d) :-
        selectedAttendee@Jules($a), pictures@$a($id, $n, $o, $d);
    """

    def test_full_program(self):
        program = parse_program(self.PROGRAM)
        assert len(program.schemas) == 3
        assert len(program.facts) == 2
        assert len(program.rules) == 1
        assert program.peers == [("sigmod", "cloud.webdam.example:10000")]
        assert program.statement_count() == 7

    def test_collection_kinds(self):
        program = parse_program(self.PROGRAM)
        kinds = {s.name: s.kind for s in program.schemas}
        assert kinds["pictures"] is RelationKind.EXTENSIONAL
        assert kinds["attendeePictures"] is RelationKind.INTENSIONAL

    def test_key_columns_with_star(self):
        program = parse_program("collection ext profile@p(user*, bio);")
        assert program.schemas[0].key == ("user",)

    def test_iteration_yields_all_statements(self):
        program = parse_program(self.PROGRAM)
        assert len(list(program)) == 6  # schemas + facts + rules

    def test_empty_program(self):
        program = parse_program("   \n// nothing\n")
        assert program.statement_count() == 0

    def test_bare_statements_classified(self):
        program = parse_program(
            'r@p(1);\n v@p($x) :- r@p($x);\n', default_peer="p")
        assert len(program.facts) == 1
        assert len(program.rules) == 1

    def test_peer_declaration_without_address(self):
        program = parse_program("peer bob;")
        assert program.peers == [("bob", "bob")]


class TestParseAtom:
    def test_positive_atom(self):
        atom = parse_atom("pictures@$a($id)")
        assert atom.peer == Variable("a")
        assert not atom.negated

    def test_negated_atom(self):
        atom = parse_atom("not banned@p($x)")
        assert atom.negated

    def test_negation_disallowed_when_requested(self):
        with pytest.raises(ParseError):
            parse_atom("not banned@p($x)", allow_negation=False)


class TestParseQuery:
    def test_body_only_query(self):
        query = parse_query("a@p($x), not c@p($x), b@r($x, $y)")
        assert query.head_name is None
        assert len(query.body) == 3
        assert query.body[1].negated
        assert not query.is_aggregate()

    def test_body_only_single_literal_with_bound_argument(self):
        query = parse_query('pictures@alice($id, "sea.jpg")')
        assert query.head_name is None
        assert query.body[0].relation == Constant("pictures")
        assert query.body[0].args[1] == Constant("sea.jpg")

    def test_default_peer_qualifies_bare_literals(self):
        query = parse_query("a($x), b@r($x)", default_peer="p")
        assert query.body[0].peer == Constant("p")
        assert query.body[1].peer == Constant("r")

    def test_explicit_head_projects(self):
        query = parse_query("ans($y) :- a@p($x, $y)")
        assert query.head_name == "ans"
        assert query.head_args == (Variable("y"),)

    def test_head_location_is_accepted_and_ignored(self):
        query = parse_query("ans@anywhere($x) :- a@p($x)")
        assert query.head_name == "ans"
        assert query.head_args == (Variable("x"),)

    def test_aggregate_head(self):
        query = parse_query(
            "stats($owner, count($id), avg($rating)) :- "
            "pictures@p($id, $owner), rate@p($id, $rating)")
        assert query.is_aggregate()
        assert [a.function for a in query.aggregates] == ["count", "avg"]
        assert [a.position for a in query.aggregates] == [1, 2]
        # Aggregate slots hold the underlying variable.
        assert query.head_args == (Variable("owner"), Variable("id"),
                                   Variable("rating"))

    def test_relation_variable_literals(self):
        query = parse_query("selected@p($a), pictures@$a($id)")
        assert query.body[1].peer == Variable("a")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_query("a@p($x); b@p($x)")

    def test_missing_peer_without_default_rejected(self):
        with pytest.raises(ParseError):
            parse_query("a($x)")
