"""Tests of matching and unification."""

import pytest

from repro.core.facts import Fact
from repro.core.rules import Atom
from repro.core.terms import Constant, Variable
from repro.core.unification import (
    apply_term,
    compose,
    empty_substitution,
    ground_atom,
    is_ground_substituted,
    match_atom_fact,
    match_term,
    unify_atoms,
    unify_terms,
)


class TestMatchTerm:
    def test_constant_matches_equal_constant(self):
        result = match_term(Constant(3), Constant(3), {})
        assert result == {}
        assert match_term(Constant(3), Constant(4), {}) is None

    def test_type_sensitivity(self):
        assert match_term(Constant(1), Constant(True), {}) is None

    def test_variable_binds(self):
        result = match_term(Variable("x"), Constant("a"), {})
        assert result == {Variable("x"): Constant("a")}

    def test_bound_variable_must_agree(self):
        binding = {Variable("x"): Constant("a")}
        assert match_term(Variable("x"), Constant("a"), binding) == binding
        assert match_term(Variable("x"), Constant("b"), binding) is None

    def test_input_substitution_not_mutated(self):
        binding = {}
        match_term(Variable("x"), Constant(1), binding)
        assert binding == {}


class TestMatchAtomFact:
    def test_simple_match(self):
        atom = Atom.of("pictures", "alice", "$id", "$name")
        fact = Fact("pictures", "alice", (1, "sea.jpg"))
        result = match_atom_fact(atom, fact)
        assert result == {Variable("id"): Constant(1), Variable("name"): Constant("sea.jpg")}

    def test_peer_variable_binds_to_fact_peer(self):
        atom = Atom.of("pictures", "$attendee", "$id")
        fact = Fact("pictures", "Emilien", (7,))
        result = match_atom_fact(atom, fact)
        assert result[Variable("attendee")] == Constant("Emilien")

    def test_relation_variable_binds_to_fact_relation(self):
        atom = Atom.of("$R", "alice", "$x")
        fact = Fact("rate", "alice", (5,))
        result = match_atom_fact(atom, fact)
        assert result[Variable("R")] == Constant("rate")

    def test_mismatched_relation_fails(self):
        atom = Atom.of("pictures", "alice", "$x")
        assert match_atom_fact(atom, Fact("rate", "alice", (1,))) is None

    def test_arity_mismatch_fails(self):
        atom = Atom.of("r", "p", "$x")
        assert match_atom_fact(atom, Fact("r", "p", (1, 2))) is None

    def test_repeated_variable_requires_equal_values(self):
        atom = Atom.of("edge", "p", "$x", "$x")
        assert match_atom_fact(atom, Fact("edge", "p", (1, 1))) is not None
        assert match_atom_fact(atom, Fact("edge", "p", (1, 2))) is None

    def test_existing_substitution_constrains_match(self):
        atom = Atom.of("pictures", "$a", "$id")
        fact = Fact("pictures", "Emilien", (7,))
        constrained = {Variable("a"): Constant("Jules")}
        assert match_atom_fact(atom, fact, constrained) is None

    def test_negated_atom_rejected(self):
        atom = Atom.of("r", "p", "$x", negated=True)
        with pytest.raises(ValueError):
            match_atom_fact(atom, Fact("r", "p", (1,)))


class TestUnify:
    def test_unify_terms_variable_constant(self):
        result = unify_terms(Variable("x"), Constant(1))
        assert result == {Variable("x"): Constant(1)}
        result = unify_terms(Constant(1), Variable("x"))
        assert result == {Variable("x"): Constant(1)}

    def test_unify_terms_variable_variable(self):
        result = unify_terms(Variable("x"), Variable("y"))
        assert Variable("x") in result or Variable("y") in result

    def test_unify_terms_respects_existing_bindings(self):
        existing = {Variable("x"): Constant(1)}
        assert unify_terms(Variable("x"), Constant(1), existing) is not None
        assert unify_terms(Variable("x"), Constant(2), existing) is None

    def test_unify_atoms(self):
        left = Atom.of("r", "p", "$x", 2)
        right = Atom.of("r", "p", 1, "$y")
        result = unify_atoms(left, right)
        assert result[Variable("x")] == Constant(1)
        assert result[Variable("y")] == Constant(2)

    def test_unify_atoms_negation_must_agree(self):
        left = Atom.of("r", "p", "$x", negated=True)
        right = Atom.of("r", "p", 1)
        assert unify_atoms(left, right) is None

    def test_unify_atoms_different_relations_fail(self):
        assert unify_atoms(Atom.of("r", "p", "$x"), Atom.of("s", "p", 1)) is None


class TestHelpers:
    def test_compose_substitutions(self):
        first = {Variable("x"): Variable("y")}
        second = {Variable("y"): Constant(3)}
        composed = compose(first, second)
        assert composed[Variable("x")] == Constant(3)
        assert composed[Variable("y")] == Constant(3)

    def test_apply_term(self):
        binding = {Variable("x"): Constant(1)}
        assert apply_term(Variable("x"), binding) == Constant(1)
        assert apply_term(Variable("z"), binding) == Variable("z")
        assert apply_term(Constant("a"), binding) == Constant("a")

    def test_ground_atom_and_is_ground(self):
        atom = Atom.of("r", "p", "$x")
        binding = {Variable("x"): Constant(1)}
        assert ground_atom(atom, binding).is_ground()
        assert is_ground_substituted(atom, binding)
        assert not is_ground_substituted(atom, {})

    def test_empty_substitution_fresh_each_call(self):
        first = empty_substitution()
        first[Variable("x")] = Constant(1)
        assert empty_substitution() == {}
