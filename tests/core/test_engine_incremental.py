"""Targeted tests of the incremental fixpoint machinery and the fact indexes."""

import pytest

from repro.core.engine import WebdamLogEngine
from repro.core.evaluation import RuleEvaluator
from repro.core.facts import Fact, FactStore
from repro.core.parser import parse_rule
from repro.core.schema import RelationKind, RelationSchema

TC_PROGRAM = """
collection extensional persistent link@alice(src, dst);
collection intensional tc@alice(src, dst);
rule tc@alice($x, $y) :- link@alice($x, $y);
rule tc@alice($x, $z) :- link@alice($x, $y), tc@alice($y, $z);
"""


class TestEvaluationPaths:
    def test_first_stage_is_full(self, engine):
        engine.load_program(TC_PROGRAM)
        assert engine.run_stage().evaluation_path == "full"

    def test_insertions_take_the_delta_path(self, engine):
        engine.load_program(TC_PROGRAM)
        engine.run_to_quiescence()
        engine.insert_fact(Fact("link", "alice", (1, 2)))
        result = engine.run_stage()
        assert result.evaluation_path == "delta"
        assert {f.values for f in engine.query("tc")} == {(1, 2)}

    def test_deletions_take_the_rederive_path(self, engine):
        engine.load_program(TC_PROGRAM)
        for edge in ((1, 2), (2, 3)):
            engine.insert_fact(Fact("link", "alice", edge))
        engine.run_to_quiescence()
        engine.delete_fact(Fact("link", "alice", (2, 3)))
        result = engine.run_stage()
        assert result.evaluation_path == "rederive"
        assert {f.values for f in engine.query("tc")} == {(1, 2)}

    def test_rederive_is_scoped_to_the_affected_closure(self, engine):
        engine.load_program(TC_PROGRAM)
        engine.load_program("""
        collection extensional persistent other@alice(x);
        collection intensional unrelated@alice(x);
        rule unrelated@alice($x) :- other@alice($x);
        """)
        engine.insert_fact(Fact("link", "alice", (1, 2)))
        engine.insert_fact(Fact("other", "alice", (9,)))
        engine.run_to_quiescence()
        baseline = engine.eval_counters["rules_evaluated"]
        engine.delete_fact(Fact("link", "alice", (1, 2)))
        result = engine.run_stage()
        assert result.evaluation_path == "rederive"
        # Only the two tc rules re-fired; the unrelated rule was not touched.
        evaluated = engine.eval_counters["rules_evaluated"] - baseline
        assert evaluated == result.rules_evaluated
        assert result.rules_evaluated <= 4  # 2 tc rules × ≤2 iterations
        assert {f.values for f in engine.query("unrelated")} == {(9,)}

    def test_rule_changes_force_a_full_recompute(self, engine):
        engine.load_program(TC_PROGRAM)
        engine.run_to_quiescence()
        engine.add_rule("loop@alice($x) :- tc@alice($x, $x)")
        assert engine.run_stage().evaluation_path == "full"
        removed = engine.rules()[-1]
        engine.remove_rule(removed.rule_id)
        assert engine.run_stage().evaluation_path == "full"

    def test_negation_touching_delta_takes_the_rederive_path(self, engine):
        engine.load_program("""
        collection extensional persistent base@alice(x);
        collection extensional persistent hide@alice(x);
        collection intensional shown@alice(x);
        rule shown@alice($x) :- base@alice($x), not hide@alice($x);
        """)
        engine.insert_fact(Fact("base", "alice", (1,)))
        engine.run_to_quiescence()
        assert {f.values for f in engine.query("shown")} == {(1,)}
        engine.insert_fact(Fact("hide", "alice", (1,)))
        result = engine.run_stage()
        assert result.evaluation_path == "rederive"
        assert engine.query("shown") == ()

    def test_insert_reaching_negation_transitively_rederives(self, engine):
        """Regression: an insert that derives *into* a negated predicate only
        through an intermediate rule must not take the seminaive path — the
        stale negation-guarded facts would never be retracted."""
        engine.load_program("""
        collection extensional persistent c@alice(x);
        collection extensional persistent d@alice(x);
        collection intensional a@alice(x);
        collection intensional b@alice(x);
        rule a@alice($x) :- c@alice($x), d@alice($x);
        rule b@alice($x) :- c@alice($x), not a@alice($x);
        """)
        engine.insert_fact(Fact("c", "alice", (1,)))
        engine.run_to_quiescence()
        assert {f.values for f in engine.query("b")} == {(1,)}
        engine.insert_fact(Fact("d", "alice", (1,)))
        result = engine.run_stage()
        assert result.evaluation_path == "rederive"
        assert engine.query("b") == ()
        assert {f.values for f in engine.query("a")} == {(1,)}

    def test_provenance_rides_the_delta_path(self, engine):
        """A maintained tracker no longer pins the engine to full stages."""
        from repro.provenance import ProvenanceTracker

        engine.load_program(TC_PROGRAM)
        engine.provenance = ProvenanceTracker()
        engine.run_to_quiescence()
        engine.insert_fact(Fact("link", "alice", (1, 2)))
        result = engine.run_stage()
        assert result.evaluation_path == "delta"
        assert engine.provenance.why(Fact("tc", "alice", (1, 2)))

    def test_legacy_recorder_still_forces_the_full_path(self, engine):
        """A hook-less recorder keeps the historical full-recompute contract."""

        class Recorder:
            def __init__(self):
                self.seen = []

            def record(self, fact, rule, support):
                self.seen.append((fact, rule.rule_id, support))

        engine.load_program(TC_PROGRAM)
        engine.provenance = Recorder()
        engine.run_to_quiescence()
        engine.insert_fact(Fact("link", "alice", (1, 2)))
        result = engine.run_stage()
        assert result.evaluation_path == "full"
        assert engine.provenance.seen


class TestMemoisedOutputs:
    def test_remote_updates_survive_unrelated_stages(self, engine):
        """A derived remote fact is not retracted by an unrelated delta."""
        engine.load_program("""
        collection extensional persistent mine@alice(x);
        collection extensional persistent other@alice(x);
        rule mirror@bob($x) :- mine@alice($x);
        """)
        engine.insert_fact(Fact("mine", "alice", (1,)))
        result = engine.run_stage()
        assert any(Fact("mirror", "bob", (1,)) in u.inserted
                   for u in result.outgoing_updates)
        engine.insert_fact(Fact("other", "alice", (5,)))
        result = engine.run_stage()
        # Nothing new for bob, and crucially no retraction either.
        assert result.outgoing_updates == []

    def test_remote_view_retraction_after_deletion(self, engine):
        engine.declare(RelationSchema("mirror", "bob", ("x",),
                                      kind=RelationKind.INTENSIONAL))
        engine.load_program("""
        collection extensional persistent mine@alice(x);
        rule mirror@bob($x) :- mine@alice($x);
        """)
        engine.insert_fact(Fact("mine", "alice", (1,)))
        engine.run_stage()
        engine.delete_fact(Fact("mine", "alice", (1,)))
        result = engine.run_stage()
        assert result.evaluation_path == "rederive"
        assert any(Fact("mirror", "bob", (1,)) in u.deleted
                   for u in result.outgoing_updates)


class TestFactStoreIndexes:
    def _store(self):
        store = FactStore()
        store.insert(Fact("r", "p", (1, "a")))
        store.insert(Fact("r", "p", (1, "b")))
        store.insert(Fact("r", "p", (2, "a")))
        return store

    def test_multi_column_lookup_is_exact(self):
        store = self._store()
        facts = set(store.facts("r", "p", bindings={0: 1, 1: "a"}))
        assert facts == {Fact("r", "p", (1, "a"))}

    def test_indexes_are_maintained_across_updates(self):
        store = self._store()
        assert len(set(store.facts("r", "p", bindings={0: 1}))) == 2
        store.delete(Fact("r", "p", (1, "a")))
        store.insert(Fact("r", "p", (1, "c")))
        assert (set(store.facts("r", "p", bindings={0: 1}))
                == {Fact("r", "p", (1, "b")), Fact("r", "p", (1, "c"))})

    def test_bool_and_int_keys_stay_distinct(self):
        store = FactStore()
        store.insert(Fact("flags", "p", (True,)))
        store.insert(Fact("flags", "p", (1,)))
        assert set(store.facts("flags", "p", bindings={0: True})) == {
            Fact("flags", "p", (True,))}

    def test_out_of_range_binding_matches_nothing(self):
        store = self._store()
        assert list(store.facts("r", "p", bindings={5: "a"})) == []


class TestEvaluatorSources:
    def test_legacy_two_argument_source_is_filtered(self):
        facts = [Fact("r", "p", (1, "a")), Fact("r", "p", (2, "b"))]

        def source(relation, peer):
            return [f for f in facts if f.relation == relation and f.peer == peer]

        evaluator = RuleEvaluator("p", source)
        rule = parse_rule("out@p($x) :- r@p($x, \"a\")")
        outcome = evaluator.evaluate_rule(rule)
        assert {f.values for f in outcome.local_extensional} == {(1,)}

    def test_negated_ground_literal_uses_the_index_probe(self):
        facts = {"s": [Fact("s", "p", (1,)), Fact("s", "p", (2,))],
                 "r": [Fact("r", "p", (1,))]}
        calls = []

        def source(relation, peer, bindings=None):
            calls.append((relation, bindings))
            selected = facts.get(relation, [])
            if bindings:
                selected = [f for f in selected
                            if all(f.values[i] == v for i, v in bindings.items())]
            return selected

        evaluator = RuleEvaluator("p", source)
        rule = parse_rule("out@p($x) :- s@p($x), not r@p($x)")
        outcome = evaluator.evaluate_rules([rule])
        assert {f.values for f in outcome.local_extensional} == {(2,)}
        # The negated probes arrived with the argument fully bound.
        negated_probes = [b for rel, b in calls if rel == "r"]
        assert negated_probes == [{0: 1}, {0: 2}]

    def test_delta_evaluation_only_explores_delta_joins(self):
        facts = [Fact("link", "p", (i, i + 1)) for i in range(10)]
        facts += [Fact("tc", "p", (i, j)) for i in range(10) for j in range(i + 1, 11)]

        def source(relation, peer, bindings=None):
            selected = (f for f in facts if f.relation == relation and f.peer == peer)
            if bindings:
                selected = (f for f in selected
                            if all(f.values[i] == v for i, v in bindings.items()))
            return list(selected)

        evaluator = RuleEvaluator(
            "p", source,
            kind_resolver=lambda relation, peer: (
                RelationKind.INTENSIONAL if relation == "tc" else None),
        )
        rule = parse_rule("tc@p($x, $z) :- link@p($x, $y), tc@p($y, $z)")
        full = evaluator.evaluate_rule(rule)
        delta = evaluator.evaluate_rule_delta(
            rule, {"link@p": {Fact("link", "p", (0, 1))}})
        assert delta.substitutions_explored < full.substitutions_explored
        # Every delta derivation is a subset of the full evaluation's.
        assert delta.local_intensional <= full.local_intensional
        assert {f.values[0] for f in delta.local_intensional} == {0}
