"""Tests of left-to-right rule evaluation at a single peer."""

import pytest

from repro.core.delegation import Delegation
from repro.core.errors import EvaluationError
from repro.core.evaluation import RuleEvaluator, RuleOutcome, stratify_local_rules
from repro.core.facts import Fact
from repro.core.parser import parse_rule
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationKind


def make_source(facts):
    """Build a fact_source callable from a list of facts."""

    def source(relation, peer):
        return [f for f in facts if f.relation == relation and f.peer == peer]

    return source


class TestLocalEvaluation:
    def test_simple_projection(self):
        facts = [Fact("pictures", "alice", (1, "sea.jpg")),
                 Fact("pictures", "alice", (2, "boat.jpg"))]
        evaluator = RuleEvaluator("alice", make_source(facts))
        rule = parse_rule("names@alice($n) :- pictures@alice($id, $n)")
        outcome = evaluator.evaluate_rule(rule)
        assert outcome.local_extensional == {
            Fact("names", "alice", ("sea.jpg",)), Fact("names", "alice", ("boat.jpg",))
        }

    def test_join_across_relations(self):
        facts = [Fact("rate", "alice", (1, 5)), Fact("rate", "alice", (2, 3)),
                 Fact("pictures", "alice", (1, "sea.jpg")),
                 Fact("pictures", "alice", (2, "boat.jpg"))]
        evaluator = RuleEvaluator("alice", make_source(facts))
        rule = parse_rule("best@alice($n) :- rate@alice($id, 5), pictures@alice($id, $n)")
        outcome = evaluator.evaluate_rule(rule)
        assert outcome.local_extensional == {Fact("best", "alice", ("sea.jpg",))}

    def test_intensional_head_classified_by_kind_resolver(self):
        facts = [Fact("base", "alice", (1,))]
        evaluator = RuleEvaluator(
            "alice", make_source(facts),
            kind_resolver=lambda r, p: RelationKind.INTENSIONAL if r == "view" else None,
        )
        rule = parse_rule("view@alice($x) :- base@alice($x)")
        outcome = evaluator.evaluate_rule(rule)
        assert outcome.local_intensional == {Fact("view", "alice", (1,))}
        assert not outcome.local_extensional

    def test_negation_filters_substitutions(self):
        facts = [Fact("pictures", "alice", (1,)), Fact("pictures", "alice", (2,)),
                 Fact("hidden", "alice", (2,))]
        evaluator = RuleEvaluator("alice", make_source(facts))
        rule = parse_rule("visible@alice($id) :- pictures@alice($id), not hidden@alice($id)")
        outcome = evaluator.evaluate_rule(rule)
        assert outcome.local_extensional == {Fact("visible", "alice", (1,))}

    def test_negation_on_empty_relation_passes(self):
        facts = [Fact("pictures", "alice", (1,))]
        evaluator = RuleEvaluator("alice", make_source(facts))
        rule = parse_rule("v@alice($id) :- pictures@alice($id), not banned@alice($id)")
        outcome = evaluator.evaluate_rule(rule)
        assert len(outcome.local_extensional) == 1

    def test_relation_variable_ranges_over_local_relations(self):
        facts = [Fact("rate", "alice", (1, 5))]
        evaluator = RuleEvaluator("alice", make_source(facts))
        # $R bound by a previous literal listing relation names.
        facts.append(Fact("relations", "alice", ("rate",)))
        rule = parse_rule("found@alice($R, $id) :- relations@alice($R), $R@alice($id, $v)")
        outcome = evaluator.evaluate_rule(rule)
        assert outcome.local_extensional == {Fact("found", "alice", ("rate", 1))}

    def test_remote_head_produces_remote_fact(self):
        facts = [Fact("pictures", "alice", (1, "x", "alice", "d"))]
        evaluator = RuleEvaluator("alice", make_source(facts))
        rule = parse_rule("pictures@sigmod($i, $n, $o, $d) :- pictures@alice($i, $n, $o, $d)")
        outcome = evaluator.evaluate_rule(rule)
        assert outcome.remote_facts == {Fact("pictures", "sigmod", (1, "x", "alice", "d"))}
        assert not outcome.delegations

    def test_unbound_head_raises(self):
        facts = [Fact("base", "alice", (1,))]
        evaluator = RuleEvaluator("alice", make_source(facts))
        rule = Rule(head=Atom.of("view", "alice", "$x", "$unbound"),
                    body=(Atom.of("base", "alice", "$x"),))
        with pytest.raises(EvaluationError):
            evaluator.evaluate_rule(rule)

    def test_unbound_peer_variable_raises(self):
        facts = [Fact("base", "alice", (1,))]
        evaluator = RuleEvaluator("alice", make_source(facts))
        rule = Rule(head=Atom.of("view", "alice", "$x"),
                    body=(Atom.of("base", "$somewhere", "$x"),))
        with pytest.raises(EvaluationError):
            evaluator.evaluate_rule(rule)


class TestDelegationEmission:
    def test_paper_delegation_example(self):
        """The exact example of the paper: Jules delegates to Émilien."""
        facts = [Fact("selectedAttendee", "Jules", ("Emilien",))]
        evaluator = RuleEvaluator("Jules", make_source(facts))
        rule = parse_rule(
            "attendeePictures@Jules($id, $name, $owner, $data) :- "
            "selectedAttendee@Jules($attendee), "
            "pictures@$attendee($id, $name, $owner, $data)"
        )
        outcome = evaluator.evaluate_rule(rule)
        assert len(outcome.delegations) == 1
        delegation = next(iter(outcome.delegations))
        assert delegation.target == "Emilien"
        assert delegation.delegator == "Jules"
        delegated = delegation.rule
        assert delegated.head.peer_constant() == "Jules"
        assert len(delegated.body) == 1
        assert delegated.body[0].relation_constant() == "pictures"
        assert delegated.body[0].peer_constant() == "Emilien"

    def test_one_delegation_per_selected_attendee(self):
        facts = [Fact("selectedAttendee", "Jules", ("Emilien",)),
                 Fact("selectedAttendee", "Jules", ("Julia",))]
        evaluator = RuleEvaluator("Jules", make_source(facts))
        rule = parse_rule(
            "attendeePictures@Jules($id) :- "
            "selectedAttendee@Jules($a), pictures@$a($id)"
        )
        outcome = evaluator.evaluate_rule(rule)
        targets = {d.target for d in outcome.delegations}
        assert targets == {"Emilien", "Julia"}

    def test_selected_attendee_local_means_no_delegation(self):
        facts = [Fact("selectedAttendee", "Jules", ("Jules",)),
                 Fact("pictures", "Jules", (9,))]
        evaluator = RuleEvaluator("Jules", make_source(facts))
        rule = parse_rule(
            "attendeePictures@Jules($id) :- selectedAttendee@Jules($a), pictures@$a($id)"
        )
        outcome = evaluator.evaluate_rule(rule)
        assert not outcome.delegations
        assert Fact("attendeePictures", "Jules", (9,)) in outcome.local_extensional

    def test_delegation_disabled(self):
        facts = [Fact("selectedAttendee", "Jules", ("Emilien",))]
        evaluator = RuleEvaluator("Jules", make_source(facts), allow_delegation=False)
        rule = parse_rule(
            "attendeePictures@Jules($id) :- selectedAttendee@Jules($a), pictures@$a($id)"
        )
        outcome = evaluator.evaluate_rule(rule)
        assert outcome.is_empty()

    def test_delegation_carries_remaining_body(self):
        facts = [Fact("selectedAttendee", "Jules", ("Emilien",)),
                 Fact("communicate", "Jules", ("email",))]
        evaluator = RuleEvaluator("Jules", make_source(facts))
        rule = parse_rule(
            "$protocol@$attendee($attendee, $name) :- "
            "selectedAttendee@Jules($attendee), "
            "communicate@$attendee($protocol), "
            "selectedPictures@Jules($name)"
        )
        outcome = evaluator.evaluate_rule(rule)
        assert len(outcome.delegations) == 1
        delegated = next(iter(outcome.delegations)).rule
        # Remainder keeps both the remote communicate literal and the
        # (back-at-Jules) selectedPictures literal.
        assert len(delegated.body) == 2
        assert delegated.body[0].relation_constant() == "communicate"
        assert delegated.body[1].peer_constant() == "Jules"

    def test_delegation_ids_stable_across_evaluations(self):
        facts = [Fact("selectedAttendee", "Jules", ("Emilien",))]
        evaluator = RuleEvaluator("Jules", make_source(facts))
        rule = parse_rule(
            "attendeePictures@Jules($id) :- selectedAttendee@Jules($a), pictures@$a($id)"
        )
        first = evaluator.evaluate_rule(rule).delegations
        second = evaluator.evaluate_rule(rule).delegations
        assert {d.delegation_id for d in first} == {d.delegation_id for d in second}


class TestProvenanceHook:
    def test_on_derivation_receives_support(self):
        facts = [Fact("rate", "alice", (1, 5)), Fact("pictures", "alice", (1, "sea.jpg"))]
        recorded = []
        evaluator = RuleEvaluator(
            "alice", make_source(facts),
            on_derivation=lambda fact, rule, support: recorded.append((fact, support)),
        )
        rule = parse_rule("best@alice($n) :- rate@alice($id, 5), pictures@alice($id, $n)")
        evaluator.evaluate_rule(rule)
        assert len(recorded) == 1
        fact, support = recorded[0]
        assert fact == Fact("best", "alice", ("sea.jpg",))
        assert set(support) == set(facts)


class TestOutcome:
    def test_merge_accumulates(self):
        a = RuleOutcome(local_extensional={Fact("r", "p", (1,))}, substitutions_explored=2)
        b = RuleOutcome(local_extensional={Fact("r", "p", (2,))}, substitutions_explored=3)
        a.merge(b)
        assert len(a.local_extensional) == 2
        assert a.substitutions_explored == 5
        assert a.total_derivations() == 2

    def test_is_empty(self):
        assert RuleOutcome().is_empty()
        assert not RuleOutcome(remote_facts={Fact("r", "p", (1,))}).is_empty()


class TestStratifyLocalRules:
    def test_negation_creates_two_strata(self):
        rules = [
            parse_rule("a@p($x) :- base@p($x)"),
            parse_rule("b@p($x) :- base@p($x), not a@p($x)"),
        ]
        strata = stratify_local_rules("p", rules)
        assert len(strata) == 2
        assert strata[0][0].head.relation_constant() == "a"
        assert strata[1][0].head.relation_constant() == "b"

    def test_positive_program_single_stratum(self):
        rules = [
            parse_rule("a@p($x) :- base@p($x)"),
            parse_rule("b@p($x) :- a@p($x)"),
        ]
        strata = stratify_local_rules("p", rules)
        assert sum(len(s) for s in strata) == 2

    def test_unstratifiable_falls_back_to_single_stratum(self):
        rules = [
            parse_rule("a@p($x) :- base@p($x), not b@p($x)"),
            parse_rule("b@p($x) :- base@p($x), not a@p($x)"),
        ]
        strata = stratify_local_rules("p", rules)
        assert len(strata) == 1
        assert len(strata[0]) == 2

    def test_empty_rule_list(self):
        assert stratify_local_rules("p", []) in ([], [[]])
