"""Tests of delegation bookkeeping (tracker, store, diffing)."""

import pytest

from repro.core.delegation import (
    Delegation,
    DelegationDiff,
    DelegationStore,
    DelegationTracker,
    InstalledDelegation,
)
from repro.core.errors import DelegationError
from repro.core.parser import parse_rule


def make_delegation(delegator="Jules", target="Emilien", body_peer=None, head="attendeePictures"):
    body_peer = body_peer or target
    rule = parse_rule(f"{head}@{delegator}($id) :- pictures@{body_peer}($id)",
                      author=delegator)
    return Delegation(target=target, rule=rule, delegator=delegator,
                      origin_rule_id=rule.rule_id)


class TestDelegation:
    def test_id_is_stable_and_content_based(self):
        rule = parse_rule("v@Jules($x) :- pictures@Emilien($x)", author="Jules")
        first = Delegation(target="Emilien", rule=rule, delegator="Jules",
                           origin_rule_id="origin-1")
        second = Delegation(target="Emilien", rule=rule, delegator="Jules",
                            origin_rule_id="origin-1")
        assert first.delegation_id == second.delegation_id
        assert first.delegation_id.startswith("deleg-")

    def test_id_differs_per_target_and_origin(self):
        a = make_delegation(target="Emilien")
        b = make_delegation(target="Julia", body_peer="Julia")
        assert a.delegation_id != b.delegation_id

    def test_str_rendering(self):
        delegation = make_delegation()
        assert "Jules -> Emilien" in str(delegation)


class TestDelegationTracker:
    def test_first_diff_installs_everything(self):
        tracker = DelegationTracker("Jules")
        delegation = make_delegation()
        diff = tracker.diff([delegation])
        assert [d.delegation_id for d in diff.to_install] == [delegation.delegation_id]
        assert not diff.to_retract
        assert diff.counts() == (1, 0)

    def test_commit_then_same_required_is_noop(self):
        tracker = DelegationTracker("Jules")
        delegation = make_delegation()
        tracker.commit(tracker.diff([delegation]))
        diff = tracker.diff([delegation])
        assert not diff
        assert tracker.outstanding_for("Emilien") == (delegation,)

    def test_vanished_delegation_is_retracted(self):
        tracker = DelegationTracker("Jules")
        delegation = make_delegation()
        tracker.commit(tracker.diff([delegation]))
        diff = tracker.diff([])
        assert [d.delegation_id for d in diff.to_retract] == [delegation.delegation_id]
        tracker.commit(diff)
        assert not tracker.outstanding()

    def test_mixed_install_and_retract(self):
        tracker = DelegationTracker("Jules")
        old = make_delegation(target="Emilien")
        new = make_delegation(target="Julia", body_peer="Julia")
        tracker.commit(tracker.diff([old]))
        diff = tracker.diff([new])
        assert {d.target for d in diff.to_install} == {"Julia"}
        assert {d.target for d in diff.to_retract} == {"Emilien"}

    def test_rejects_foreign_delegations(self):
        tracker = DelegationTracker("Jules")
        foreign = make_delegation(delegator="Julia")
        with pytest.raises(DelegationError):
            tracker.diff([foreign])

    def test_forget_target(self):
        tracker = DelegationTracker("Jules")
        emilien = make_delegation(target="Emilien")
        julia = make_delegation(target="Julia", body_peer="Julia")
        tracker.commit(tracker.diff([emilien, julia]))
        dropped = tracker.forget_target("Emilien")
        assert [d.target for d in dropped] == ["Emilien"]
        assert {d.target for d in tracker.outstanding()} == {"Julia"}


class TestDelegationStore:
    def test_install_and_rules(self):
        store = DelegationStore("Emilien")
        delegation = make_delegation()
        store.install(delegation.delegation_id, "Jules", delegation.rule)
        assert len(store) == 1
        assert delegation.delegation_id in store
        assert store.rules() == (delegation.rule,)

    def test_install_overwrites_same_id(self):
        store = DelegationStore("Emilien")
        delegation = make_delegation()
        other_rule = parse_rule("other@Jules($x) :- pictures@Emilien($x)", author="Jules")
        store.install(delegation.delegation_id, "Jules", delegation.rule)
        store.install(delegation.delegation_id, "Jules", other_rule)
        assert len(store) == 1
        assert store.rules()[0].head.relation_constant() == "other"

    def test_retract(self):
        store = DelegationStore("Emilien")
        delegation = make_delegation()
        store.install(delegation.delegation_id, "Jules", delegation.rule)
        removed = store.retract(delegation.delegation_id)
        assert removed is not None and removed.delegator == "Jules"
        assert store.retract(delegation.delegation_id) is None
        assert len(store) == 0

    def test_retract_from_delegator(self):
        store = DelegationStore("Emilien")
        a = make_delegation(delegator="Jules")
        b = make_delegation(delegator="Julia", head="julias")
        store.install(a.delegation_id, "Jules", a.rule)
        store.install(b.delegation_id, "Julia", b.rule)
        removed = store.retract_from("Jules")
        assert len(removed) == 1
        assert len(store) == 1
        assert store.by_delegator() == {"Julia": list(store.all())}

    def test_all_ordering_is_deterministic(self):
        store = DelegationStore("Emilien")
        delegations = [make_delegation(head=f"rel{i}") for i in range(5)]
        for delegation in delegations:
            store.install(delegation.delegation_id, "Jules", delegation.rule)
        ids = [d.delegation_id for d in store.all()]
        assert ids == sorted(ids)
