"""Tests of facts, deltas and the fact store."""

import pytest

from repro.core.errors import SchemaError
from repro.core.facts import Delta, Fact, FactStore
from repro.core.schema import RelationKind, RelationSchema, SchemaRegistry
from repro.core.terms import Constant


class TestFact:
    def test_basic_properties(self):
        fact = Fact("pictures", "sigmod", (32, "sea.jpg", "Emilien"))
        assert fact.arity == 3
        assert fact.qualified_relation == "pictures@sigmod"
        assert fact.relation_name.peer == "sigmod"

    def test_of_constructor(self):
        fact = Fact.of("friends@alice", "bob")
        assert fact.relation == "friends"
        assert fact.peer == "alice"
        assert fact.values == ("bob",)

    def test_terms_wraps_constants(self):
        fact = Fact("r", "p", (1, "x"))
        assert fact.terms() == (Constant(1), Constant("x"))

    def test_values_coerced_to_tuple(self):
        fact = Fact("r", "p", [1, 2])
        assert fact.values == (1, 2)
        assert hash(fact)  # hashable after coercion

    def test_at_peer_and_rename(self):
        fact = Fact("pictures", "alice", (1,))
        assert fact.at_peer("sigmod").peer == "sigmod"
        assert fact.at_peer("sigmod").relation == "pictures"
        assert fact.rename("photos").relation == "photos"

    def test_str_rendering(self):
        fact = Fact("pictures", "sigmod", (32, "sea.jpg"))
        assert str(fact) == 'pictures@sigmod(32, "sea.jpg")'

    def test_requires_relation_and_peer(self):
        with pytest.raises(SchemaError):
            Fact("", "p", ())
        with pytest.raises(SchemaError):
            Fact("r", "", ())

    def test_equality_and_hashing(self):
        assert Fact("r", "p", (1,)) == Fact("r", "p", (1,))
        assert Fact("r", "p", (1,)) != Fact("r", "q", (1,))
        assert len({Fact("r", "p", (1,)), Fact("r", "p", (1,))}) == 1


class TestDelta:
    def test_empty_delta_is_falsy(self):
        assert not Delta.empty()
        assert len(Delta.empty()) == 0

    def test_insertion_and_deletion_constructors(self):
        fact = Fact("r", "p", (1,))
        assert Delta.insertion([fact]).inserted == frozenset({fact})
        assert Delta.deletion([fact]).deleted == frozenset({fact})

    def test_merge_cancels_opposites(self):
        fact = Fact("r", "p", (1,))
        insert = Delta.insertion([fact])
        delete = Delta.deletion([fact])
        merged = insert.merge(delete)
        assert not merged.inserted
        assert fact in merged.deleted
        # And in the other direction a delete followed by an insert keeps the insert.
        merged2 = delete.merge(insert)
        assert fact in merged2.inserted
        assert not merged2.deleted

    def test_merge_accumulates_distinct_facts(self):
        a, b = Fact("r", "p", (1,)), Fact("r", "p", (2,))
        merged = Delta.insertion([a]).merge(Delta.insertion([b]))
        assert merged.inserted == frozenset({a, b})
        assert len(merged) == 2


class TestFactStore:
    def test_insert_and_contains(self):
        store = FactStore()
        fact = Fact("pictures", "alice", (1, "sea.jpg"))
        delta = store.insert(fact)
        assert store.contains(fact)
        assert fact in delta.inserted
        assert store.count("pictures", "alice") == 1

    def test_duplicate_insert_produces_empty_delta(self):
        store = FactStore()
        fact = Fact("r", "p", (1,))
        store.insert(fact)
        assert not store.insert(fact)
        assert store.count("r", "p") == 1

    def test_delete(self):
        store = FactStore()
        fact = Fact("r", "p", (1,))
        store.insert(fact)
        delta = store.delete(fact)
        assert fact in delta.deleted
        assert not store.contains(fact)
        assert not store.delete(fact)

    def test_arity_mismatch_rejected(self):
        registry = SchemaRegistry([RelationSchema("r", "p", ("a", "b"))])
        store = FactStore(registry)
        with pytest.raises(SchemaError):
            store.insert(Fact("r", "p", (1,)))

    def test_primary_key_replacement(self):
        registry = SchemaRegistry([RelationSchema("profile", "p", ("user", "bio"),
                                                  key=("user",))])
        store = FactStore(registry)
        store.insert(Fact("profile", "p", ("alice", "v1")))
        delta = store.insert(Fact("profile", "p", ("alice", "v2")))
        assert store.count("profile", "p") == 1
        assert Fact("profile", "p", ("alice", "v1")) in delta.deleted
        assert Fact("profile", "p", ("alice", "v2")) in delta.inserted

    def test_bound_scan_uses_bindings(self):
        store = FactStore()
        for index in range(10):
            store.insert(Fact("r", "p", (index, index % 2)))
        even = list(store.facts("r", "p", bindings={1: 0}))
        assert len(even) == 5
        assert all(f.values[1] == 0 for f in even)

    def test_bound_scan_type_sensitive(self):
        store = FactStore()
        store.insert(Fact("r", "p", (1,)))
        store.insert(Fact("r", "p", (True,)))
        ones = list(store.facts("r", "p", bindings={0: 1}))
        assert len(ones) == 1
        assert ones[0].values == (1,)

    def test_pending_delta_tracking(self):
        store = FactStore()
        a, b = Fact("r", "p", (1,)), Fact("r", "p", (2,))
        store.insert(a)
        store.insert(b)
        store.delete(a)
        delta = store.take_delta()
        assert delta.inserted == frozenset({b})
        assert not delta.deleted  # a was inserted then deleted within the window
        assert not store.take_delta()

    def test_peek_delta_does_not_reset(self):
        store = FactStore()
        store.insert(Fact("r", "p", (1,)))
        assert store.peek_delta()
        assert store.peek_delta()
        assert store.take_delta()
        assert not store.peek_delta()

    def test_apply_delta(self):
        store = FactStore()
        a, b = Fact("r", "p", (1,)), Fact("r", "p", (2,))
        store.insert(a)
        effective = store.apply(Delta(inserted=frozenset({b}), deleted=frozenset({a})))
        assert store.contains(b) and not store.contains(a)
        assert b in effective.inserted and a in effective.deleted

    def test_clear_relation(self):
        store = FactStore()
        store.insert(Fact("r", "p", (1,)))
        store.insert(Fact("r", "p", (2,)))
        store.insert(Fact("s", "p", (1,)))
        delta = store.clear_relation("r", "p")
        assert len(delta.deleted) == 2
        assert store.count("r", "p") == 0
        assert store.count("s", "p") == 1

    def test_clear_nonpersistent_only_touches_scratch_relations(self):
        registry = SchemaRegistry([
            RelationSchema("scratch", "p", ("a",), persistent=False),
            RelationSchema("durable", "p", ("a",)),
        ])
        store = FactStore(registry)
        store.insert(Fact("scratch", "p", (1,)))
        store.insert(Fact("durable", "p", (1,)))
        store.clear_nonpersistent()
        assert store.count("scratch", "p") == 0
        assert store.count("durable", "p") == 1

    def test_snapshot_and_copy(self):
        store = FactStore()
        store.insert(Fact("r", "p", (1,)))
        clone = store.copy()
        clone.insert(Fact("r", "p", (2,)))
        assert store.total_facts() == 1
        assert clone.total_facts() == 2
        assert store.snapshot() == frozenset({Fact("r", "p", (1,))})

    def test_insert_many_and_delete_many(self):
        store = FactStore()
        facts = [Fact("r", "p", (i,)) for i in range(5)]
        delta = store.insert_many(facts)
        assert len(delta.inserted) == 5
        delta = store.delete_many(facts[:2])
        assert len(delta.deleted) == 2
        assert store.total_facts() == 3
