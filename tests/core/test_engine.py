"""Tests of the per-peer engine: program loading, updates, queries."""

import pytest

from repro.core.engine import OutgoingUpdate, StageResult, WebdamLogEngine
from repro.core.errors import SchemaError
from repro.core.facts import Fact
from repro.core.parser import parse_rule
from repro.core.schema import RelationKind, RelationSchema


class TestProgramLoading:
    PROGRAM = """
    collection extensional persistent pictures@alice(id, name);
    collection intensional names@alice(name);
    fact pictures@alice(1, "sea.jpg");
    fact pictures@alice(2, "boat.jpg");
    rule names@alice($n) :- pictures@alice($id, $n);
    """

    def test_load_program_registers_everything(self, engine):
        engine.load_program(self.PROGRAM)
        assert engine.state.schemas.get("pictures", "alice") is not None
        assert engine.state.store.count("pictures", "alice") == 2
        assert len(engine.rules()) == 1

    def test_load_program_with_remote_facts_queues_them(self, engine):
        engine.load_program('fact pictures@sigmod(1, "x");')
        assert engine.state.store.total_facts() == 0
        result = engine.run_stage()
        targets = [update.target for update in result.outgoing_updates]
        assert targets == ["sigmod"]

    def test_add_rule_from_text(self, engine):
        rule = engine.add_rule("v@alice($x) :- b@alice($x)")
        assert rule.author == "alice"
        assert len(engine.rules()) == 1

    def test_remove_and_replace_rule(self, engine):
        rule = engine.add_rule("v@alice($x) :- b@alice($x)")
        replaced = engine.replace_rule(rule.rule_id, "v@alice($x) :- c@alice($x)")
        assert replaced.rule_id == rule.rule_id
        assert replaced.body[0].relation_constant() == "c"
        removed = engine.remove_rule(rule.rule_id)
        assert removed is not None
        assert not engine.rules()

    def test_replace_unknown_rule_raises(self, engine):
        with pytest.raises(KeyError):
            engine.replace_rule("nope", "v@alice($x) :- b@alice($x)")


class TestFactUpdates:
    def test_insert_and_delete_local_fact(self, engine):
        engine.insert_fact('pictures@alice(1, "sea.jpg")')
        assert engine.query("pictures") == (Fact("pictures", "alice", (1, "sea.jpg")),)
        engine.delete_fact('pictures@alice(1, "sea.jpg")')
        assert engine.query("pictures") == ()

    def test_insert_into_intensional_relation_rejected(self, engine):
        engine.declare(RelationSchema("view", "alice", ("x",),
                                      kind=RelationKind.INTENSIONAL))
        with pytest.raises(SchemaError):
            engine.insert_fact(Fact("view", "alice", (1,)))

    def test_remote_insert_is_queued_not_stored(self, engine):
        engine.insert_fact(Fact("pictures", "bob", (1, "x")))
        assert engine.state.store.total_facts() == 0
        result = engine.run_stage()
        assert result.outgoing_updates[0].target == "bob"
        assert Fact("pictures", "bob", (1, "x")) in result.outgoing_updates[0].inserted

    def test_remote_delete_is_queued(self, engine):
        engine.delete_fact(Fact("pictures", "bob", (1, "x")))
        result = engine.run_stage()
        assert Fact("pictures", "bob", (1, "x")) in result.outgoing_updates[0].deleted

    def test_send_fact_rejects_local(self, engine):
        with pytest.raises(SchemaError):
            engine.send_fact(Fact("pictures", "alice", (1,)))


class TestStageBasics:
    def test_intensional_view_computed_in_one_stage(self, engine):
        engine.load_program(TestProgramLoading.PROGRAM)
        result = engine.run_stage()
        assert result.derived_intensional == 2
        names = {f.values[0] for f in engine.query("names")}
        assert names == {"sea.jpg", "boat.jpg"}

    def test_view_recomputed_after_base_deletion(self, engine):
        engine.load_program(TestProgramLoading.PROGRAM)
        engine.run_stage()
        engine.delete_fact('pictures@alice(1, "sea.jpg")')
        engine.run_stage()
        names = {f.values[0] for f in engine.query("names")}
        assert names == {"boat.jpg"}

    def test_quiescence_after_convergence(self, engine):
        engine.load_program(TestProgramLoading.PROGRAM)
        results = engine.run_to_quiescence()
        assert results[-1].is_quiescent()
        # Running another stage stays quiescent.
        assert engine.run_stage().is_quiescent()

    def test_recursive_local_rules_reach_fixpoint(self, engine):
        engine.load_program("""
        collection extensional persistent edge@alice(src, dst);
        collection intensional path@alice(src, dst);
        fact edge@alice(1, 2);
        fact edge@alice(2, 3);
        fact edge@alice(3, 4);
        rule path@alice($x, $y) :- edge@alice($x, $y);
        rule path@alice($x, $z) :- path@alice($x, $y), edge@alice($y, $z);
        """)
        engine.run_to_quiescence()
        paths = {(f.values[0], f.values[1]) for f in engine.query("path")}
        assert paths == {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}

    def test_stratified_negation_local(self, engine):
        engine.load_program("""
        collection extensional persistent pictures@alice(id);
        collection extensional persistent hidden@alice(id);
        collection intensional visible@alice(id);
        fact pictures@alice(1);
        fact pictures@alice(2);
        fact hidden@alice(2);
        rule visible@alice($id) :- pictures@alice($id), not hidden@alice($id);
        """)
        engine.run_to_quiescence()
        assert {f.values[0] for f in engine.query("visible")} == {1}

    def test_derived_local_extensional_facts_deferred_to_next_stage(self, engine):
        engine.load_program("""
        collection extensional persistent raw@alice(x);
        collection extensional persistent archive@alice(x);
        fact raw@alice(1);
        rule archive@alice($x) :- raw@alice($x);
        """)
        first = engine.run_stage()
        assert first.deferred_local_updates == 1
        # The deferred update lands at the start of the next stage.
        assert engine.query("archive") == ()
        engine.run_stage()
        assert engine.query("archive") == (Fact("archive", "alice", (1,)),)

    def test_counts_and_snapshot(self, engine):
        engine.load_program(TestProgramLoading.PROGRAM)
        engine.run_stage()
        counts = engine.counts()
        assert counts["extensional_facts"] == 2
        assert counts["derived_facts"] == 2
        snapshot = engine.snapshot()
        assert "pictures@alice" in snapshot
        assert "names@alice" in snapshot


class TestRemoteInteraction:
    def test_receive_facts_inserted_at_next_stage(self, engine):
        engine.declare(RelationSchema("pictures", "alice", ("id",)))
        engine.receive_facts("bob", inserted=[Fact("pictures", "alice", (7,))])
        assert engine.query("pictures") == ()
        engine.run_stage()
        assert engine.query("pictures") == (Fact("pictures", "alice", (7,)),)

    def test_received_deletion_applied(self, engine):
        engine.insert_fact(Fact("pictures", "alice", (7,)))
        engine.receive_facts("bob", deleted=[Fact("pictures", "alice", (7,))])
        engine.run_stage()
        assert engine.query("pictures") == ()

    def test_received_facts_for_intensional_relation_are_provided(self, engine):
        engine.declare(RelationSchema("view", "alice", ("x",),
                                      kind=RelationKind.INTENSIONAL))
        engine.receive_facts("bob", inserted=[Fact("view", "alice", (1,))])
        engine.run_stage()
        assert engine.query("view") == (Fact("view", "alice", (1,)),)
        # They persist across stages until retracted by the sender...
        engine.run_stage()
        assert engine.query("view") == (Fact("view", "alice", (1,)),)
        engine.receive_facts("bob", deleted=[Fact("view", "alice", (1,))])
        engine.run_stage()
        assert engine.query("view") == ()

    def test_strict_stage_inputs_drop_provided_facts(self):
        engine = WebdamLogEngine("alice", strict_stage_inputs=True)
        engine.declare(RelationSchema("view", "alice", ("x",),
                                      kind=RelationKind.INTENSIONAL))
        engine.receive_facts("bob", inserted=[Fact("view", "alice", (1,))])
        engine.run_stage()
        # With strict semantics the provided fact is visible only during the
        # stage that consumed it.
        assert engine.query("view") == ()

    def test_misrouted_fact_ignored(self, engine):
        engine.receive_facts("bob", inserted=[Fact("pictures", "carol", (1,))])
        engine.run_stage()
        assert engine.state.store.total_facts() == 0

    def test_remote_derived_facts_not_resent(self, engine):
        engine.load_program("""
        collection extensional persistent pictures@alice(id);
        fact pictures@alice(1);
        rule pictures@sigmod($id) :- pictures@alice($id);
        """)
        first = engine.run_stage()
        assert first.outgoing_fact_count() == 1
        second = engine.run_stage()
        assert second.outgoing_fact_count() == 0
        # A new base fact triggers exactly one new outgoing fact.
        engine.insert_fact(Fact("pictures", "alice", (2,)))
        third = engine.run_stage()
        assert third.outgoing_fact_count() == 1

    def test_delegation_installed_and_evaluated(self, engine):
        engine.insert_fact(Fact("pictures", "alice", (1, "sea.jpg")))
        delegated = parse_rule("attendeePictures@Jules($id, $n) :- pictures@alice($id, $n)",
                               author="Jules")
        engine.receive_delegation("Jules", "deleg-1", delegated)
        result = engine.run_stage()
        assert len(engine.installed_delegations()) == 1
        assert result.outgoing_updates[0].target == "Jules"
        assert Fact("attendeePictures", "Jules", (1, "sea.jpg")) in \
            result.outgoing_updates[0].inserted

    def test_delegation_retraction_stops_evaluation(self, engine):
        engine.insert_fact(Fact("pictures", "alice", (1, "x")))
        delegated = parse_rule("v@Jules($id) :- pictures@alice($id, $n)", author="Jules")
        engine.receive_delegation("Jules", "deleg-9", delegated)
        engine.run_stage()
        engine.receive_delegation_retraction("Jules", "deleg-9")
        engine.run_stage()
        assert len(engine.installed_delegations()) == 0

    def test_only_delegator_can_retract(self, engine):
        delegated = parse_rule("v@Jules($id) :- pictures@alice($id)", author="Jules")
        engine.receive_delegation("Jules", "deleg-2", delegated)
        engine.run_stage()
        engine.receive_delegation_retraction("Mallory", "deleg-2")
        engine.run_stage()
        assert len(engine.installed_delegations()) == 1


class TestStageResult:
    def test_outgoing_counters(self):
        result = StageResult(peer="p", stage=1)
        assert result.is_quiescent()
        result.outgoing_updates.append(OutgoingUpdate(
            target="q", inserted=frozenset({Fact("r", "q", (1,))})))
        assert result.outgoing_fact_count() == 1
        assert result.outgoing_message_count() == 1
        assert result.has_outgoing()
        assert not result.is_quiescent()
