"""Tests of atoms, rules and the left-to-right safety conditions."""

import pytest

from repro.core.errors import SafetyError, SchemaError
from repro.core.rules import Atom, Rule, fresh_rule_id
from repro.core.terms import Constant, Variable


class TestAtom:
    def test_of_coerces_terms(self):
        atom = Atom.of("pictures", "$attendee", "$id", "sea.jpg", 3)
        assert atom.relation == Constant("pictures")
        assert atom.peer == Variable("attendee")
        assert atom.args == (Variable("id"), Constant("sea.jpg"), Constant(3))

    def test_location_constants(self):
        atom = Atom.of("r", "p", "$x")
        assert atom.relation_constant() == "r"
        assert atom.peer_constant() == "p"
        open_atom = Atom.of("$R", "$P")
        assert open_atom.relation_constant() is None
        assert open_atom.peer_constant() is None

    def test_location_must_be_string_constant_or_variable(self):
        with pytest.raises(SchemaError):
            Atom.of(3, "p")
        with pytest.raises(SchemaError):
            Atom.of("r", 3)

    def test_ground_checks(self):
        assert Atom.of("r", "p", 1, "x").is_ground()
        assert not Atom.of("r", "p", "$x").is_ground()
        assert Atom.of("r", "$p", 1).is_ground_location() is False

    def test_variables_in_order_of_first_occurrence(self):
        atom = Atom.of("$R", "$P", "$x", "$R", "$y")
        assert [v.name for v in atom.variables()] == ["R", "P", "x", "y"]
        assert [v.name for v in atom.argument_variables()] == ["x", "R", "y"]
        assert [v.name for v in atom.location_variables()] == ["R", "P"]

    def test_substitute(self):
        atom = Atom.of("pictures", "$a", "$id")
        bound = atom.substitute({Variable("a"): Constant("alice")})
        assert bound.peer_constant() == "alice"
        assert bound.args == (Variable("id"),)

    def test_negate_and_positive(self):
        atom = Atom.of("r", "p", "$x")
        assert atom.negate().negated
        assert atom.negate().positive() == atom

    def test_to_fact_requires_ground(self):
        assert Atom.of("r", "p", 1).to_fact().values == (1,)
        with pytest.raises(SchemaError):
            Atom.of("r", "p", "$x").to_fact()

    def test_str_rendering(self):
        atom = Atom.of("pictures", "$a", "$id", "x", negated=True)
        assert str(atom) == 'not pictures@$a($id, "x")'

    def test_parse_head_constructor(self):
        atom = Atom.parse_head("rate@alice", "$id", 5)
        assert atom.relation_constant() == "rate"
        assert atom.peer_constant() == "alice"
        with pytest.raises(SchemaError):
            Atom.parse_head("rate", "$id")


class TestRuleSafety:
    def test_simple_safe_rule(self):
        rule = Rule(
            head=Atom.of("view", "alice", "$x"),
            body=(Atom.of("base", "alice", "$x"),),
        )
        rule.check_safety()
        assert rule.is_safe()

    def test_head_variable_must_be_bound(self):
        rule = Rule(
            head=Atom.of("view", "alice", "$x", "$y"),
            body=(Atom.of("base", "alice", "$x"),),
        )
        with pytest.raises(SafetyError):
            rule.check_safety()

    def test_peer_variable_must_be_bound_before_use(self):
        # The paper's attendee-pictures rule: $attendee is bound by the first literal.
        good = Rule(
            head=Atom.of("attendeePictures", "Jules", "$id"),
            body=(
                Atom.of("selectedAttendee", "Jules", "$attendee"),
                Atom.of("pictures", "$attendee", "$id"),
            ),
        )
        good.check_safety()
        # Swapping the body literals breaks left-to-right safety.
        bad = Rule(
            head=Atom.of("attendeePictures", "Jules", "$id"),
            body=(
                Atom.of("pictures", "$attendee", "$id"),
                Atom.of("selectedAttendee", "Jules", "$attendee"),
            ),
        )
        with pytest.raises(SafetyError):
            bad.check_safety()

    def test_negated_variables_must_be_bound(self):
        bad = Rule(
            head=Atom.of("view", "p", "$x"),
            body=(
                Atom.of("base", "p", "$x"),
                Atom.of("banned", "p", "$y", negated=True),
            ),
        )
        with pytest.raises(SafetyError):
            bad.check_safety()
        good = Rule(
            head=Atom.of("view", "p", "$x"),
            body=(
                Atom.of("base", "p", "$x"),
                Atom.of("banned", "p", "$x", negated=True),
            ),
        )
        good.check_safety()

    def test_negated_head_rejected(self):
        with pytest.raises(SafetyError):
            Rule(head=Atom.of("view", "p", "$x", negated=True),
                 body=(Atom.of("base", "p", "$x"),))

    def test_empty_body_rejected(self):
        with pytest.raises(SafetyError):
            Rule(head=Atom.of("view", "p", 1), body=())

    def test_relation_variable_binding(self):
        # $protocol is bound by the communicate literal before being used as a
        # relation name in the head; this is checked at head-binding time.
        rule = Rule(
            head=Atom.of("$protocol", "$attendee", "$attendee"),
            body=(
                Atom.of("selectedAttendee", "Jules", "$attendee"),
                Atom.of("communicate", "$attendee", "$protocol"),
            ),
        )
        rule.check_safety()


class TestRuleOperations:
    def make_rule(self) -> Rule:
        return Rule(
            head=Atom.of("attendeePictures", "Jules", "$id", "$name"),
            body=(
                Atom.of("selectedAttendee", "Jules", "$attendee"),
                Atom.of("pictures", "$attendee", "$id", "$name"),
            ),
            author="Jules",
        )

    def test_variables_in_order(self):
        rule = self.make_rule()
        assert [v.name for v in rule.variables()] == ["attendee", "id", "name"]

    def test_is_local_and_body_peers(self):
        rule = self.make_rule()
        assert not rule.is_local("Jules")  # second literal has a variable peer
        assert rule.body_peers() == {"Jules"}
        local = Rule(head=Atom.of("v", "p", "$x"), body=(Atom.of("b", "p", "$x"),))
        assert local.is_local("p")

    def test_substitute_keeps_metadata(self):
        rule = self.make_rule()
        bound = rule.substitute({Variable("attendee"): Constant("Emilien")})
        assert bound.rule_id == rule.rule_id
        assert bound.author == "Jules"
        assert bound.body[1].peer_constant() == "Emilien"

    def test_with_body_records_origin(self):
        rule = self.make_rule()
        delegated = rule.with_body(rule.body[1:], author="Jules")
        assert delegated.origin == rule.rule_id
        assert len(delegated.body) == 1

    def test_rename_apart(self):
        rule = self.make_rule()
        renamed = rule.rename_apart("_1")
        assert all(v.name.endswith("_1") for v in renamed.variables())
        assert renamed.rule_id == rule.rule_id

    def test_canonical_key_ignores_variable_names_and_metadata(self):
        rule_a = Rule(head=Atom.of("v", "p", "$x"), body=(Atom.of("b", "p", "$x"),))
        rule_b = Rule(head=Atom.of("v", "p", "$other"), body=(Atom.of("b", "p", "$other"),),
                      author="someone")
        assert rule_a.canonical_key() == rule_b.canonical_key()
        different = Rule(head=Atom.of("v", "p", "$x"), body=(Atom.of("c", "p", "$x"),))
        assert rule_a.canonical_key() != different.canonical_key()

    def test_str_rendering(self):
        rule = self.make_rule()
        assert ":-" in str(rule)
        assert "pictures@$attendee" in str(rule)

    def test_fresh_rule_ids_are_unique(self):
        assert fresh_rule_id() != fresh_rule_id()
        assert fresh_rule_id("deleg").startswith("deleg-")
