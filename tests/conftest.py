"""Shared fixtures of the test suite."""

from __future__ import annotations

import pytest

from repro.core.engine import WebdamLogEngine
from repro.runtime.system import WebdamLogSystem
from repro.wepic.scenario import build_demo_scenario
from repro.workloads.generator import WorkloadConfig, generate_workload


@pytest.fixture
def engine() -> WebdamLogEngine:
    """A bare engine for the peer ``alice``."""
    return WebdamLogEngine("alice")


@pytest.fixture
def two_peer_system() -> WebdamLogSystem:
    """A two-peer system (alice, bob) with default settings."""
    system = WebdamLogSystem()
    system.add_peer("alice")
    system.add_peer("bob")
    return system


@pytest.fixture
def demo_scenario():
    """The paper's three-peer demo scenario with 2 pictures per attendee."""
    return build_demo_scenario(pictures_per_attendee=2)


@pytest.fixture
def controlled_scenario():
    """The demo scenario with control of delegation enabled (pending queues)."""
    return build_demo_scenario(pictures_per_attendee=2, control_delegation=True)


@pytest.fixture
def small_workload():
    """A small deterministic workload (3 attendees, 2 pictures each)."""
    config = WorkloadConfig(attendees=3, pictures_per_attendee=2,
                            ratings_per_attendee=2, comments_per_attendee=1,
                            tags_per_attendee=1, seed=11)
    return generate_workload(config)
