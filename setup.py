"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
the package can also be installed in environments where the PEP 517 editable
build path is unavailable (e.g. offline machines without the ``wheel``
package), via ``pip install -e . --no-use-pep517`` or ``python setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of the WebdamLog system (SIGMOD 2013 demo): a distributed "
        "datalog engine with rule delegation, plus the Wepic application."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx"],
)
