#!/usr/bin/env python3
"""STORE-BACKENDS — memory vs SQL-compiled SQLite at million-fact scale.

The paper's peers are personal devices: their fact stores must hold a full
annotation history (the demo's rating board sweeps every rating ever made)
without assuming it fits in RAM.  This benchmark loads one Zipf-skewed
rating relation — ``--facts`` rows of ``rate@hub(user, picture, stars)``
drawn by :class:`~repro.workloads.generator.ZipfSampler`, so a handful of
popular pictures soak up most ratings — into both storage backends and
measures the operations the demo actually performs:

* **load** — bulk insertion plus convergence;
* **selective** — ``--queries`` bound-argument pages ("everything user X
  rated"), each opened, converged, read and closed: hash-index probes on
  the memory backend, one compiled ``SELECT`` with bound parameters on
  SQLite;
* **ranking** — the WEPIC rating board
  (``board($p, avg($s), count($s))``), a full GROUP BY sweep: Python
  aggregation on memory, pushed-down ``GROUP BY`` on SQLite;
* **cold open** — the time back to the first answer from nothing: SQLite
  reopens its database file and re-converges; memory must re-insert every
  fact (the RAM regime has no persistence — that asymmetry is the point).

Both backends must return identical answers everywhere; the headline
figures are the selective ratio (acceptance: SQLite within 3x of memory)
and the cold-open ratio.

Run as a script (also smoke-run in CI at a reduced scale)::

    PYTHONPATH=src python benchmarks/bench_store_backends.py

Writes ``BENCH_store_backends.json`` next to this file (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import random
import tempfile
import time
from pathlib import Path

from repro.api import system
from repro.bench.harness import bench_metadata
from repro.bench.reporting import format_table
from repro.core.facts import Fact
from repro.workloads.generator import ZipfSampler

HUB = "hub"
PROGRAM = f"collection extensional persistent rate@{HUB}(user, picture, stars);"


def generate_facts(facts: int, users: int, pictures: int, zipf: float,
                   seed: int):
    """The rating relation: users round-robin, pictures Zipf-skewed."""
    sampler = ZipfSampler(pictures, zipf, random.Random(seed))
    rows = []
    for index in range(facts):
        rows.append(Fact("rate", HUB, (f"user{index % users:05d}",
                                       sampler.sample(),
                                       index % 5 + 1)))
    return rows


def build_deployment(backend: str, path=None):
    builder = system()
    if backend == "sqlite":
        builder = builder.storage("sqlite", path=str(path))
    else:
        builder = builder.storage("memory")
    return builder.peer(HUB).program(PROGRAM).done().build()


def load(deployment, rows, batched: bool = False):
    """Load the relation, per-fact or through the batched bulk-load path.

    ``batched=True`` goes through :meth:`PeerHandle.insert_many`, which the
    SQLite backend turns into a single ``executemany`` per table instead of
    one statement per fact.  Returns ``(total_seconds, insert_seconds)`` —
    the insert time isolates the storage write path from the convergence
    cost, which is identical for both loading styles.
    """
    start = time.perf_counter()
    hub = deployment.peer(HUB)
    if batched:
        hub.insert_many(rows)
    else:
        for fact in rows:
            hub.insert(fact)
    inserted = time.perf_counter()
    deployment.converge()
    return time.perf_counter() - start, inserted - start


def selective_queries(deployment, users: int, queries: int):
    """Bound-argument pages: one user's full rating history per query."""
    answers = []
    start = time.perf_counter()
    for index in range(queries):
        user = f"user{(index * 37) % users:05d}"
        view = deployment.query(
            HUB, f'picks($p, $s) :- rate@{HUB}("{user}", $p, $s)')
        deployment.converge()
        answers.append(sorted(view.rows()))
        view.close()
    return answers, time.perf_counter() - start


def ranking_view(deployment):
    """The WEPIC rating board: per-picture average and count."""
    start = time.perf_counter()
    view = deployment.query(
        HUB, f"board($p, avg($s), count($s)) :- rate@{HUB}($u, $p, $s)")
    deployment.converge()
    answer = sorted(view.rows())
    view.close()
    return answer, time.perf_counter() - start


def run_backend(backend: str, rows, users: int, queries: int, path=None,
                bulk_path=None):
    deployment = build_deployment(backend, path)
    load_seconds, insert_seconds = load(deployment, rows)

    # Batched load: the same rows through insert_many on a fresh deployment
    # (executemany on SQLite).  Must produce the same first selective page.
    bulk = build_deployment(backend, bulk_path)
    bulk_load_seconds, bulk_insert_seconds = load(bulk, rows, batched=True)
    bulk_first, _ = selective_queries(bulk, users, 1)
    bulk.close()
    selective, selective_seconds = selective_queries(deployment, users, queries)
    ranking, ranking_seconds = ranking_view(deployment)
    counters = dict(
        deployment.runtime.peer(HUB).engine.state.backend.counters or {}) \
        if backend == "sqlite" else {}
    deployment.close()

    # Cold open: time to the first selective answer starting from nothing.
    start = time.perf_counter()
    if backend == "sqlite":
        reopened = (system().storage("sqlite", path=str(path))
                    .peer(HUB).build())
    else:
        reopened = build_deployment("memory")
        hub = reopened.peer(HUB)
        for fact in rows:  # no durability: the RAM regime reloads everything
            hub.insert(fact)
    reopened.converge()
    first_answer, _ = selective_queries(reopened, users, 1)
    cold_open_seconds = time.perf_counter() - start
    reopened.close()

    if bulk_first != selective[:1]:
        raise AssertionError(
            f"{backend}: batched load diverged from per-fact load on the "
            "first selective page")

    return {
        "backend": backend,
        "load_seconds": round(load_seconds, 4),
        "insert_seconds": round(insert_seconds, 4),
        "bulk_load_seconds": round(bulk_load_seconds, 4),
        "bulk_insert_seconds": round(bulk_insert_seconds, 4),
        "bulk_load_speedup": round(insert_seconds / bulk_insert_seconds, 3)
        if bulk_insert_seconds else float("inf"),
        "selective_seconds": round(selective_seconds, 4),
        "ranking_seconds": round(ranking_seconds, 4),
        "cold_open_seconds": round(cold_open_seconds, 4),
        "counters": counters,
    }, selective, ranking, first_answer


def run_benchmark(facts: int, users: int, pictures: int, queries: int,
                  zipf: float, seed: int, workdir: Path) -> dict:
    rows = generate_facts(facts, users, pictures, zipf, seed)
    results = {}
    answers = {}
    for backend in ("memory", "sqlite"):
        path = workdir / backend
        path.mkdir(parents=True, exist_ok=True)
        bulk_path = workdir / f"{backend}_bulk"
        bulk_path.mkdir(parents=True, exist_ok=True)
        results[backend], selective, ranking, first = run_backend(
            backend, rows, users, queries, path, bulk_path)
        answers[backend] = (selective, ranking, first)

    identical = answers["memory"] == answers["sqlite"]
    if not identical:
        raise AssertionError(
            "backend divergence: memory and sqlite returned different answers")
    mem, sql = results["memory"], results["sqlite"]
    ratio = (sql["selective_seconds"] / mem["selective_seconds"]
             if mem["selective_seconds"] else float("inf"))
    cold_ratio = (mem["cold_open_seconds"] / sql["cold_open_seconds"]
                  if sql["cold_open_seconds"] else float("inf"))
    return {
        "experiment": "STORE-BACKENDS",
        "metadata": bench_metadata(repeats=1, parameters={
            "facts": facts, "users": users, "pictures": pictures,
            "queries": queries, "zipf_exponent": zipf, "seed": seed,
            "backends": ["memory", "sqlite"],
        }),
        "memory": mem,
        "sqlite": sql,
        "answers_identical": True,
        "ranking_groups": len(answers["memory"][1]),
        "selective_ratio_sqlite_over_memory": round(ratio, 3),
        "cold_open_speedup_sqlite": round(cold_ratio, 3),
        "bulk_load_speedup_sqlite": sql["bulk_load_speedup"],
        "compiled_statements": sql["counters"].get("compiled_statements", 0),
        "aggregate_pushdowns": sql["counters"].get("aggregate_pushdowns", 0),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--facts", type=int, default=1_000_000,
                        help="rating facts to load (default 1,000,000)")
    parser.add_argument("--users", type=int, default=500,
                        help="distinct raters (default 500)")
    parser.add_argument("--pictures", type=int, default=2000,
                        help="distinct pictures, Zipf-ranked (default 2000)")
    parser.add_argument("--queries", type=int, default=40,
                        help="selective bound-argument pages (default 40)")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="popularity exponent of the picture choice")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workdir", type=Path, default=None,
                        help="directory for the sqlite files (default: temp)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "BENCH_store_backends.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        result = run_benchmark(args.facts, args.users, args.pictures,
                               args.queries, args.zipf, args.seed, args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="bench_store_") as tmp:
            result = run_benchmark(args.facts, args.users, args.pictures,
                                   args.queries, args.zipf, args.seed,
                                   Path(tmp))

    columns = ["backend", "load (s)", "bulk load (s)", "selective (s)",
               "ranking (s)", "cold open (s)"]
    rows = [[name, result[name]["load_seconds"],
             result[name]["bulk_load_seconds"],
             result[name]["selective_seconds"],
             result[name]["ranking_seconds"],
             result[name]["cold_open_seconds"]]
            for name in ("memory", "sqlite")]
    print(format_table(columns, rows, title="[STORE-BACKENDS] "
                       f"{args.facts} facts, {args.queries} selective pages"))
    print(f"selective ratio sqlite/memory: "
          f"{result['selective_ratio_sqlite_over_memory']}x "
          f"(acceptance: <= 3x); cold-open speedup: "
          f"{result['cold_open_speedup_sqlite']}x; "
          f"bulk-load speedup (sqlite): "
          f"{result['bulk_load_speedup_sqlite']}x; "
          f"compiled statements: {result['compiled_statements']}; "
          f"answers identical: {result['answers_identical']}")

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
