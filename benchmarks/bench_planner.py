#!/usr/bin/env python3
"""PLANNER — cost-based body ordering and magic-set demand transformation.

WebdamLog peers evaluate rule bodies left-to-right, which makes the written
literal order a (hidden) query plan.  ``repro.planner`` removes that foot-gun:
it reorders each local body prefix by estimated cardinality and, for bound-head
queries, installs magic/demand predicates so only demand-reachable facts are
derived.  This benchmark measures both against the ``REPRO_PLANNER=off``
baseline on the memory backend (SQLite pushes whole bodies into one compiled
``SELECT``, which hides the join order from the substitution counter):

* **ordering** — a selective bound-argument join over a ``--facts``-row
  (default 100,000) extensional rating relation: the written order scans the
  big relation first; the planner probes the tiny bound relation first and
  uses hash indexes for the rest.  Acceptance: >= 10x fewer
  ``substitutions_explored``, identical answers, byte-identical relation
  snapshots.
* **explain-identity** — the same join at a provenance-enabled deployment at
  reduced scale: every answer's ``explain()`` lineage must be identical with
  the planner on and off (the planner normalises provenance support back to
  written order).
* **magic** — a recursive reachability query bound to one source over a
  ``--chain``-link chain: the baseline derives all-pairs reachability, the
  demand transformation derives only facts reachable from the bound constant.
  Identical answers required; the chain is kept small because the baseline
  is cubic.

Run as a script (also smoke-run in CI at a reduced scale)::

    PYTHONPATH=src python benchmarks/bench_planner.py

Writes ``BENCH_planner.json`` next to this file (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.api import system
from repro.bench.harness import bench_metadata
from repro.bench.reporting import format_table

HUB = "hub"
RATINGS_PROGRAM = (
    f"collection extensional persistent rated@{HUB}(user, picture, stars);\n"
    f"collection extensional persistent vip@{HUB}(user);\n"
)
CHAIN_PROGRAM = f"collection extensional persistent link@{HUB}(src, dst);\n"

ORDERING_QUERY = (
    f"picks($u, $p, $s) :- rated@{HUB}($u, $p, $s), vip@{HUB}($u)"
)
MAGIC_QUERY = (
    f"reach($x, $y) :- link@{HUB}($x, $y); "
    f"reach($x, $z) :- reach($x, $y), link@{HUB}($y, $z); "
    f'ans($y) :- reach("n0", $y)'
)


def rating_facts(facts: int, users: int, pictures: int, vips: int, seed: int):
    rng = random.Random(seed)
    rows = [f'rated@{HUB}("user{rng.randrange(users):05d}", '
            f'"pic{rng.randrange(pictures):05d}", {index % 5 + 1})'
            for index in range(facts)]
    rows += [f'vip@{HUB}("user{index * 7 % users:05d}")'
             for index in range(vips)]
    return rows


def chain_facts(links: int):
    return [f'link@{HUB}("n{index}", "n{index + 1}")' for index in range(links)]


def build(planner: str, program: str, provenance: bool = False):
    builder = system().storage("memory").planner(planner)
    if provenance:
        builder = builder.provenance()
    return builder.peer(HUB).program(program).done().build()


def run_query(planner: str, program: str, rows, query: str,
              provenance: bool = False):
    """Load, open the view, converge; return (answers, metrics, deployment, view)."""
    deployment = build(planner, program, provenance)
    hub = deployment.peer(HUB)
    hub.insert_many(rows)
    deployment.converge()
    engine = deployment.runtime.peer(HUB).engine
    before = engine.eval_counters.get("substitutions_explored", 0)
    start = time.perf_counter()
    view = deployment.query(HUB, query)
    deployment.converge()
    answers = sorted(view.rows())
    seconds = time.perf_counter() - start
    explored = engine.eval_counters.get("substitutions_explored", 0) - before
    metrics = {
        "planner": planner,
        "substitutions_explored": explored,
        "seconds": round(seconds, 4),
        "answers": len(answers),
        "plans_computed": engine.eval_counters.get("plans_computed", 0),
        "plans_reordered": engine.eval_counters.get("plans_reordered", 0),
    }
    return answers, metrics, deployment, view


def user_snapshot(deployment, view_name=None):
    """Deterministic snapshot of every user-visible relation at the hub.

    The view's own relations (and the planner's magic/demand machinery)
    are deployment-private — their names embed the per-system view counter
    — so they are excluded; answer identity is asserted separately.
    """
    hub = deployment.peer(HUB)
    snapshot = {}
    for relation, facts in sorted(hub.snapshot().items()):
        if relation.startswith(("_view", "_magic_", "_demand_")):
            continue
        snapshot[relation] = tuple(sorted(str(fact) for fact in facts))
    return snapshot


def scenario_ordering(facts, users, pictures, vips, seed):
    rows = rating_facts(facts, users, pictures, vips, seed)
    baseline_answers, baseline, dep_off, view_off = run_query(
        "off", RATINGS_PROGRAM, rows, ORDERING_QUERY)
    planned_answers, planned, dep_on, view_on = run_query(
        "order", RATINGS_PROGRAM, rows, ORDERING_QUERY)

    if baseline_answers != planned_answers:
        raise AssertionError("ordering: planner changed the answers")
    if user_snapshot(dep_off) != user_snapshot(dep_on):
        raise AssertionError("ordering: planner changed the fixpoint")
    plan = view_on.plan()
    view_off.close(); view_on.close()
    dep_off.close(); dep_on.close()

    reduction = (baseline["substitutions_explored"]
                 / max(1, planned["substitutions_explored"]))
    if reduction < 10:
        raise AssertionError(
            f"ordering: substitution reduction {reduction:.1f}x < 10x")
    return {
        "off": baseline,
        "order": planned,
        "substitutions_reduction": round(reduction, 1),
        "answers_identical": True,
        "fixpoint_identical": True,
        "plan": plan,
    }


def scenario_explain_identity(facts, users, pictures, vips, seed):
    rows = rating_facts(facts, users, pictures, vips, seed)
    lineages = {}
    for planner in ("off", "order"):
        answers, _, deployment, view = run_query(
            planner, RATINGS_PROGRAM, rows, ORDERING_QUERY, provenance=True)
        hub = deployment.peer(HUB)
        lineages[planner] = tuple(
            str(hub.explain(fact)) for fact in view.sorted())
        view.close()
        deployment.close()
    if lineages["off"] != lineages["order"]:
        raise AssertionError("explain(): planner changed answer lineage")
    return {"answers_explained": len(lineages["off"]),
            "lineage_identical": True}


def scenario_magic(chain):
    rows = chain_facts(chain)
    baseline_answers, baseline, dep_off, view_off = run_query(
        "off", CHAIN_PROGRAM, rows, MAGIC_QUERY)
    magic_answers, magic, dep_magic, view_magic = run_query(
        "magic", CHAIN_PROGRAM, rows, MAGIC_QUERY)

    if baseline_answers != magic_answers:
        raise AssertionError("magic: demand transformation changed the answers")
    if user_snapshot(dep_off) != user_snapshot(dep_magic):
        raise AssertionError("magic: demand transformation changed the "
                             "user-visible fixpoint")
    magic_relations = tuple(view_magic.plan()["magic_relations"])
    view_off.close(); view_magic.close()
    dep_off.close(); dep_magic.close()

    if not magic_relations:
        raise AssertionError("magic: no magic predicate was installed")
    reduction = (baseline["substitutions_explored"]
                 / max(1, magic["substitutions_explored"]))
    return {
        "off": baseline,
        "magic": magic,
        "substitutions_reduction": round(reduction, 1),
        "answers_identical": True,
        "magic_relations": magic_relations,
    }


def run_benchmark(facts, users, pictures, vips, explain_facts, chain, seed):
    ordering = scenario_ordering(facts, users, pictures, vips, seed)
    explain = scenario_explain_identity(explain_facts, users, pictures,
                                        vips, seed)
    magic = scenario_magic(chain)
    return {
        "experiment": "PLANNER",
        "metadata": bench_metadata(repeats=1, parameters={
            "facts": facts, "users": users, "pictures": pictures,
            "vips": vips, "explain_facts": explain_facts,
            "chain": chain, "seed": seed, "backend": "memory",
        }),
        "ordering": ordering,
        "explain_identity": explain,
        "magic": magic,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--facts", type=int, default=100_000,
                        help="rating facts for the ordering scenario "
                        "(default 100,000)")
    parser.add_argument("--users", type=int, default=2000)
    parser.add_argument("--pictures", type=int, default=500)
    parser.add_argument("--vips", type=int, default=5,
                        help="bound-side cardinality of the selective join")
    parser.add_argument("--explain-facts", type=int, default=5000,
                        help="scale of the provenance-enabled explain check")
    parser.add_argument("--chain", type=int, default=48,
                        help="links in the magic-scenario chain (the off "
                        "baseline is cubic in this)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "BENCH_planner.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    result = run_benchmark(args.facts, args.users, args.pictures, args.vips,
                           args.explain_facts, args.chain, args.seed)

    columns = ["scenario", "mode", "substitutions", "seconds", "answers"]
    rows = []
    for scenario, modes in (("ordering", ("off", "order")),
                            ("magic", ("off", "magic"))):
        for mode in modes:
            metrics = result[scenario][mode]
            rows.append([scenario, mode, metrics["substitutions_explored"],
                         metrics["seconds"], metrics["answers"]])
    print(format_table(columns, rows, title="[PLANNER] "
                       f"{args.facts} rating facts, {args.chain}-link chain"))
    print(f"ordering reduction: "
          f"{result['ordering']['substitutions_reduction']}x "
          f"(acceptance: >= 10x); magic reduction: "
          f"{result['magic']['substitutions_reduction']}x; "
          f"explain lineage identical over "
          f"{result['explain_identity']['answers_explained']} answers")

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
