"""SCEN-CUST — "Customizing rules".

Replacing the attendee-pictures rule with the rating-filtered variant
(``rate@$owner($id, 5)``) changes the contents of the *Attendee pictures*
frame.  The benchmark measures (a) the cost of the rule swap itself — the
delegations that must be retracted and re-installed (the delegation re-issue
ablation called out in DESIGN.md) — and (b) that the filtered view size
matches the number of 5-rated pictures.
"""

import pytest

from benchmarks.conftest import record_counters
from repro.wepic.scenario import build_demo_scenario


def build_rated_scenario(pictures_per_attendee: int, five_star_every: int = 3):
    scenario = build_demo_scenario(attendees=("Emilien", "Jules"),
                                   pictures_per_attendee=pictures_per_attendee,
                                   with_facebook=False, publish_to_sigmod=False)
    jules = scenario.app("Jules")
    emilien = scenario.app("Emilien")
    five_starred = 0
    for index, picture in enumerate(emilien.local_pictures()):
        rating = 5 if index % five_star_every == 0 else 3
        if rating == 5:
            five_starred += 1
        emilien.rate_picture(picture.picture_id, rating)
    jules.select_attendee("Emilien")
    scenario.run(max_rounds=60)
    return scenario, jules, emilien, five_starred


@pytest.mark.parametrize("pictures", [6, 24])
def test_scen_cust_rating_filter(benchmark, report, pictures):
    def run():
        scenario, jules, _emilien, five_starred = build_rated_scenario(pictures)
        unfiltered = len(jules.attendee_pictures())
        messages_before = scenario.stats().messages_sent
        jules.restrict_to_rating(5)
        scenario.run(max_rounds=60)
        swap_messages = scenario.stats().messages_sent - messages_before
        filtered = len(jules.attendee_pictures())
        return unfiltered, filtered, five_starred, swap_messages

    unfiltered, filtered, five_starred, swap_messages = benchmark.pedantic(
        run, rounds=2, iterations=1)
    assert unfiltered == pictures
    assert filtered == five_starred
    record_counters(benchmark, unfiltered=unfiltered, filtered=filtered,
                    swap_messages=swap_messages)
    report("SCEN-CUST", ["pictures", "view before filter", "5-star pictures",
                         "view after filter", "messages for the rule swap"],
           [[pictures, unfiltered, five_starred, filtered, swap_messages]])


def test_scen_cust_rule_swap_churn(benchmark, report):
    """Delegation churn of repeatedly customising and resetting the rule."""

    def run():
        scenario, jules, emilien, _ = build_rated_scenario(8)
        installs = retracts = 0
        for _round in range(3):
            jules.restrict_to_rating(5)
            scenario.run(max_rounds=40)
            jules.reset_attendee_pictures_rule()
            scenario.run(max_rounds=40)
        stats = scenario.stats()
        installs = stats.by_kind.get("DelegationInstallMessage", 0)
        retracts = stats.by_kind.get("DelegationRetractMessage", 0)
        return installs, retracts, len(jules.attendee_pictures())

    installs, retracts, final_view = benchmark.pedantic(run, rounds=2, iterations=1)
    # Each swap retracts the old delegation and installs the new one.
    assert installs >= 6
    assert retracts >= 6
    assert final_view == 8
    record_counters(benchmark, installs=installs, retracts=retracts)
    report("SCEN-CUST (churn)", ["rule swaps", "delegation installs", "delegation retracts",
                                 "final view size"],
           [[6, installs, retracts, final_view]])
