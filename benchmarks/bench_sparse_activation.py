#!/usr/bin/env python3
"""SPARSE-ACTIVATION — lockstep vs reactive scheduling on a mostly-idle network.

The WebdamLog model is defined over autonomous peers, but the historical
runtime drove every peer in global lockstep rounds: a 50-peer deployment
paid 50 stage executions per round even when only two peers were talking.
This benchmark measures exactly that regime — ``--peers`` peers of which
only two ("chatty") exchange facts in ``--waves`` request/response waves —
and reports, per scheduler:

* total **stage executions** (the event-driven win: reactive activates only
  peers with pending inputs or dirty state),
* scheduling cycles and transport messages (identical across schedulers —
  the fixpoint and traffic do not change, only who gets woken up),
* wall-clock time.

Run as a script (also smoke-run in CI)::

    PYTHONPATH=src python benchmarks/bench_sparse_activation.py

Writes ``BENCH_sparse_activation.json`` next to this file (see ``--output``).
The fixpoints of both runs are compared fact-for-fact before reporting.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.api import system
from repro.bench.harness import bench_metadata
from repro.bench.reporting import format_table

CHATTY_A = "chatty_a"
CHATTY_B = "chatty_b"

PROGRAM_A = f"""
collection extensional persistent ping@{CHATTY_A}(n);
collection extensional persistent ack@{CHATTY_A}(n);
rule pong@{CHATTY_B}($n) :- ping@{CHATTY_A}($n);
"""

PROGRAM_B = f"""
collection extensional persistent pong@{CHATTY_B}(n);
rule ack@{CHATTY_A}($n) :- pong@{CHATTY_B}($n);
"""


def build_deployment(peers: int, scheduler: str):
    """``peers`` total peers; two chatty ones ping-pong, the rest sit idle."""
    builder = (system()
               .scheduler(scheduler)
               .peer(CHATTY_A).program(PROGRAM_A)
               .peer(CHATTY_B).program(PROGRAM_B))
    for index in range(peers - 2):
        name = f"idle{index:03d}"
        builder.peer(name).program(
            f"collection extensional persistent notes@{name}(text);\n"
            f'fact notes@{name}("idle");\n'
        )
    return builder.build()


def run_workload(peers: int, waves: int, scheduler: str):
    """Drive ``waves`` request/response exchanges; return (deployment, metrics)."""
    deployment = build_deployment(peers, scheduler)
    chatty = deployment.peer(CHATTY_A)
    stages = 0
    cycles = 0
    start = time.perf_counter()
    summary = deployment.converge()
    stages += summary.total_stages()
    cycles += summary.round_count
    for wave in range(waves):
        chatty.insert(f"ping@{CHATTY_A}({wave})")
        summary = deployment.converge()
        stages += summary.total_stages()
        cycles += summary.round_count
    elapsed = time.perf_counter() - start
    acks = len(deployment.query(CHATTY_A, "ack"))
    metrics = {
        "scheduler": scheduler,
        "peers": peers,
        "waves": waves,
        "stage_executions": stages,
        "cycles": cycles,
        "messages": deployment.stats.messages_sent,
        "acks": acks,
        "elapsed_seconds": round(elapsed, 6),
    }
    return deployment, metrics


def run_benchmark(peers: int, waves: int) -> dict:
    lockstep_system, lockstep = run_workload(peers, waves, "lockstep")
    reactive_system, reactive = run_workload(peers, waves, "reactive")

    if lockstep_system.snapshot() != reactive_system.snapshot():
        raise AssertionError(
            "scheduler divergence: lockstep and reactive reached different fixpoints"
        )
    if lockstep["acks"] != waves or reactive["acks"] != waves:
        raise AssertionError(
            f"workload incomplete: expected {waves} acks, got "
            f"lockstep={lockstep['acks']} reactive={reactive['acks']}"
        )

    ratio = (lockstep["stage_executions"] / reactive["stage_executions"]
             if reactive["stage_executions"] else float("inf"))
    return {
        "experiment": "SPARSE-ACTIVATION",
        "metadata": bench_metadata(repeats=1,
                                   parameters={"peers": peers, "waves": waves}),
        "lockstep": lockstep,
        "reactive": reactive,
        "stage_reduction_factor": round(ratio, 2),
        "fixpoints_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--peers", type=int, default=50,
                        help="total number of peers (default 50)")
    parser.add_argument("--waves", type=int, default=5,
                        help="request/response waves between the chatty pair")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "BENCH_sparse_activation.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    result = run_benchmark(args.peers, args.waves)

    columns = ["scheduler", "stage executions", "cycles", "messages",
               "elapsed (s)"]
    rows = [
        [m["scheduler"], m["stage_executions"], m["cycles"], m["messages"],
         m["elapsed_seconds"]]
        for m in (result["lockstep"], result["reactive"])
    ]
    print(format_table(columns, rows, title="[SPARSE-ACTIVATION] "
                       f"{args.peers} peers, 2 chatty, {args.waves} waves"))
    print(f"stage reduction: {result['stage_reduction_factor']}x "
          f"(fixpoints identical: {result['fixpoints_identical']})")

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
