"""DELEG-VS-CENT — delegation versus centralising the data.

The introduction argues for specifying distributed data-management tasks *in
place*, "without centralizing his data to a single provider".  This ablation
compares, for the attendee-pictures query, two strategies:

* **delegation** (the WebdamLog way): the viewer delegates the partially
  instantiated rule to each *selected* attendee, and only the matching
  pictures travel;
* **centralised**: every attendee ships every picture to a central peer
  (the publish-to-sigmod rule), and the viewer's view is computed there.

The shape to reproduce: when the viewer is interested in a small subset of
attendees, delegation moves far fewer payload items than centralisation; as
the selected fraction approaches 1 the two converge (the crossover).
"""

import pytest

from benchmarks.conftest import record_counters
from repro.core.facts import Fact
from repro.wepic.scenario import build_demo_scenario

PEERS = 8
PICTURES = 4


def run_delegation(selected_count: int):
    names = [f"peer{i}" for i in range(PEERS)]
    scenario = build_demo_scenario(attendees=names, pictures_per_attendee=PICTURES,
                                   with_facebook=False, publish_to_sigmod=False)
    viewer = scenario.app(names[0])
    for other in names[1:1 + selected_count]:
        viewer.select_attendee(other)
    summary = scenario.run(max_rounds=100)
    stats = scenario.stats()
    return len(viewer.attendee_pictures()), stats.payload_items, summary.round_count


def run_centralized(selected_count: int):
    names = [f"peer{i}" for i in range(PEERS)]
    scenario = build_demo_scenario(attendees=names, pictures_per_attendee=PICTURES,
                                   with_facebook=False, publish_to_sigmod=True)
    # The central sigmod peer computes the view for the viewer.
    sigmod = scenario.sigmod_peer
    selected = names[1:1 + selected_count]
    for other in selected:
        sigmod.insert_fact(Fact("selectedAttendee", "sigmod", (other,)))
    sigmod.add_rule("attendeeView@sigmod($id, $n, $a, $d) :- "
                    "selectedAttendee@sigmod($a), pictures@sigmod($id, $n, $a, $d)")
    summary = scenario.run(max_rounds=100)
    stats = scenario.stats()
    view = len(sigmod.query("attendeeView"))
    return view, stats.payload_items, summary.round_count


@pytest.mark.parametrize("selected", [1, 3, 7])
def test_deleg_vs_centralized(benchmark, report, selected):
    def run():
        return run_delegation(selected), run_centralized(selected)

    (deleg_view, deleg_payload, deleg_rounds), \
        (cent_view, cent_payload, cent_rounds) = benchmark.pedantic(run, rounds=2,
                                                                    iterations=1)
    expected_view = selected * PICTURES
    assert deleg_view == expected_view
    assert cent_view == expected_view
    # Centralisation always ships every picture of every peer; delegation ships
    # only the selected attendees' pictures plus the delegation machinery
    # (rule installs and their schemas).  For selective queries delegation
    # moves far less; once (almost) everything is selected the machinery
    # overhead makes centralisation competitive — that crossover is the
    # expected shape and is recorded in EXPERIMENTS.md.
    if selected <= 3:
        assert deleg_payload < cent_payload
    if selected == 1:
        assert deleg_payload * 2 < cent_payload
    record_counters(benchmark, delegation_payload=deleg_payload,
                    centralized_payload=cent_payload)
    report("DELEG-VS-CENT",
           ["selected peers (of 7)", "view size",
            "payload items (delegation)", "payload items (centralised)",
            "rounds (delegation)", "rounds (centralised)"],
           [[selected, expected_view, deleg_payload, cent_payload,
             deleg_rounds, cent_rounds]])
