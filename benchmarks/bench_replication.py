#!/usr/bin/env python3
"""REPLICATION — delta envelopes vs full-state anti-entropy under loss.

Two experiments around :mod:`repro.replication`:

* **delta vs full state** — 120 peers replicate mixed insert/delete waves
  to their followers over a seeded lossy network with a mid-run churn wave
  (departed followers are forgotten, joiners bootstrap from the current
  live set).  The dotted delta protocol (envelopes + digest/pull/ack
  anti-entropy) is compared against a classic full-state shipper that
  retransmits its entire live set until acknowledged, on the two axes the
  paper's distributed setting cares about: **bytes on the wire** and
  **rounds to convergence** after the last update.
* **gossip at 1000 peers** — the virtual-clock gossip simulator
  (``repro.net.sim``) carries :class:`DeltaEnvelopeMessage` application
  payloads across a 1000-node overlay, reporting delivery coverage and
  propagation latency from the structured event log.

Run as a script (also smoke-run in CI, at reduced scale)::

    PYTHONPATH=src python benchmarks/bench_replication.py

Writes ``BENCH_replication.json`` next to this file (see ``--output``).
Convergence and the delta-protocol byte advantage are asserted before
reporting.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from collections import defaultdict
from pathlib import Path

from dataclasses import dataclass
from typing import FrozenSet

from repro.bench.harness import bench_metadata
from repro.bench.reporting import format_table
from repro.core.facts import Fact
from repro.net.events import NetEventLog
from repro.net.sim import SimulatedGossipNetwork
from repro.replication.dots import Op
from repro.replication.state import ReplicationState
from repro.runtime import wire
from repro.runtime.messages import (
    DeltaEnvelopeMessage,
    FactMessage,
    ReplicationAckMessage,
    ReplicationDigestMessage,
    ReplicationPullMessage,
)


@dataclass(frozen=True)
class FullStateMessage:
    """The baseline's anti-entropy unit: the producer's entire live set."""

    sender: str
    recipient: str
    version: int
    facts: FrozenSet[Fact]

    def to_wire(self) -> dict:
        return {
            "kind": "FullState",
            "sender": self.sender,
            "recipient": self.recipient,
            "version": self.version,
            "facts": [wire.encode_fact(f) for f in sorted(self.facts, key=str)],
        }


def wire_bytes(message) -> int:
    """Size of a message as it would travel: canonical JSON of its wire form."""
    return len(json.dumps(message.to_wire(), sort_keys=True))


def fact(owner: str, index: int) -> Fact:
    return Fact("replica", owner, (owner, index))


class LossyMesh:
    """Seeded per-message loss between directly-connected peers.

    The same instance (hence the same drop schedule position) serves both
    protocols in a comparison run, so neither gets a luckier network.
    """

    def __init__(self, drop: float, seed: int):
        self.rng = random.Random(seed)
        self.drop = drop
        self.mailboxes = defaultdict(list)
        self.bytes_sent = 0
        self.messages_sent = 0
        self.messages_dropped = 0

    def send(self, messages) -> None:
        for message in messages:
            self.messages_sent += 1
            self.bytes_sent += wire_bytes(message)
            if self.rng.random() < self.drop:
                self.messages_dropped += 1
                continue
            self.mailboxes[message.recipient].append(message)

    def deliver(self, name: str):
        due = self.mailboxes.pop(name, [])
        return due

    def forget(self, name: str) -> None:
        self.mailboxes.pop(name, None)

    @property
    def idle(self) -> bool:
        return not any(self.mailboxes.values())


def update_wave(producers, wave: int, inserts: int, deletes: int):
    """The facts each producer gains and loses in one wave (deterministic)."""
    changes = {}
    for name, state in sorted(producers.items()):
        gained = [fact(name, wave * inserts + i) for i in range(inserts)]
        lost = sorted(state["facts"], key=str)[:deletes] if wave else []
        state["facts"].difference_update(lost)
        state["facts"].update(gained)
        changes[name] = (gained, lost)
    return changes


# --------------------------------------------------------------------------- #
# protocol drivers: the same topology, waves, churn and drop schedule
# --------------------------------------------------------------------------- #

def run_delta(topology, waves, churn_plan, drop, seed, max_rounds=4000):
    """The dotted delta protocol end to end over the lossy mesh."""
    mesh = LossyMesh(drop, seed)
    states = {name: ReplicationState(name) for name in topology.producers}
    replicas = {name: ReplicationState(name) for name in topology.followers}

    def deliver(state):
        for message in mesh.deliver(state.peer):
            if isinstance(message, DeltaEnvelopeMessage):
                state.apply_envelope(message)
            elif isinstance(message, ReplicationDigestMessage):
                state.on_digest(message.sender, message.frontier)
            elif isinstance(message, ReplicationPullMessage):
                state.on_pull(message.sender, message.want)
            elif isinstance(message, ReplicationAckMessage):
                state.on_ack(message.sender, message.acked)

    def everyone():
        yield from states.values()
        yield from replicas.values()

    rounds = 0
    last_update_round = 0
    for wave, changes in enumerate(waves):
        for name, (gained, lost) in changes.items():
            state = states[name]
            for follower in topology.followers_of[name]:
                state.encode_outgoing([FactMessage(
                    sender=name, recipient=follower,
                    inserted=frozenset(gained), deleted=frozenset(lost))])
        if wave == churn_plan["at_wave"]:
            for victim in churn_plan["departed"]:
                replicas.pop(victim, None)
                mesh.forget(victim)
                for followers in topology.followers_of.values():
                    if victim in followers:
                        followers.remove(victim)
                for state in states.values():
                    state.drop_channel(victim)
            for joiner, sponsor, live in churn_plan["joined"]:
                replicas[joiner] = ReplicationState(joiner)
                topology.followers_of[sponsor].append(joiner)
                states[sponsor].encode_outgoing([FactMessage(
                    sender=sponsor, recipient=joiner,
                    inserted=frozenset(live), deleted=frozenset())])
        for _ in range(2):  # a couple of rounds of steady-state traffic per wave
            rounds += 1
            for state in everyone():
                deliver(state)
                mesh.send(state.flush())
        last_update_round = rounds

    while rounds < max_rounds and (not mesh.idle or
                                   any(s.needs_attention() for s in everyone())):
        rounds += 1
        for state in everyone():
            deliver(state)
            mesh.send(state.flush())

    converged = mesh.idle and not any(s.needs_attention() for s in everyone())
    replica_sets = {}
    for name, state in replicas.items():
        merged = set()
        for box in state.inboxes.values():
            merged.update(box.visible)
        replica_sets[name] = merged
    return {
        "protocol": "delta",
        "converged": converged,
        "rounds_total": rounds,
        "rounds_after_last_update": rounds - last_update_round,
        "bytes_on_wire": mesh.bytes_sent,
        "messages_sent": mesh.messages_sent,
        "messages_dropped": mesh.messages_dropped,
    }, replica_sets


def run_full_state(topology, waves, churn_plan, drop, seed, digest_interval=4,
                   max_rounds=4000):
    """The classic baseline: ship the entire live set until acknowledged."""
    mesh = LossyMesh(drop, seed)
    producers = {name: {"facts": set(), "version": 0,
                        "acked": defaultdict(int), "last_sent": defaultdict(int)}
                 for name in topology.producers}
    replicas = {name: defaultdict(set) for name in topology.followers}

    rounds = 0
    last_update_round = 0
    acks = defaultdict(list)

    def pump():
        nonlocal rounds
        rounds += 1
        for follower, store in sorted(replicas.items()):
            for message in mesh.deliver(follower):
                store[message.sender] = set(message.facts)
                acks[message.sender].append(ReplicationAckMessage(
                    sender=follower, recipient=message.sender,
                    acked=message.version))
        for name, state in sorted(producers.items()):
            for ack in mesh.deliver(name):
                state["acked"][ack.sender] = max(state["acked"][ack.sender],
                                                 ack.acked)
            for follower in topology.followers_of[name]:
                if follower not in replicas:
                    continue
                if state["acked"][follower] >= state["version"]:
                    continue
                if rounds - state["last_sent"][follower] < digest_interval \
                        and state["last_sent"][follower]:
                    continue
                mesh.send([FullStateMessage(
                    sender=name, recipient=follower,
                    version=state["version"],
                    facts=frozenset(state["facts"]))])
                state["last_sent"][follower] = rounds
        for follower, queued in sorted(acks.items()):
            mesh.send(queued)
        acks.clear()

    for wave, changes in enumerate(waves):
        for name, (gained, lost) in changes.items():
            state = producers[name]
            state["facts"].difference_update(lost)
            state["facts"].update(gained)
            state["version"] += 1
        if wave == churn_plan["at_wave"]:
            for victim in churn_plan["departed"]:
                replicas.pop(victim, None)
                mesh.forget(victim)
            for joiner, sponsor, _live in churn_plan["joined"]:
                replicas[joiner] = defaultdict(set)
                if joiner not in topology.followers_of[sponsor]:
                    topology.followers_of[sponsor].append(joiner)
        for _ in range(2):
            pump()
        last_update_round = rounds

    def settled():
        return all(state["acked"][follower] >= state["version"]
                   for name, state in producers.items()
                   for follower in topology.followers_of[name]
                   if follower in replicas)

    while rounds < max_rounds and (not mesh.idle or not settled()):
        pump()

    replica_sets = {name: set().union(*store.values()) if store else set()
                    for name, store in replicas.items()}
    return {
        "protocol": "full-state",
        "converged": mesh.idle and settled(),
        "rounds_total": rounds,
        "rounds_after_last_update": rounds - last_update_round,
        "bytes_on_wire": mesh.bytes_sent,
        "messages_sent": mesh.messages_sent,
        "messages_dropped": mesh.messages_dropped,
    }, replica_sets


class Topology:
    """Producers, their followers, and the follower fan-out map."""

    def __init__(self, peers: int, fanout: int, seed: int):
        rng = random.Random(seed)
        count = max(4, peers)
        self.producers = [f"prod{i:03d}" for i in range(count // 3)]
        self.followers = [f"repl{i:03d}"
                          for i in range(count - len(self.producers))]
        self.followers_of = {
            name: rng.sample(self.followers, min(fanout, len(self.followers)))
            for name in self.producers
        }


def run_anti_entropy_comparison(peers: int, waves: int, fanout: int,
                                inserts: int, deletes: int, churn: int,
                                drop: float, seed: int) -> dict:
    def topology():
        return Topology(peers, fanout, seed)

    # the wave schedule is deterministic, shared by both protocols
    producer_state = {name: {"facts": set()} for name in topology().producers}
    schedule = [update_wave(producer_state, wave, inserts, deletes)
                for wave in range(waves)]

    base = topology()
    rng = random.Random(seed + 1)
    departed = rng.sample(base.followers, min(churn, len(base.followers) // 2))
    sponsors = rng.sample(base.producers, min(churn, len(base.producers)))
    joined = []
    replay = {name: {"facts": set()} for name in base.producers}
    for changes in schedule[: waves // 2 + 1]:
        for name, (gained, lost) in changes.items():
            replay[name]["facts"].difference_update(lost)
            replay[name]["facts"].update(gained)
    for index, sponsor in enumerate(sponsors):
        joined.append((f"join{index:03d}", sponsor,
                       sorted(replay[sponsor]["facts"], key=str)))
    churn_plan = {"at_wave": waves // 2, "departed": departed, "joined": joined}

    delta, delta_sets = run_delta(topology(), schedule,
                                  dict(churn_plan, joined=list(joined)),
                                  drop, seed)
    full, full_sets = run_full_state(topology(), schedule,
                                     dict(churn_plan, joined=list(joined)),
                                     drop, seed)

    shared = sorted(set(delta_sets) & set(full_sets))
    replicas_identical = all(delta_sets[name] == full_sets[name]
                             for name in shared)
    return {
        "peers": peers,
        "producers": len(base.producers),
        "followers": len(base.followers),
        "waves": waves,
        "drop_probability": drop,
        "churned_followers": len(departed),
        "joined_followers": len(joined),
        "delta": delta,
        "full_state": full,
        "replicas_identical": replicas_identical,
        "bytes_reduction_factor": round(
            full["bytes_on_wire"] / delta["bytes_on_wire"], 2)
            if delta["bytes_on_wire"] else None,
    }


# --------------------------------------------------------------------------- #
# gossip overlay at 1000 peers, delta envelopes as payload
# --------------------------------------------------------------------------- #

def run_gossip_envelopes(peers: int, envelopes: int, drop: float,
                         seed: int) -> dict:
    events = NetEventLog()
    net = SimulatedGossipNetwork(latency=0.005, latency_jitter=0.005,
                                 drop_probability=drop, seed=seed,
                                 events=events)
    rng = random.Random(seed)
    wall_start = time.perf_counter()
    for index in range(peers):
        net.add_node(f"peer{index:04d}")
    bootstrap_budget = max(30.0, peers / 20.0)
    start = net.now
    while net.now - start < bootstrap_budget:
        net.run(0.5)
        if net.converged():
            break
    bootstrap_seconds = round(net.now - start, 3)

    names = sorted(net.nodes)
    for index in range(envelopes):
        origin, recipient = rng.sample(names, 2)
        ops = tuple(Op(seq=index * 2 + offset + 1, kind="insert",
                       fact=fact(origin, index * 2 + offset))
                    for offset in range(2))
        net.submit(origin, DeltaEnvelopeMessage(
            sender=origin, recipient=recipient,
            ops=ops, frontier=ops[-1].seq))
    net.run(5.0)

    sends = {e["envelope"]: e["ts"] for e in events.events(action="send")}
    delivered = {e["envelope"]: e["ts"] - sends[e["envelope"]]
                 for e in events.events(action="deliver")
                 if e["envelope"] in sends}
    latencies = sorted(delivered.values())
    return {
        "peers": peers,
        "envelopes": envelopes,
        "envelopes_delivered": len(delivered),
        "coverage": round(len(delivered) / envelopes, 4) if envelopes else 1.0,
        "drop_probability": drop,
        "bootstrap_virtual_seconds": bootstrap_seconds,
        "membership_converged": net.converged(),
        "latency_mean_virtual": round(sum(latencies) / len(latencies), 4)
            if latencies else None,
        "latency_p95_virtual": round(latencies[int(len(latencies) * 0.95) - 1], 4)
            if latencies else None,
        "frames_sent": net.frames_sent,
        "frames_dropped": net.frames_dropped,
        "elapsed_seconds": round(time.perf_counter() - wall_start, 3),
    }


def run_benchmark(args) -> dict:
    comparison = run_anti_entropy_comparison(
        peers=args.peers, waves=args.waves, fanout=args.fanout,
        inserts=args.inserts, deletes=args.deletes, churn=args.churn,
        drop=args.drop, seed=args.seed)
    gossip = run_gossip_envelopes(args.gossip_peers, args.envelopes,
                                  args.gossip_drop, args.seed)

    if not comparison["delta"]["converged"]:
        raise AssertionError("delta protocol failed to converge")
    if not comparison["full_state"]["converged"]:
        raise AssertionError("full-state baseline failed to converge")
    if not comparison["replicas_identical"]:
        raise AssertionError("protocols disagree on the surviving replicas")
    if gossip["coverage"] < 1.0:
        raise AssertionError(
            f"gossip lost delta envelopes: coverage {gossip['coverage']}")

    return {
        "experiment": "REPLICATION",
        "metadata": bench_metadata(repeats=1, parameters=vars(args) | {
            "output": str(args.output)}),
        "anti_entropy": comparison,
        "gossip_envelopes": gossip,
        "replicas_identical": comparison["replicas_identical"],
        "delta_converged": comparison["delta"]["converged"],
        "coverage_complete": gossip["coverage"] >= 1.0,
        "bytes_reduction_factor": comparison["bytes_reduction_factor"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--peers", type=int, default=120,
                        help="peers in the anti-entropy mesh (default 120)")
    parser.add_argument("--waves", type=int, default=20,
                        help="update waves per producer (default 20)")
    parser.add_argument("--fanout", type=int, default=3,
                        help="followers per producer (default 3)")
    parser.add_argument("--inserts", type=int, default=8,
                        help="facts gained per producer per wave")
    parser.add_argument("--deletes", type=int, default=2,
                        help="facts lost per producer per wave")
    parser.add_argument("--churn", type=int, default=10,
                        help="followers departed and joiners added mid-run")
    parser.add_argument("--drop", type=float, default=0.15,
                        help="per-message loss in the mesh (default 0.15)")
    parser.add_argument("--gossip-peers", type=int, default=1000,
                        help="nodes in the gossip overlay (default 1000)")
    parser.add_argument("--envelopes", type=int, default=60,
                        help="delta envelopes injected into the overlay")
    parser.add_argument("--gossip-drop", type=float, default=0.01,
                        help="per-frame loss in the overlay (default 0.01)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "BENCH_replication.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    result = run_benchmark(args)

    delta = result["anti_entropy"]["delta"]
    full = result["anti_entropy"]["full_state"]
    gossip = result["gossip_envelopes"]
    columns = ["protocol", "bytes on wire", "messages", "dropped",
               "rounds to converge"]
    rows = [
        ["delta envelopes", delta["bytes_on_wire"], delta["messages_sent"],
         delta["messages_dropped"], delta["rounds_after_last_update"]],
        ["full state", full["bytes_on_wire"], full["messages_sent"],
         full["messages_dropped"], full["rounds_after_last_update"]],
    ]
    print(format_table(columns, rows, title="[REPLICATION] "
                       f"{args.peers} peers, drop {args.drop}, "
                       f"churn {args.churn}"))
    print(f"delta ships {result['bytes_reduction_factor']}x fewer bytes; "
          f"gossip overlay at {gossip['peers']} peers delivered "
          f"{gossip['envelopes_delivered']}/{gossip['envelopes']} envelopes "
          f"(p95 {gossip['latency_p95_virtual']}s virtual, "
          f"{gossip['elapsed_seconds']}s wall)")

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
