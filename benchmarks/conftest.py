"""Shared helpers for the benchmark harness.

Every benchmark prints, in addition to the pytest-benchmark timing table, a
plain-text table whose rows reproduce the qualitative content of the
corresponding figure or demonstration scenario of the paper (see DESIGN.md's
per-experiment index and EXPERIMENTS.md for the recorded outputs).
"""

from __future__ import annotations

import pytest


def record_counters(benchmark, **counters) -> None:
    """Attach counters to the pytest-benchmark record (shown with --benchmark-verbose)."""
    for key, value in counters.items():
        benchmark.extra_info[key] = value


@pytest.fixture(scope="session")
def report():
    """Print a results table after the benchmark, prefixed by the experiment id."""
    from repro.bench.reporting import format_table

    def _report(experiment_id, headers, rows):
        text = format_table(headers, rows, title=f"\n[{experiment_id}]")
        print(text)
        return text

    return _report
