#!/usr/bin/env python3
"""GOSSIP-PROPAGATION — epidemic dissemination at 100+ peers under churn.

The TCP transport routes application messages over a push-gossip overlay
with SWIM membership (``src/repro/net``).  This benchmark drives the exact
same protocol code through the virtual-clock simulator — hundreds of
nodes, no sockets — and measures what the paper's distributed setting
cares about:

* **propagation latency** — virtual seconds from ``send`` to ``deliver``
  per application envelope, reconstructed from the structured event log;
* **coverage** — the fraction of injected messages that reach their
  recipient, despite configurable link loss and mid-run churn (graceful
  leaves, silent crashes, and fresh joiners);
* **membership re-convergence** — how long SWIM takes to agree on the
  surviving population after the churn wave.

An in-memory transport baseline delivers the same number of point-to-point
messages through the direct-routing transport for comparison.

Run as a script (also smoke-run in CI)::

    PYTHONPATH=src python benchmarks/bench_gossip_propagation.py

Writes ``BENCH_gossip_propagation.json`` next to this file (see
``--output``).  Coverage and re-convergence are asserted before reporting.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.bench.harness import bench_metadata
from repro.bench.reporting import format_table
from repro.core.facts import Fact
from repro.net.events import NetEventLog
from repro.net.sim import SimulatedGossipNetwork
from repro.runtime.inmemory import InMemoryTransport
from repro.runtime.messages import FactMessage


def fact_message(sender: str, recipient: str, payload: str) -> FactMessage:
    return FactMessage(sender=sender, recipient=recipient,
                       inserted=frozenset({Fact("bench", recipient, (payload,))}))


def run_until_converged(net: SimulatedGossipNetwork, budget: float,
                        step: float = 0.5) -> float:
    """Advance virtual time until the membership converges; virtual seconds
    spent (``budget`` when it never converged)."""
    start = net.now
    while net.now - start < budget:
        net.run(step)
        if net.converged():
            break
    return round(net.now - start, 3)


def run_gossip(peers: int, messages: int, churn: int, drop: float,
               seed: int) -> dict:
    events = NetEventLog()
    net = SimulatedGossipNetwork(latency=0.005, latency_jitter=0.005,
                                 drop_probability=drop, seed=seed,
                                 events=events)
    rng = random.Random(seed)
    wall_start = time.perf_counter()

    for index in range(peers):
        net.add_node(f"peer{index:03d}")
    bootstrap_seconds = run_until_converged(net, budget=20.0)

    # churn victims are chosen up front so steady-state traffic only ever
    # targets peers that will still exist at the end of the run
    victims = rng.sample(sorted(net.nodes), churn)
    survivors = [name for name in sorted(net.nodes) if name not in victims]

    submitted = 0
    for index in range(messages // 2):
        origin, recipient = rng.sample(survivors, 2)
        net.submit(origin, fact_message(origin, recipient, f"pre{index}"))
        submitted += 1
    net.run(1.0)

    # the churn wave: half the victims leave politely, half just vanish,
    # and as many fresh peers join while the survivors are still catching up
    for index, victim in enumerate(victims):
        net.remove_node(victim, graceful=index % 2 == 0)
    joiners = [f"late{index:03d}" for index in range(churn)]
    for name in joiners:
        net.add_node(name, seeds=rng.sample(survivors, min(3, len(survivors))))
    survivors.extend(joiners)

    for index in range(messages - submitted):
        origin, recipient = rng.sample(survivors, 2)
        net.submit(origin, fact_message(origin, recipient, f"post{index}"))
        submitted += 1

    reconverge_seconds = run_until_converged(net, budget=30.0)
    net.run(3.0)  # anti-entropy repair window for any still-missing envelopes
    wall_seconds = time.perf_counter() - wall_start

    sends = {e["envelope"]: e["ts"] for e in events.events(action="send")}
    delivered = {e["envelope"]: e["ts"] - sends[e["envelope"]]
                 for e in events.events(action="deliver")
                 if e["envelope"] in sends}
    latencies = sorted(delivered.values())
    coverage = len(delivered) / submitted if submitted else 1.0

    return {
        "peers": peers,
        "peers_after_churn": len(net.nodes),
        "churned_peers": churn,
        "joined_peers": len(joiners),
        "messages": submitted,
        "messages_delivered": len(delivered),
        "coverage": round(coverage, 4),
        "drop_probability": drop,
        "bootstrap_virtual_seconds": bootstrap_seconds,
        "reconverge_virtual_seconds": reconverge_seconds,
        "latency_mean_virtual": round(sum(latencies) / len(latencies), 4)
            if latencies else None,
        "latency_p95_virtual": round(latencies[int(len(latencies) * 0.95) - 1], 4)
            if latencies else None,
        "latency_max_virtual": round(latencies[-1], 4) if latencies else None,
        "frames_sent": net.frames_sent,
        "frames_dropped": net.frames_dropped,
        "membership_converged": net.converged(),
        "elapsed_seconds": round(wall_seconds, 6),
    }


def run_inmemory_baseline(peers: int, messages: int, seed: int) -> dict:
    transport = InMemoryTransport(latency=1, seed=seed)
    rng = random.Random(seed)
    names = [f"peer{index:03d}" for index in range(peers)]
    start = time.perf_counter()
    for name in names:
        transport.register(name)
    for index in range(messages):
        origin, recipient = rng.sample(names, 2)
        transport.send(fact_message(origin, recipient, f"m{index}"))
    delivered = 0
    rounds = 0
    while transport.has_in_flight() and rounds < 1000:
        transport.advance_round()
        rounds += 1
        for name in names:
            delivered += len(transport.receive(name))
    return {
        "peers": peers,
        "messages": messages,
        "messages_delivered": delivered,
        "coverage": round(delivered / messages, 4) if messages else 1.0,
        "rounds": rounds,
        "elapsed_seconds": round(time.perf_counter() - start, 6),
    }


def run_benchmark(peers: int, messages: int, churn: int, drop: float,
                  seed: int) -> dict:
    gossip = run_gossip(peers, messages, churn, drop, seed)
    baseline = run_inmemory_baseline(peers, messages, seed)

    if not gossip["membership_converged"]:
        raise AssertionError("membership failed to re-converge after churn")
    if gossip["coverage"] < 1.0:
        raise AssertionError(
            f"gossip lost application messages: coverage {gossip['coverage']}"
        )
    if baseline["coverage"] < 1.0:
        raise AssertionError("in-memory baseline lost messages")

    return {
        "experiment": "GOSSIP-PROPAGATION",
        "metadata": bench_metadata(repeats=1, parameters={
            "peers": peers, "messages": messages, "churn": churn,
            "drop_probability": drop, "seed": seed,
        }),
        "gossip": gossip,
        "inmemory_baseline": baseline,
        "gossiping_peers": peers,
        "churn_exercised": churn > 0,
        "coverage_complete": gossip["coverage"] >= 1.0,
        "membership_reconverged_after_churn": gossip["membership_converged"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--peers", type=int, default=120,
                        help="gossiping peers before churn (default 120)")
    parser.add_argument("--messages", type=int, default=40,
                        help="application messages to inject (default 40)")
    parser.add_argument("--churn", type=int, default=10,
                        help="peers removed (half crash) and added mid-run")
    parser.add_argument("--drop", type=float, default=0.02,
                        help="per-frame loss probability (default 0.02)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "BENCH_gossip_propagation.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    result = run_benchmark(args.peers, args.messages, args.churn,
                           args.drop, args.seed)

    gossip, baseline = result["gossip"], result["inmemory_baseline"]
    columns = ["transport", "peers", "delivered", "coverage",
               "latency p95", "elapsed (s)"]
    rows = [
        ["gossip/sim", gossip["peers"],
         f'{gossip["messages_delivered"]}/{gossip["messages"]}',
         gossip["coverage"], gossip["latency_p95_virtual"],
         gossip["elapsed_seconds"]],
        ["inmemory", baseline["peers"],
         f'{baseline["messages_delivered"]}/{baseline["messages"]}',
         baseline["coverage"], "-", baseline["elapsed_seconds"]],
    ]
    print(format_table(columns, rows, title="[GOSSIP-PROPAGATION] "
                       f"{args.peers} peers, churn {args.churn}, "
                       f"drop {args.drop}"))
    print(f"bootstrap {gossip['bootstrap_virtual_seconds']}s virtual, "
          f"re-converged after churn in {gossip['reconverge_virtual_seconds']}s "
          f"virtual ({gossip['frames_sent']} frames, "
          f"{gossip['frames_dropped']} dropped)")

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
