#!/usr/bin/env python3
"""ENGINE-FIXPOINT — naive clear-and-recompute vs the incremental engine.

The per-peer fixpoint is the innermost loop of every scenario: the seed
engine cleared every intensional relation at each stage and recomputed it
from scratch, matching body literals by scanning whole relations.  This
benchmark drives three variants of :class:`~repro.core.engine.WebdamLogEngine`
through identical workloads:

* ``seed``         — naive recompute, full relation scans (the seed engine);
* ``indexed``      — naive recompute through the incremental hash indexes;
* ``incremental``  — seminaive delta evaluation + scoped delete-and-rederive
                     (the default engine).

Workloads:

* **transitive_closure** — a link chain, then incremental edge insertions,
  each followed by a stage (recursive joins; the seminaive showcase);
* **wepic_ranking**      — WEPIC-style visibility/recommendation joins over
  pictures, friendships and likes, with likes streaming in;
* **churn_deletions**    — link/block churn with deletions and a negated
  literal, exercising the scoped delete-and-rederive path.

Per workload and variant the report carries best-of-N wall clock,
``substitutions_explored`` and ``fixpoint_iterations``; final snapshots are
compared fact-for-fact across variants before anything is written.

Run as a script (also smoke-run in CI)::

    PYTHONPATH=src python benchmarks/bench_engine_fixpoint.py

Writes ``BENCH_engine_fixpoint.json`` next to this file (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import random
from pathlib import Path

from repro.bench.harness import bench_metadata, time_repeated
from repro.bench.reporting import format_table
from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact

VARIANTS = {
    "seed": dict(evaluation_mode="naive", use_indexes=False),
    "indexed": dict(evaluation_mode="naive", use_indexes=True),
    "incremental": dict(evaluation_mode="incremental", use_indexes=True),
}

TC_PROGRAM = """
collection extensional persistent link@bench(src, dst);
collection intensional tc@bench(src, dst);
rule tc@bench($x, $y) :- link@bench($x, $y);
rule tc@bench($x, $z) :- link@bench($x, $y), tc@bench($y, $z);
"""

RANKING_PROGRAM = """
collection extensional persistent pictures@bench(id, owner);
collection extensional persistent friend@bench(viewer, owner);
collection extensional persistent liked@bench(id, user);
collection intensional visible@bench(id, viewer);
collection intensional recommended@bench(id, viewer);
rule visible@bench($id, $v) :- friend@bench($v, $o), pictures@bench($id, $o);
rule recommended@bench($id, $v) :- visible@bench($id, $v), friend@bench($v, $u), liked@bench($id, $u);
"""

CHURN_PROGRAM = """
collection extensional persistent link@bench(src, dst);
collection extensional persistent blocked@bench(node);
collection intensional tc@bench(src, dst);
collection intensional ok@bench(src, dst);
rule tc@bench($x, $y) :- link@bench($x, $y);
rule tc@bench($x, $z) :- link@bench($x, $y), tc@bench($y, $z);
rule ok@bench($x, $y) :- tc@bench($x, $y), not blocked@bench($x);
"""


def _engine(variant: str) -> WebdamLogEngine:
    return WebdamLogEngine("bench", **VARIANTS[variant])


def transitive_closure(variant: str, chain: int, inserts: int) -> WebdamLogEngine:
    """A chain of links, then ``inserts`` incremental edges, one stage each."""
    engine = _engine(variant)
    engine.load_program(TC_PROGRAM)
    for i in range(chain - 1):
        engine.insert_fact(Fact("link", "bench", (i, i + 1)))
    engine.run_to_quiescence(max_stages=10)
    for i in range(inserts):
        engine.insert_fact(Fact("link", "bench", (chain + i, i % chain)))
        engine.run_to_quiescence(max_stages=10)
    return engine


def wepic_ranking(variant: str, users: int, pictures: int, likes: int) -> WebdamLogEngine:
    """WEPIC-style ranking joins with a stream of incoming likes."""
    engine = _engine(variant)
    engine.load_program(RANKING_PROGRAM)
    for picture in range(pictures):
        engine.insert_fact(Fact("pictures", "bench",
                                (picture, f"user{picture % users}")))
    for viewer in range(users):
        for offset in (1, 2):
            engine.insert_fact(Fact("friend", "bench",
                                    (f"user{viewer}", f"user{(viewer + offset) % users}")))
    engine.run_to_quiescence(max_stages=10)
    rng = random.Random(1729)
    for _ in range(likes):
        engine.insert_fact(Fact("liked", "bench",
                                (rng.randrange(pictures),
                                 f"user{rng.randrange(users)}")))
        engine.run_to_quiescence(max_stages=10)
    return engine


def churn_deletions(variant: str, nodes: int, steps: int) -> WebdamLogEngine:
    """Insert/delete churn over links and blocks (negation + rederive path)."""
    engine = _engine(variant)
    engine.load_program(CHURN_PROGRAM)
    rng = random.Random(4242)
    for step in range(steps):
        roll = rng.random()
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if roll < 0.5:
            engine.insert_fact(Fact("link", "bench", (a, b)))
        elif roll < 0.75:
            engine.delete_fact(Fact("link", "bench", (a, b)))
        elif roll < 0.9:
            engine.insert_fact(Fact("blocked", "bench", (a,)))
        else:
            engine.delete_fact(Fact("blocked", "bench", (a,)))
        engine.run_to_quiescence(max_stages=30)
    return engine


def measure(workload, repeats: int) -> dict:
    """Run ``workload`` per variant (best of ``repeats``); verify snapshots."""
    measurements = {}
    snapshots = {}
    for variant in VARIANTS:
        timing, engine = time_repeated(lambda v=variant: workload(v), repeats)
        counters = engine.eval_counters
        snapshots[variant] = engine.snapshot()
        measurements[variant] = {
            **timing,
            "substitutions_explored": counters["substitutions_explored"],
            "fixpoint_iterations": counters["fixpoint_iterations"],
            "rules_evaluated": counters["rules_evaluated"],
            "stage_paths": {
                path: counters[f"stages_{path}"]
                for path in ("full", "delta", "rederive", "skip")
            },
        }
    identical = all(snapshots[v] == snapshots["seed"] for v in VARIANTS)
    if not identical:
        raise AssertionError(
            "engine divergence: variants reached different fixpoints"
        )
    seed = measurements["seed"]
    incremental = measurements["incremental"]
    measurements["substitutions_reduction"] = round(
        seed["substitutions_explored"] / max(1, incremental["substitutions_explored"]), 2)
    measurements["speedup"] = round(
        seed["best_seconds"] / max(1e-9, incremental["best_seconds"]), 2)
    measurements["snapshots_identical"] = True
    return measurements


def run_benchmark(args) -> dict:
    workloads = {
        "transitive_closure": lambda v: transitive_closure(v, args.chain, args.inserts),
        "wepic_ranking": lambda v: wepic_ranking(v, args.users, args.pictures,
                                                 args.likes),
        "churn_deletions": lambda v: churn_deletions(v, args.nodes, args.steps),
    }
    results = {name: measure(workload, args.repeats)
               for name, workload in workloads.items()}
    return {
        "experiment": "ENGINE-FIXPOINT",
        "metadata": bench_metadata(
            repeats=args.repeats,
            parameters={
                "chain": args.chain, "inserts": args.inserts,
                "users": args.users, "pictures": args.pictures,
                "likes": args.likes, "nodes": args.nodes, "steps": args.steps,
            },
        ),
        "workloads": results,
        "substitutions_reduction_tc": results["transitive_closure"][
            "substitutions_reduction"],
        "speedup_tc": results["transitive_closure"]["speedup"],
        "snapshots_identical": all(
            r["snapshots_identical"] for r in results.values()),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chain", type=int, default=30,
                        help="chain length of the transitive-closure workload")
    parser.add_argument("--inserts", type=int, default=8,
                        help="incremental edge insertions after the chain")
    parser.add_argument("--users", type=int, default=8,
                        help="users in the WEPIC ranking workload")
    parser.add_argument("--pictures", type=int, default=60,
                        help="pictures in the WEPIC ranking workload")
    parser.add_argument("--likes", type=int, default=25,
                        help="streamed like insertions")
    parser.add_argument("--nodes", type=int, default=10,
                        help="nodes of the churn workload graph")
    parser.add_argument("--steps", type=int, default=40,
                        help="insert/delete operations in the churn workload")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing runs per variant (best-of-N is reported)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "BENCH_engine_fixpoint.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    report = run_benchmark(args)

    for name, result in report["workloads"].items():
        columns = ["variant", "best (s)", "mean (s)", "substitutions",
                   "iterations"]
        rows = [
            [variant,
             result[variant]["best_seconds"],
             result[variant]["mean_seconds"],
             result[variant]["substitutions_explored"],
             result[variant]["fixpoint_iterations"]]
            for variant in VARIANTS
        ]
        print(format_table(columns, rows, title=f"[ENGINE-FIXPOINT] {name}"))
        print(f"  substitutions reduction: {result['substitutions_reduction']}x, "
              f"speedup: {result['speedup']}x "
              f"(snapshots identical: {result['snapshots_identical']})")

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
