"""SCALE-PEERS — behaviour as the number of peers grows.

The paper claims a "highly decentralized" design; this benchmark checks how
rounds, messages and per-peer payload evolve as the number of attendee peers
grows, with every peer selecting every other peer (the worst case for the
delegation fabric).  The qualitative shape: messages grow with the number of
*selected pairs* (quadratically here by construction), while the number of
rounds to convergence stays flat — convergence depth depends on the pipeline
length, not on the peer count.
"""

import pytest

from benchmarks.conftest import record_counters
from repro.wepic.scenario import build_demo_scenario


def run_scale(peers: int, pictures_per_attendee: int = 2):
    names = [f"peer{i}" for i in range(peers)]
    scenario = build_demo_scenario(attendees=names,
                                   pictures_per_attendee=pictures_per_attendee,
                                   with_facebook=False, publish_to_sigmod=False)
    for name in names:
        app = scenario.app(name)
        for other in names:
            if other != name:
                app.select_attendee(other)
    summary = scenario.run(max_rounds=120)
    return scenario, summary


@pytest.mark.parametrize("peers", [2, 4, 8, 16])
def test_scale_peers_all_to_all(benchmark, report, peers):
    scenario, summary = benchmark.pedantic(lambda: run_scale(peers), rounds=2, iterations=1)
    stats = scenario.stats()
    totals = scenario.api.totals()
    expected_view = (peers - 1) * 2
    for name in scenario.attendees():
        assert len(scenario.app(name).attendee_pictures()) == expected_view
    record_counters(benchmark, peers=peers, rounds=summary.round_count,
                    messages=stats.messages_sent,
                    delegations=totals["installed_delegations"])
    report("SCALE-PEERS",
           ["peers", "rounds", "messages", "payload items", "delegations installed",
            "view size per peer"],
           [[peers, summary.round_count, stats.messages_sent, stats.payload_items,
             totals["installed_delegations"], expected_view]])


def test_scale_rounds_flat_in_peer_count(benchmark, report):
    """Convergence depth is independent of the number of peers."""

    def run():
        return [run_scale(p)[1].round_count for p in (2, 8)]

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(rounds[0] - rounds[1]) <= 1
    record_counters(benchmark, rounds_2=rounds[0], rounds_8=rounds[1])
    report("SCALE-PEERS (depth)", ["peers", "rounds"],
           [[2, rounds[0]], [8, rounds[1]]])
