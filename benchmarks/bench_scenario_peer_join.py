"""SCEN-WEB — "Interaction via the Web": audience peers join at run time.

Audience members launch their own autonomous Wepic peers, subscribe to the
sigmod peer, upload pictures and use the delegation-based view.  The
benchmark sweeps the number of joining peers and reports rounds/messages for
the whole cohort to become first-class participants.
"""

import pytest

from benchmarks.conftest import record_counters
from repro.wepic.scenario import build_demo_scenario


def run_join(joiners: int):
    scenario = build_demo_scenario(pictures_per_attendee=1)
    scenario.run()
    scenario.reset_stats()
    guests = [scenario.add_attendee(f"Guest{i}", pictures=1) for i in range(joiners)]
    for guest in guests:
        guest.select_attendee("Emilien")
    summary = scenario.run(max_rounds=120)
    return scenario, guests, summary


@pytest.mark.parametrize("joiners", [1, 4, 8])
def test_scen_web_peer_join(benchmark, report, joiners):
    scenario, guests, summary = benchmark.pedantic(lambda: run_join(joiners),
                                                   rounds=2, iterations=1)
    stats = scenario.stats()
    registered = {f.values[0] for f in scenario.sigmod_peer.query("attendees")}
    # Every guest is registered at sigmod and sees Émilien's picture.
    assert all(f"Guest{i}" in registered for i in range(joiners))
    assert all(len(guest.attendee_pictures()) == 1 for guest in guests)
    record_counters(benchmark, joiners=joiners, rounds=summary.round_count,
                    messages=stats.messages_sent)
    report("SCEN-WEB", ["joining peers", "total peers", "rounds", "messages",
                        "guests with working view"],
           [[joiners, len(scenario.system.peers), summary.round_count,
             stats.messages_sent, sum(1 for g in guests if g.attendee_pictures())]])
