"""FIG1 — the *Attendee pictures* frame (Figure 1).

The frame is filled by the delegation rule::

    attendeePictures@Jules($id, $name, $owner, $data) :-
        selectedAttendee@Jules($attendee),
        pictures@$attendee($id, $name, $owner, $data)

The benchmark measures, for a growing number of pictures per attendee and of
selected attendees, how long the system takes to converge and how many
messages/delegations the delegation-based evaluation needs.  The qualitative
shape to reproduce: one delegation per (viewer, selected attendee) pair,
messages proportional to the number of *matching* pictures, and a view that
equals exactly the union of the selected attendees' pictures.
"""

import pytest

from benchmarks.conftest import record_counters
from repro.wepic.scenario import build_demo_scenario


def run_attendee_pictures(pictures_per_attendee: int, attendees: int):
    names = [f"peer{i}" for i in range(attendees)]
    scenario = build_demo_scenario(attendees=names,
                                   pictures_per_attendee=pictures_per_attendee,
                                   with_facebook=False, publish_to_sigmod=False)
    viewer = scenario.app(names[0])
    for other in names[1:]:
        viewer.select_attendee(other)
    summary = scenario.run(max_rounds=80)
    return scenario, viewer, summary


@pytest.mark.parametrize("pictures_per_attendee", [2, 8, 32])
def test_fig1_view_size_sweep(benchmark, report, pictures_per_attendee):
    """Sweep the number of pictures per attendee with 3 peers (Jules + 2 selected)."""

    def run():
        return run_attendee_pictures(pictures_per_attendee, attendees=3)

    scenario, viewer, summary = benchmark.pedantic(run, rounds=3, iterations=1)
    stats = scenario.stats()
    expected = 2 * pictures_per_attendee
    assert len(viewer.attendee_pictures()) == expected
    record_counters(benchmark, rounds=summary.round_count,
                    messages=stats.messages_sent, payload=stats.payload_items,
                    view_size=expected)
    report("FIG1", ["pictures/attendee", "view size", "rounds", "messages", "payload items"],
           [[pictures_per_attendee, expected, summary.round_count,
             stats.messages_sent, stats.payload_items]])


@pytest.mark.parametrize("attendees", [2, 4, 8])
def test_fig1_selected_attendees_sweep(benchmark, report, attendees):
    """Sweep the number of selected attendees with 4 pictures each."""

    def run():
        return run_attendee_pictures(4, attendees=attendees)

    scenario, viewer, summary = benchmark.pedantic(run, rounds=3, iterations=1)
    totals = scenario.api.totals()
    # One delegation per selected attendee *per Wepic rule whose body reaches
    # that attendee* (attendeePictures, attendeeRatings and the transfer rule):
    # the paper's key qualitative claim is that delegations grow with the
    # selection, not with the data.
    assert totals["installed_delegations"] == 3 * (attendees - 1)
    picture_delegations = sum(
        1 for name in scenario.attendees()
        for d in scenario.app(name).peer.installed_delegations()
        if d.rule.head.relation_constant() == "attendeePictures"
    )
    assert picture_delegations == attendees - 1
    record_counters(benchmark, delegations=totals["installed_delegations"],
                    rounds=summary.round_count)
    report("FIG1", ["selected attendees", "attendeePictures delegations", "view size", "rounds"],
           [[attendees - 1, picture_delegations,
             len(viewer.attendee_pictures()), summary.round_count]])
