#!/usr/bin/env python3
"""PROVENANCE-ACL — provenance-attached evaluation and lineage-filtered reads.

Before this subsystem, attaching a :class:`ProvenanceTracker` pinned the
engine to ``evaluation_path="full"`` at every stage, and every access-control
check re-walked the whole lineage graph.  This benchmark measures both fixes:

* **evaluation** — two provenance-attached variants of
  :class:`~repro.core.engine.WebdamLogEngine` run identical workloads:

  - ``pinned_full``   — a legacy hook-less recorder (the pre-subsystem
                        behaviour: every stage is a full recompute);
  - ``incremental``   — the maintained :class:`ProvenanceTracker` riding the
                        delta / rederive paths.

  Why/lineage answers are verified identical before anything is written.

* **acl filtering** — throughput of filtering a derived view down to the
  facts a peer may read:

  - ``walk_per_check`` — the historical per-fact lineage walk;
  - ``policy_engine``  — :class:`~repro.acl.policies.PolicyEngine` probing
                         the graph's maintained lineage index with cached,
                         delta-invalidated decisions.

Workloads: **transitive_closure** (chain + incremental edge inserts) and
**wepic_ranking** (WEPIC-style visibility/recommendation joins with streamed
likes), both with provenance attached throughout.

Run as a script (also smoke-run in CI)::

    PYTHONPATH=src python benchmarks/bench_provenance_acl.py

Writes ``BENCH_provenance_acl.json`` next to this file (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.acl.policies import AccessControlPolicy, PolicyEngine, Privilege
from repro.bench.harness import bench_metadata, time_repeated
from repro.bench.reporting import format_table
from repro.core.engine import WebdamLogEngine
from repro.core.facts import Fact
from repro.provenance.graph import ProvenanceTracker


class LegacyRecorder:
    """A hook-less provenance recorder: reproduces the pre-subsystem pinning.

    It records derivations cumulatively (duplicates kept out) but exposes no
    maintenance hooks, so the engine falls back to a full recompute at every
    stage — exactly the provenance-attached behaviour this PR replaces.
    """

    def __init__(self):
        self.graph = ProvenanceTracker().graph

    def record(self, fact, rule, support):
        from repro.provenance.graph import Derivation
        self.graph.add(Derivation(fact=fact, rule_id=rule.rule_id,
                                  support=tuple(support), author=rule.author))


VARIANTS = {
    "pinned_full": LegacyRecorder,
    "incremental": ProvenanceTracker,
}

TC_PROGRAM = """
collection extensional persistent link@bench(src, dst);
collection intensional tc@bench(src, dst);
rule tc@bench($x, $y) :- link@bench($x, $y);
rule tc@bench($x, $z) :- link@bench($x, $y), tc@bench($y, $z);
"""

RANKING_PROGRAM = """
collection extensional persistent pictures@bench(id, owner);
collection extensional persistent friend@bench(viewer, owner);
collection extensional persistent liked@bench(id, user);
collection intensional visible@bench(id, viewer);
collection intensional recommended@bench(id, viewer);
rule visible@bench($id, $v) :- friend@bench($v, $o), pictures@bench($id, $o);
rule recommended@bench($id, $v) :- visible@bench($id, $v), friend@bench($v, $u), liked@bench($id, $u);
"""


def _engine(variant: str) -> WebdamLogEngine:
    engine = WebdamLogEngine("bench")
    engine.provenance = VARIANTS[variant]()
    return engine


def transitive_closure(variant: str, chain: int, inserts: int) -> WebdamLogEngine:
    """A chain of links, then incremental edges — provenance attached."""
    engine = _engine(variant)
    engine.load_program(TC_PROGRAM)
    for i in range(chain - 1):
        engine.insert_fact(Fact("link", "bench", (i, i + 1)))
    engine.run_to_quiescence(max_stages=10)
    for i in range(inserts):
        engine.insert_fact(Fact("link", "bench", (chain + i, i % chain)))
        engine.run_to_quiescence(max_stages=10)
    return engine


def wepic_ranking(variant: str, users: int, pictures: int, likes: int) -> WebdamLogEngine:
    """WEPIC-style ranking joins with streamed uploads and likes.

    After the initial album load the workload interleaves new picture
    uploads with incoming likes (one stage each), the shape of the demo's
    live phase.  Provenance stays attached throughout.
    """
    engine = _engine(variant)
    engine.load_program(RANKING_PROGRAM)
    for picture in range(pictures):
        engine.insert_fact(Fact("pictures", "bench",
                                (picture, f"user{picture % users}")))
    for viewer in range(users):
        for offset in (1, 2):
            engine.insert_fact(Fact("friend", "bench",
                                    (f"user{viewer}", f"user{(viewer + offset) % users}")))
    engine.run_to_quiescence(max_stages=10)
    rng = random.Random(1729)
    next_picture = pictures
    for step in range(likes):
        if step % 2 == 0:
            engine.insert_fact(Fact("pictures", "bench",
                                    (next_picture, f"user{next_picture % users}")))
            next_picture += 1
        else:
            engine.insert_fact(Fact("liked", "bench",
                                    (rng.randrange(next_picture),
                                     f"user{rng.randrange(users)}")))
        engine.run_to_quiescence(max_stages=10)
    return engine


def provenance_story(graph):
    """Comparable why/lineage answers for every fact in the graph."""
    return {
        str(fact): {
            "why": sorted(sorted(str(f) for f in alt) for alt in graph.why(fact)),
            "bases": sorted(graph.base_relations(fact)),
        }
        for fact in graph.facts()
    }


def measure_evaluation(workload, repeats: int) -> dict:
    """Run ``workload`` per variant; verify snapshots and provenance agree."""
    measurements = {}
    snapshots = {}
    stories = {}
    for variant in VARIANTS:
        timing, engine = time_repeated(lambda v=variant: workload(v), repeats)
        counters = engine.eval_counters
        snapshots[variant] = engine.snapshot()
        stories[variant] = provenance_story(engine.provenance.graph)
        measurements[variant] = {
            **timing,
            "substitutions_explored": counters["substitutions_explored"],
            "fixpoint_iterations": counters["fixpoint_iterations"],
            "rules_evaluated": counters["rules_evaluated"],
            "derivations_tracked": len(engine.provenance.graph),
            "stage_paths": {
                path: counters[f"stages_{path}"]
                for path in ("full", "delta", "rederive", "skip")
            },
        }
    if snapshots["incremental"] != snapshots["pinned_full"]:
        raise AssertionError("variants reached different fixpoints")
    if stories["incremental"] != stories["pinned_full"]:
        raise AssertionError("variants answered why/lineage differently")
    pinned = measurements["pinned_full"]
    incremental = measurements["incremental"]
    measurements["substitutions_reduction"] = round(
        pinned["substitutions_explored"]
        / max(1, incremental["substitutions_explored"]), 2)
    measurements["speedup"] = round(
        pinned["best_seconds"] / max(1e-9, incremental["best_seconds"]), 2)
    measurements["provenance_identical"] = True
    return measurements


# --------------------------------------------------------------------------- #
# ACL-filtered query throughput
# --------------------------------------------------------------------------- #

def _walk_filter(policy: AccessControlPolicy, graph, facts, peer: str):
    """The historical check: walk the lineage of every fact, every time."""
    readable = []
    for fact in facts:
        if not graph.derivations_of(fact):
            if policy.can_read(fact.qualified_relation, peer):
                readable.append(fact)
            continue
        bases = {f.qualified_relation
                 for f in graph.lineage(fact) if not graph.derivations_of(f)}
        if all(policy.can_read(base, peer) for base in bases):
            readable.append(fact)
    return tuple(readable)


def measure_acl(users: int, pictures: int, likes: int, queries: int) -> dict:
    """Filter the WEPIC recommendation view repeatedly, both ways."""
    engine = wepic_ranking("incremental", users, pictures, likes)
    graph = engine.provenance.graph
    facts = engine.query("visible") + engine.query("recommended")

    policy = AccessControlPolicy("bench")
    # Reader profiles: "friendly" may read everything the views draw from,
    # "nosy" lacks the likes relation, so recommendations are filtered out.
    for relation in ("pictures@bench", "friend@bench", "liked@bench"):
        policy.grant(relation, "friendly", Privilege.READ)
    for relation in ("pictures@bench", "friend@bench"):
        policy.grant(relation, "nosy", Privilege.READ)
    acl = PolicyEngine(policy, graph)
    readers = ("friendly", "nosy")

    expected = {peer: _walk_filter(policy, graph, facts, peer) for peer in readers}
    for peer in readers:
        if acl.filter_readable(facts, peer) != expected[peer]:
            raise AssertionError("PolicyEngine disagrees with the lineage walk")

    start = time.perf_counter()
    for _ in range(queries):
        for peer in readers:
            _walk_filter(policy, graph, facts, peer)
    walk_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(queries):
        for peer in readers:
            acl.filter_readable(facts, peer)
    engine_seconds = time.perf_counter() - start

    checks = queries * len(readers) * len(facts)
    return {
        "facts_filtered": len(facts),
        "queries": queries,
        "checks": checks,
        "readable_friendly": len(expected["friendly"]),
        "readable_nosy": len(expected["nosy"]),
        "walk_per_check": {
            "seconds": walk_seconds,
            "checks_per_second": round(checks / max(1e-9, walk_seconds)),
        },
        "policy_engine": {
            "seconds": engine_seconds,
            "checks_per_second": round(checks / max(1e-9, engine_seconds)),
        },
        "speedup": round(walk_seconds / max(1e-9, engine_seconds), 2),
        "decisions_identical": True,
    }


def run_benchmark(args) -> dict:
    workloads = {
        "transitive_closure": lambda v: transitive_closure(v, args.chain, args.inserts),
        "wepic_ranking": lambda v: wepic_ranking(v, args.users, args.pictures,
                                                 args.likes),
    }
    results = {name: measure_evaluation(workload, args.repeats)
               for name, workload in workloads.items()}
    acl = measure_acl(args.users, args.pictures, args.likes, args.queries)
    incremental_paths = {
        name: results[name]["incremental"]["stage_paths"] for name in results
    }
    return {
        "experiment": "PROVENANCE-ACL",
        "metadata": bench_metadata(
            repeats=args.repeats,
            parameters={
                "chain": args.chain, "inserts": args.inserts,
                "users": args.users, "pictures": args.pictures,
                "likes": args.likes, "queries": args.queries,
            },
        ),
        "workloads": results,
        "acl_filtering": acl,
        "substitutions_reduction_tc": results["transitive_closure"][
            "substitutions_reduction"],
        "substitutions_reduction_ranking": results["wepic_ranking"][
            "substitutions_reduction"],
        "acl_speedup": acl["speedup"],
        "provenance_identical": all(
            r["provenance_identical"] for r in results.values()),
        "incremental_paths_used": all(
            paths["delta"] + paths["rederive"] > 0
            for paths in incremental_paths.values()),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chain", type=int, default=25,
                        help="chain length of the transitive-closure workload")
    parser.add_argument("--inserts", type=int, default=8,
                        help="incremental edge insertions after the chain")
    parser.add_argument("--users", type=int, default=8,
                        help="users in the WEPIC ranking workload")
    parser.add_argument("--pictures", type=int, default=50,
                        help="pictures in the WEPIC ranking workload")
    parser.add_argument("--likes", type=int, default=20,
                        help="streamed like insertions")
    parser.add_argument("--queries", type=int, default=50,
                        help="repetitions of the ACL-filtered query")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing runs per variant (best-of-N is reported)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "BENCH_provenance_acl.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    report = run_benchmark(args)

    for name, result in report["workloads"].items():
        columns = ["variant", "best (s)", "substitutions", "derivations",
                   "full/delta/rederive"]
        rows = []
        for variant in VARIANTS:
            paths = result[variant]["stage_paths"]
            rows.append([
                variant,
                result[variant]["best_seconds"],
                result[variant]["substitutions_explored"],
                result[variant]["derivations_tracked"],
                f"{paths['full']}/{paths['delta']}/{paths['rederive']}",
            ])
        print(f"\n== {name} (provenance attached) ==")
        print(format_table(columns, rows))
        print(f"substitutions reduction: {result['substitutions_reduction']}x, "
              f"speedup: {result['speedup']}x")

    acl = report["acl_filtering"]
    print("\n== ACL-filtered query throughput ==")
    print(format_table(
        ["filter", "seconds", "checks/s"],
        [["walk_per_check", acl["walk_per_check"]["seconds"],
          acl["walk_per_check"]["checks_per_second"]],
         ["policy_engine", acl["policy_engine"]["seconds"],
          acl["policy_engine"]["checks_per_second"]]],
    ))
    print(f"speedup: {acl['speedup']}x over {acl['checks']} checks")

    args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
