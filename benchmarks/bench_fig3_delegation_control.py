"""FIG3 / SCEN-DELEG — control of delegation.

Figure 3 shows a pending delegation ("Julia is sending a rule to Jules")
waiting for explicit approval.  The benchmark measures the delegation
controller under a stream of D delegations from trusted and untrusted
delegators: trusted ones install immediately, untrusted ones queue, and
approving them installs the rules.  The qualitative shape to reproduce: the
pending queue holds exactly the untrusted delegations, nothing from an
untrusted peer executes before approval, and approval latency is the explicit
user action (one extra round), not a hidden system cost.
"""

import pytest

from benchmarks.conftest import record_counters
from repro.acl.delegation_control import DelegationController
from repro.acl.trust import TrustStore
from repro.core.engine import WebdamLogEngine
from repro.core.parser import parse_rule
from repro.wepic.scenario import build_demo_scenario


@pytest.mark.parametrize("delegations", [10, 100, 500])
def test_fig3_pending_queue_throughput(benchmark, report, delegations):
    """Submit D delegations (half trusted, half untrusted), then approve the queue."""

    def run():
        engine = WebdamLogEngine("Jules")
        controller = DelegationController(
            engine, trust=TrustStore("Jules", trusted=["sigmod"]))
        for index in range(delegations):
            delegator = "sigmod" if index % 2 == 0 else f"guest{index}"
            rule = parse_rule(
                f"out{index}@{delegator}($x) :- pictures@Jules($x, $n)",
                author=delegator)
            controller.submit(delegator, f"deleg-{index}", rule)
        pending_before = len(controller.pending())
        controller.approve_all()
        engine.run_stage()
        return controller, pending_before, engine

    controller, pending_before, engine = benchmark(run)
    counts = controller.counts()
    assert pending_before == delegations // 2
    assert counts["auto-accepted"] == delegations - delegations // 2
    assert counts["approved"] == delegations // 2
    assert len(engine.installed_delegations()) == delegations
    record_counters(benchmark, pending=pending_before, installed=delegations)
    report("FIG3", ["delegations", "auto-accepted (trusted)", "queued (untrusted)",
                    "installed after approval"],
           [[delegations, counts["auto-accepted"], pending_before,
             len(engine.installed_delegations())]])


def test_fig3_scenario_pending_vs_approved(benchmark, report):
    """The end-to-end Figure-3 interaction on the demo scenario."""

    def run():
        scenario = build_demo_scenario(pictures_per_attendee=1, control_delegation=True)
        jules = scenario.app("Jules")
        emilien = scenario.app("Emilien")
        jules.select_attendee("Emilien")
        scenario.run()
        rounds_blocked = scenario.system.current_round
        pending = len(emilien.pending_delegations())
        view_before = len(jules.attendee_pictures())
        emilien.peer.approve_all_delegations("Jules")
        scenario.run()
        return pending, view_before, len(jules.attendee_pictures()), rounds_blocked

    pending, view_before, view_after, rounds = benchmark.pedantic(run, rounds=3, iterations=1)
    assert pending >= 1
    assert view_before == 0
    assert view_after == 1
    record_counters(benchmark, pending=pending, view_after=view_after)
    report("FIG3 (scenario)", ["pending at Émilien", "view before approval",
                               "view after approval", "rounds while blocked"],
           [[pending, view_before, view_after, rounds]])
