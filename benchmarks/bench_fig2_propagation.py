"""FIG2 — propagation across the Figure-2 topology.

"We will then show that a photo uploaded by Émilien into his local relation
pictures@Émilien is instantly published to pictures@sigmod, and then
propagated to pictures@SigmodFB."

The benchmark uploads N authorised pictures at Émilien and measures how many
rounds and messages it takes for all of them to reach (a) the sigmod peer and
(b) the simulated Facebook group, reproducing the Émilien → sigmod → SigmodFB
pipeline of Figure 2.
"""

import pytest

from benchmarks.conftest import record_counters
from repro.wepic.scenario import build_demo_scenario


def run_propagation(uploads: int):
    scenario = build_demo_scenario(pictures_per_attendee=0)
    emilien = scenario.app("Emilien")
    scenario.run()
    scenario.reset_stats()
    for index in range(uploads):
        picture = emilien.upload_picture(picture_id=1000 + index)
        emilien.authorize_facebook(picture)
    summary = scenario.run(max_rounds=100)
    return scenario, summary


@pytest.mark.parametrize("uploads", [1, 5, 20])
def test_fig2_upload_propagation(benchmark, report, uploads):
    scenario, summary = benchmark.pedantic(lambda: run_propagation(uploads),
                                           rounds=3, iterations=1)
    stats = scenario.stats()
    at_sigmod = len(scenario.sigmod_pictures())
    in_group = len(scenario.facebook.photos_in_group("sigmod"))
    # Every authorised upload reaches both hops of the pipeline.
    assert at_sigmod == uploads
    assert in_group == uploads
    record_counters(benchmark, rounds=summary.round_count, messages=stats.messages_sent,
                    at_sigmod=at_sigmod, in_group=in_group)
    report("FIG2",
           ["uploads", "at sigmod", "in SigmodFB group", "rounds", "messages", "payload items"],
           [[uploads, at_sigmod, in_group, summary.round_count,
             stats.messages_sent, stats.payload_items]])


def test_fig2_rounds_independent_of_upload_count(benchmark, report):
    """The pipeline depth (Émilien → sigmod → SigmodFB) fixes the round count,
    not the number of pictures: uploading 1 or 20 pictures converges in the
    same number of rounds (messages batch per stage)."""

    def run():
        _scenario_1, summary_1 = run_propagation(1)
        _scenario_20, summary_20 = run_propagation(20)
        return summary_1.round_count, summary_20.round_count

    rounds_1, rounds_20 = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rounds_20 <= rounds_1 + 1
    record_counters(benchmark, rounds_one=rounds_1, rounds_twenty=rounds_20)
    report("FIG2", ["uploads", "rounds to full propagation"],
           [[1, rounds_1], [20, rounds_20]])
