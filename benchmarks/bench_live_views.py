#!/usr/bin/env python3
"""LIVE-VIEWS — standing, incrementally-maintained views vs per-cycle re-runs.

The paper's demo is interactive: every attendee keeps a handful of pages
open (their picture wall filtered by owner, the rating board) while the
conference's data churns underneath.  Before the declarative query API those
pages were answered by re-running the query per refresh; now they are
:class:`~repro.api.LiveView` s — compiled into the owning peer's engine once
and maintained along the delta/rederive paths.

The workload is a WEPIC-style hub: a ``wepic`` peer stores ``pictures`` and
receives ``rate`` / ``hidden`` updates pushed by ``--users`` attendee peers;
``--views`` standing pages (per-user rating filters with bound arguments, a
negation filter, a join page and an aggregate rating summary) stay open over
``--cycles`` churn cycles (uploads, ratings, hides, retractions).  Two
deployments run the identical churn:

* **standing** — the views are installed once and simply read per cycle;
* **scratch** — each view is compiled, installed, converged, read and closed
  again *every* cycle (the re-run-the-query regime).

Both must produce identical answers every cycle; the headline metric is the
ratio of substitutions explored (the engine's work counter).

Run as a script (also smoke-run in CI)::

    PYTHONPATH=src python benchmarks/bench_live_views.py

Writes ``BENCH_live_views.json`` next to this file (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.api import system
from repro.bench.harness import bench_metadata
from repro.bench.reporting import format_table

HUB = "wepic"


def hub_program() -> str:
    return f"""
    collection extensional persistent pictures@{HUB}(id, name, owner);
    collection extensional persistent rate@{HUB}(user, id, stars);
    collection extensional persistent hidden@{HUB}(id);
    """


def page_queries(users: int, views: int):
    """The standing pages: per-user filters, a join, negation, aggregates.

    The mix mirrors the demo's open tabs: a couple of cheap filter pages
    (bound arguments, negation) and a majority of data-wide pages (rating
    joins, leader boards, per-user profiles) — the ones whose from-scratch
    re-evaluation sweeps the whole rating history on every refresh.
    """
    queries = []
    for index in range(views):
        user = f"user{index % users:02d}"
        kind = index % 6
        if kind == 0:
            # Filter page: one user's five-star picks (bound arguments →
            # answered from the hash indexes).
            queries.append(
                f"picks($id, $name) :- rate@{HUB}(\"{user}\", $id, 5), "
                f"pictures@{HUB}($id, $name, $owner)")
        elif kind == 1:
            # Wall page: everything rated by the user that is not hidden.
            queries.append(
                f"wall($id, $name, $owner) :- pictures@{HUB}($id, $name, $owner), "
                f"rate@{HUB}(\"{user}\", $id, $stars), not hidden@{HUB}($id)")
        elif kind in (2, 3):
            # Join page: pairs of users agreeing on a rating.
            queries.append(
                f"agree($id, $other) :- rate@{HUB}(\"{user}\", $id, $stars), "
                f"rate@{HUB}($other, $id, $stars)")
        elif kind == 4:
            # Ranking page: the aggregate rating summary.
            queries.append(
                f"board($id, avg($stars), count($stars)) :- "
                f"rate@{HUB}($user, $id, $stars)")
        else:
            # Profile page: per-user rating envelope.
            queries.append(
                f"profile($user, min($stars), max($stars), count($stars)) :- "
                f"rate@{HUB}($user, $id, $stars)")
    return queries


def build_deployment(users: int):
    builder = system().peer(HUB).program(hub_program())
    for index in range(users):
        builder.peer(f"user{index:02d}")
    return builder.build()


def seed_data(deployment, users: int, pictures: int, ratings: int) -> None:
    """The pre-existing conference data the pages are opened over."""
    hub = deployment.peer(HUB)
    for picture in range(pictures):
        hub.insert(f'pictures@{HUB}({picture}, "p{picture}.jpg", '
                   f'"user{picture % users:02d}")')
    for index in range(ratings):
        user = f"user{index % users:02d}"
        deployment.peer(user).insert(
            f'rate@{HUB}("{user}", {index % pictures}, {index % 5 + 1})')


def churn(deployment, users: int, pictures: int, cycle: int) -> None:
    """One cycle of demo traffic: an upload and a couple of ratings (the
    insert-heavy regime the demo actually produces — each refresh only
    touches a sliver of the standing pages' inputs), with occasional hides
    and retractions so the rederive path is exercised too."""
    hub = deployment.peer(HUB)
    picture = pictures + cycle
    hub.insert(f'pictures@{HUB}({picture}, "p{picture}.jpg", '
               f'"user{picture % users:02d}")')
    for offset in range(2):
        index = (cycle + offset) % users
        user = f"user{index:02d}"
        deployment.peer(user).insert(
            f'rate@{HUB}("{user}", {(cycle * 3 + offset) % picture}, '
            f'{(cycle + offset) % 5 + 1})')
    if cycle % 6 == 2:
        hub.insert(f"hidden@{HUB}({cycle})")
    if cycle % 6 == 5:
        # Retract an earlier hide and take down the upload of three cycles
        # ago — deletions ride the scoped delete-and-rederive path.
        hub.delete(f"hidden@{HUB}({cycle - 3})")
        removed = pictures + cycle - 3
        hub.delete(f'pictures@{HUB}({removed}, "p{removed}.jpg", '
                   f'"user{removed % users:02d}")')


def total_substitutions(deployment) -> int:
    return sum(peer.engine.eval_counters["substitutions_explored"]
               for peer in deployment.runtime.peers.values())


def run_standing(users: int, views: int, cycles: int, pictures: int,
                 ratings: int):
    deployment = build_deployment(users)
    seed_data(deployment, users, pictures, ratings)
    deployment.converge()
    open_views = [deployment.query(HUB, query)
                  for query in page_queries(users, views)]
    deployment.converge()
    start = time.perf_counter()
    baseline = total_substitutions(deployment)
    answers = []
    for cycle in range(1, cycles + 1):
        churn(deployment, users, pictures, cycle)
        deployment.converge()
        answers.append([sorted(view.rows()) for view in open_views])
    substitutions = total_substitutions(deployment) - baseline
    elapsed = time.perf_counter() - start
    for view in open_views:
        view.close()
    return answers, substitutions, elapsed


def run_scratch(users: int, views: int, cycles: int, pictures: int,
                ratings: int):
    deployment = build_deployment(users)
    seed_data(deployment, users, pictures, ratings)
    deployment.converge()
    queries = page_queries(users, views)
    start = time.perf_counter()
    baseline = total_substitutions(deployment)
    answers = []
    for cycle in range(1, cycles + 1):
        churn(deployment, users, pictures, cycle)
        deployment.converge()
        cycle_answers = []
        for query in queries:
            view = deployment.query(HUB, query)
            deployment.converge()
            cycle_answers.append(sorted(view.rows()))
            view.close()
        answers.append(cycle_answers)
    substitutions = total_substitutions(deployment) - baseline
    elapsed = time.perf_counter() - start
    return answers, substitutions, elapsed


def run_benchmark(users: int, views: int, cycles: int, pictures: int,
                  ratings: int) -> dict:
    standing_answers, standing_subs, standing_time = run_standing(
        users, views, cycles, pictures, ratings)
    scratch_answers, scratch_subs, scratch_time = run_scratch(
        users, views, cycles, pictures, ratings)

    if standing_answers != scratch_answers:
        raise AssertionError(
            "live-view divergence: standing views and per-cycle re-runs "
            "returned different answers"
        )
    ratio = scratch_subs / standing_subs if standing_subs else float("inf")
    return {
        "experiment": "LIVE-VIEWS",
        "metadata": bench_metadata(repeats=1, parameters={
            "users": users, "views": views, "cycles": cycles,
            "pictures": pictures, "ratings": ratings,
        }),
        "standing": {
            "substitutions": standing_subs,
            "elapsed_seconds": round(standing_time, 6),
        },
        "scratch": {
            "substitutions": scratch_subs,
            "elapsed_seconds": round(scratch_time, 6),
        },
        "answers_identical": True,
        "answers_per_cycle": [sum(len(rows) for rows in cycle)
                              for cycle in standing_answers],
        "substitutions_reduction": round(ratio, 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=6,
                        help="attendee peers pushing ratings (default 6)")
    parser.add_argument("--views", type=int, default=12,
                        help="standing pages kept open (default 12)")
    parser.add_argument("--cycles", type=int, default=10,
                        help="churn cycles (default 10)")
    parser.add_argument("--pictures", type=int, default=40,
                        help="seeded pictures at the hub (default 40)")
    parser.add_argument("--ratings", type=int, default=120,
                        help="seeded ratings at the hub (default 120)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "BENCH_live_views.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    result = run_benchmark(args.users, args.views, args.cycles,
                           args.pictures, args.ratings)

    columns = ["regime", "substitutions", "elapsed (s)"]
    rows = [
        ["standing views", result["standing"]["substitutions"],
         result["standing"]["elapsed_seconds"]],
        ["re-run per cycle", result["scratch"]["substitutions"],
         result["scratch"]["elapsed_seconds"]],
    ]
    print(format_table(columns, rows, title="[LIVE-VIEWS] "
                       f"{args.views} pages, {args.users} users, "
                       f"{args.cycles} cycles"))
    print(f"substitution reduction: {result['substitutions_reduction']}x "
          f"(answers identical: {result['answers_identical']})")

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
