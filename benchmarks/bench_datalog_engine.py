"""ENGINE — the datalog substrate: naive vs seminaive evaluation.

The WebdamLog engine runs every peer's local fixpoint on the
:mod:`repro.datalog` substrate (the reproduction's stand-in for Bud).  This
benchmark validates the substrate's performance shape on the classic
transitive-closure and same-generation workloads: seminaive evaluation does
strictly less re-derivation work than naive evaluation, and the gap widens
with the recursion depth.
"""

import pytest

from benchmarks.conftest import record_counters
from repro.datalog.naive import NaiveEvaluator
from repro.datalog.program import Database, DatalogProgram, atom, rule
from repro.datalog.seminaive import SeminaiveEvaluator, incremental_insert


def transitive_closure_program() -> DatalogProgram:
    program = DatalogProgram()
    program.add_rule(rule(atom("path", "?x", "?y"), atom("edge", "?x", "?y")))
    program.add_rule(rule(atom("path", "?x", "?z"),
                          atom("path", "?x", "?y"), atom("edge", "?y", "?z")))
    return program


def chain_database(length: int) -> Database:
    database = Database()
    for index in range(length):
        database.add("edge", (index, index + 1))
    return database


@pytest.mark.parametrize("evaluator_name,evaluator_class", [
    ("naive", NaiveEvaluator), ("seminaive", SeminaiveEvaluator)])
@pytest.mark.parametrize("chain", [20, 60])
def test_engine_transitive_closure(benchmark, report, evaluator_name, evaluator_class, chain):
    database = chain_database(chain)
    evaluator = evaluator_class(transitive_closure_program())

    result = benchmark(lambda: evaluator.run(database))
    expected = chain * (chain + 1) // 2
    assert result.size("path") == expected
    stats = evaluator_class(transitive_closure_program()).evaluate(database.copy())
    record_counters(benchmark, evaluator=evaluator_name, chain=chain,
                    iterations=stats.iterations, firings=stats.rule_firings)
    report("ENGINE (TC)", ["evaluator", "chain length", "path facts", "iterations",
                           "rule firings"],
           [[evaluator_name, chain, expected, stats.iterations, stats.rule_firings]])


def test_engine_seminaive_beats_naive_on_deep_recursion(benchmark, report):
    """Wall-clock comparison on a longer chain (the ablation DESIGN.md calls out)."""
    import time

    database = chain_database(80)

    def run_both():
        start = time.perf_counter()
        NaiveEvaluator(transitive_closure_program()).run(database)
        naive_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        SeminaiveEvaluator(transitive_closure_program()).run(database)
        semi_elapsed = time.perf_counter() - start
        return naive_elapsed, semi_elapsed

    naive_elapsed, semi_elapsed = benchmark.pedantic(run_both, rounds=2, iterations=1)
    assert semi_elapsed < naive_elapsed
    record_counters(benchmark, naive_seconds=naive_elapsed, seminaive_seconds=semi_elapsed,
                    speedup=naive_elapsed / semi_elapsed)
    report("ENGINE (ablation)", ["chain length", "naive (s)", "seminaive (s)", "speedup"],
           [[80, round(naive_elapsed, 4), round(semi_elapsed, 4),
             round(naive_elapsed / semi_elapsed, 2)]])


def test_engine_incremental_maintenance(benchmark, report):
    """Incremental insertion vs recomputation from scratch."""
    import time

    program = transitive_closure_program()
    base = chain_database(60)
    SeminaiveEvaluator(program).evaluate(base)

    def run():
        database = base.copy()
        start = time.perf_counter()
        incremental_insert(program, database, [("edge", (60, 61))])
        incremental_elapsed = time.perf_counter() - start
        fresh = chain_database(61)
        start = time.perf_counter()
        SeminaiveEvaluator(program).evaluate(fresh)
        full_elapsed = time.perf_counter() - start
        assert database.relation("path") == fresh.relation("path")
        return incremental_elapsed, full_elapsed

    incremental_elapsed, full_elapsed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert incremental_elapsed < full_elapsed
    record_counters(benchmark, incremental_seconds=incremental_elapsed,
                    full_seconds=full_elapsed)
    report("ENGINE (incremental)", ["new edges", "incremental (s)", "full recomputation (s)"],
           [[1, round(incremental_elapsed, 4), round(full_elapsed, 4)]])
