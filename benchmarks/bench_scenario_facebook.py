"""SCEN-FB — "Interaction via Facebook".

The sigmod peer publishes to the SigmodFB group exactly the pictures whose
owners authorised Facebook publication, and retrieves the group's comments
and tags back.  The benchmark sweeps the authorisation fraction p and checks
that the number of photos ending up in the group tracks p, while
unauthorised pictures never leave the sigmod peer.
"""

import pytest

from benchmarks.conftest import record_counters
from repro.wepic.scenario import build_demo_scenario
from repro.workloads.generator import WorkloadConfig, generate_workload, load_workload


def run_facebook_scenario(authorization_fraction: float, pictures_per_attendee: int = 4):
    config = WorkloadConfig(attendees=3, pictures_per_attendee=pictures_per_attendee,
                            ratings_per_attendee=0, comments_per_attendee=0,
                            tags_per_attendee=0, selection_fraction=0.0,
                            facebook_authorization_fraction=authorization_fraction,
                            seed=17)
    workload = generate_workload(config)
    scenario = build_demo_scenario(attendees=workload.attendees, pictures_per_attendee=0)
    load_workload(scenario, workload, apply_selections=False)
    summary = scenario.run(max_rounds=100)
    authorized = sum(len(ids) for ids in workload.facebook_authorizations.values())
    return scenario, workload, summary, authorized


@pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
def test_scen_fb_authorization_sweep(benchmark, report, fraction):
    scenario, workload, summary, authorized = benchmark.pedantic(
        lambda: run_facebook_scenario(fraction), rounds=2, iterations=1)
    in_group = len(scenario.facebook.photos_in_group("sigmod"))
    at_sigmod = len(scenario.sigmod_pictures())
    # Exactly the authorised pictures reach the group; everything reaches sigmod.
    assert in_group == authorized
    assert at_sigmod == workload.total_pictures()
    record_counters(benchmark, authorized=authorized, in_group=in_group,
                    rounds=summary.round_count)
    report("SCEN-FB", ["authorization fraction", "total pictures", "authorized",
                       "in SigmodFB group", "at sigmod", "rounds"],
           [[fraction, workload.total_pictures(), authorized, in_group, at_sigmod,
             summary.round_count]])


def test_scen_fb_comments_flow_back(benchmark, report):
    """Comments and tags added on Facebook are retrieved by the sigmod peer."""

    def run():
        scenario, _workload, _summary, _authorized = run_facebook_scenario(1.0, 2)
        photos = scenario.facebook.photos_in_group("sigmod")
        for photo in photos:
            scenario.facebook.add_comment(photo.photo_id, "Julia", "nice")
            scenario.facebook.add_tag(photo.photo_id, "Serge")
        scenario.run(max_rounds=60)
        return scenario, len(photos)

    scenario, photo_count = benchmark.pedantic(run, rounds=2, iterations=1)
    comments = len(scenario.sigmod_peer.query("comments"))
    tags = len(scenario.sigmod_peer.query("tags"))
    assert comments == photo_count
    assert tags == photo_count
    record_counters(benchmark, photos=photo_count, comments=comments, tags=tags)
    report("SCEN-FB (retrieval)", ["group photos", "comments at sigmod", "tags at sigmod"],
           [[photo_count, comments, tags]])
