#!/usr/bin/env python3
"""The full Wepic demonstration of the paper (Figure 2 topology).

Walks through the demo script of Section 4:

1. three peers (Émilien, Jules, the sigmod cloud peer) plus the SigmodFB
   Facebook-group wrapper;
2. interaction via Facebook — an authorised upload propagates
   Émilien → sigmod → SigmodFB, and comments flow back;
3. customising rules — Jules keeps only the pictures rated 5;
4. control of delegation — Émilien installs a rule at Jules' peer only after
   Jules approves it;
5. interaction via the Web — an audience member launches their own peer.

The scenario itself is assembled through :mod:`repro.api` (one builder chain
inside :func:`~repro.wepic.scenario.build_demo_scenario`); this script drives
it and observes it through the same facade — subscriptions instead of state
poking.

Run with::

    python examples/wepic_demo.py
"""

from repro.wepic import build_demo_scenario


def main() -> None:
    scenario = build_demo_scenario(pictures_per_attendee=3, control_delegation=True)
    jules = scenario.app("Jules")
    emilien = scenario.app("Emilien")

    # ---------------------------------------------------------------- #
    print("=== Setup: three peers + the SigmodFB group (Figure 2) ===")
    scenario.run()
    print(f"peers: {', '.join(scenario.api.peer_names())}")
    print(f"pictures at the sigmod peer: {len(scenario.sigmod_pictures())}")

    # ---------------------------------------------------------------- #
    print("\n=== Interaction via Facebook ===")
    # Watch comments flowing back from the group to the sigmod peer.
    scenario.subscribe(
        "comments",
        lambda fact: print(f"  [subscription] comment reached sigmod: {fact}"),
        peer=scenario.sigmod_peer.name,
    )
    picture = emilien.upload_picture(name="keynote.jpg", picture_id=100)
    emilien.authorize_facebook(picture)
    scenario.run()
    group_photos = scenario.facebook.photos_in_group("sigmod")
    print(f"photos in the SigmodFB group: {[p.name for p in group_photos]}")
    photo = group_photos[0]
    scenario.facebook.add_comment(photo.photo_id, "Julia", "great keynote!")
    scenario.run()
    comments = scenario.api.query(scenario.sigmod_peer.name, "comments")
    print(f"comments retrieved back to sigmod: {[f.values[2] for f in comments]}")

    # ---------------------------------------------------------------- #
    print("\n=== Viewing attendee pictures (Figure 1) and customising rules ===")
    pictures = emilien.local_pictures()
    emilien.rate_picture(pictures[0].picture_id, 5)
    emilien.rate_picture(pictures[1].picture_id, 3)
    jules.select_attendee("Emilien")
    scenario.run()
    # With control of delegation on, Émilien must first accept Jules' delegations.
    emilien.peer.approve_all_delegations("Jules")
    scenario.run()
    print(f"attendee pictures at Jules: {[p.name for p in jules.attendee_pictures()]}")
    jules.restrict_to_rating(5)
    scenario.run()
    emilien.peer.approve_all_delegations("Jules")
    scenario.run()
    print(f"after the rating-5 filter:  {[p.name for p in jules.attendee_pictures()]}")

    # ---------------------------------------------------------------- #
    print("\n=== Control of delegation (Figure 3) ===")
    emilien.add_rule("julesPictures@Emilien($n) :- pictures@Jules($i, $n, $o, $d)")
    scenario.run()
    pending = jules.pending_delegations()
    print("pending at Jules:", [p.describe() for p in pending])
    for p in pending:
        jules.approve_delegation(p.delegation_id)
    scenario.run()
    print(f"Émilien now sees {len(emilien.peer.query('julesPictures'))} of Jules' pictures")

    # ---------------------------------------------------------------- #
    print("\n=== Interaction via the Web: a guest peer joins ===")
    guest = scenario.add_attendee("Guest", pictures=1)
    guest.select_attendee("Emilien")
    scenario.run()
    emilien.peer.approve_all_delegations("Guest")
    scenario.run()
    print(f"the guest sees {len(guest.attendee_pictures())} of Émilien's pictures")

    # ---------------------------------------------------------------- #
    print("\n=== Final screen of Jules (headless UI) ===")
    print(scenario.ui("Jules").render())

    totals = scenario.api.totals()
    print("\nsystem totals:", totals)


if __name__ == "__main__":
    main()
