#!/usr/bin/env python3
"""Quickstart: two WebdamLog peers and one delegation.

This is the paper's running example reduced to its essence: Jules selects
Émilien as an interesting attendee, and a single WebdamLog rule — using
*delegation* — gathers Émilien's pictures into Jules' ``attendeePictures``
view without ever centralising the data.

Run with::

    python examples/quickstart.py
"""

from repro import WebdamLogSystem


def main() -> None:
    system = WebdamLogSystem()
    jules = system.add_peer("Jules")
    emilien = system.add_peer("Emilien")

    # Jules' program: one declaration block and the delegation rule from the paper.
    jules.load_program("""
    collection extensional persistent selectedAttendee@Jules(attendee);
    collection intensional attendeePictures@Jules(id, name, owner, data);

    fact selectedAttendee@Jules("Emilien");

    rule attendeePictures@Jules($id, $name, $owner, $data) :-
        selectedAttendee@Jules($attendee),
        pictures@$attendee($id, $name, $owner, $data);
    """)

    # Émilien's program: just his local pictures.
    emilien.load_program("""
    collection extensional persistent pictures@Emilien(id, name, owner, data);
    fact pictures@Emilien(1, "sea.jpg",  "Emilien", "100110");
    fact pictures@Emilien(2, "boat.jpg", "Emilien", "111000");
    """)

    # Run the network of peers until nothing moves any more.
    summary = system.run_until_quiescent()
    print(f"converged in {summary.round_count} rounds, "
          f"{system.network.stats.messages_sent} messages exchanged\n")

    print("Rule installed at Émilien by delegation:")
    for delegation in emilien.installed_delegations():
        print(f"  [from {delegation.delegator}] {delegation.rule}")

    print("\nattendeePictures@Jules:")
    for fact in jules.query("attendeePictures"):
        print(f"  {fact}")

    # Deselecting Émilien retracts the delegation and empties the view.
    jules.delete_fact('selectedAttendee@Jules("Emilien")')
    system.run_until_quiescent()
    print("\nafter deselecting Émilien:")
    print(f"  attendeePictures@Jules = {jules.query('attendeePictures')}")
    print(f"  delegations at Émilien = {len(emilien.installed_delegations())}")


if __name__ == "__main__":
    main()
