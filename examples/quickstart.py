#!/usr/bin/env python3
"""Quickstart: two WebdamLog peers and one delegation, via ``repro.api``.

This is the paper's running example reduced to its essence: Jules selects
Émilien as an interesting attendee, and a single WebdamLog rule — using
*delegation* — gathers Émilien's pictures into Jules' ``attendeePictures``
view without ever centralising the data.

The whole deployment is described by one builder chain; results are read
through query handles and a subscription, never through engine internals.

Run with::

    python examples/quickstart.py
"""

from repro.api import system


def main() -> None:
    deployment = (
        system()
        # Event-driven execution: only peers with pending work run stages.
        # Swap for "lockstep" (the default) to reproduce the paper's global
        # rounds, or "async" to drive the deployment from asyncio.
        .scheduler("reactive")
        # Jules' program: one declaration block and the delegation rule
        # from the paper.
        .peer("Jules").program("""
        collection extensional persistent selectedAttendee@Jules(attendee);
        collection intensional attendeePictures@Jules(id, name, owner, data);

        fact selectedAttendee@Jules("Emilien");

        rule attendeePictures@Jules($id, $name, $owner, $data) :-
            selectedAttendee@Jules($attendee),
            pictures@$attendee($id, $name, $owner, $data);
        """)
        # Émilien's program: just his local pictures.
        .peer("Emilien").program("""
        collection extensional persistent pictures@Emilien(id, name, owner, data);
        fact pictures@Emilien(1, "sea.jpg",  "Emilien", "100110");
        fact pictures@Emilien(2, "boat.jpg", "Emilien", "111000");
        """)
        .build()
    )

    # Watch the view fill up: the callback fires once per derived fact.
    deployment.subscribe(
        "attendeePictures",
        lambda fact: print(f"  [subscription] + {fact}"),
        peer="Jules",
    )

    # Run the network of peers until nothing moves any more.
    print("running to convergence:")
    summary = deployment.converge()
    print(f"converged in {summary.round_count} cycles "
          f"({summary.total_stages()} peer stages, scheduler "
          f"{summary.scheduler!r}), "
          f"{deployment.stats.messages_sent} messages exchanged\n")

    print("Rule installed at Émilien by delegation:")
    for delegation in deployment.peer("Emilien").installed_delegations():
        print(f"  [from {delegation.delegator}] {delegation.rule}")

    view = deployment.query("Jules", "attendeePictures")
    print("\nattendeePictures@Jules:")
    for fact in view.sorted():
        print(f"  {fact}")

    # Deselecting Émilien retracts the delegation and empties the view —
    # the same query handle reflects the change.
    deployment.peer("Jules").delete('selectedAttendee@Jules("Emilien")')
    deployment.converge()
    print("\nafter deselecting Émilien:")
    print(f"  attendeePictures@Jules = {view.facts()}")
    print(f"  delegations at Émilien = "
          f"{len(deployment.peer('Emilien').installed_delegations())}")


if __name__ == "__main__":
    main()
