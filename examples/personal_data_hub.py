#!/usr/bin/env python3
"""Joe's personal data hub — the motivating example of the introduction.

"Consider Joe, a typical Web user who has a blog, a Facebook account, a
Dropbox account, and also stores data on his smartphone and laptop.  Joe is a
movie fan and he wants to post on his blog a review of the last movie he
watched.  He also wishes to advertise his review to his Facebook friends and
to include a link to his Dropbox folder where the movie has been uploaded."

This example builds exactly that setup with one ``repro.api`` builder chain:
Joe's laptop is a peer, his blog is a peer, and his Facebook and Dropbox
accounts are wrapper pseudo-peers over simulated services.  Three rules
automate the whole flow.

Run with::

    python examples/personal_data_hub.py
"""

from repro.api import system
from repro.core.facts import Fact
from repro.wrappers.dropbox import DropboxService, DropboxWrapper
from repro.wrappers.facebook import FacebookService, FacebookUserWrapper


def main() -> None:
    facebook = FacebookService()
    dropbox = DropboxService()

    # Joe's Facebook friends (who should see the advert).
    facebook.add_user("Joe")
    for friend in ("Alice", "Bob"):
        facebook.add_user(friend)
        facebook.add_friendship("Joe", friend)

    deployment = (
        system()
        # Joe's laptop: three rules automate the whole workflow.
        .peer("JoeLaptop").program("""
        collection extensional persistent reviews@JoeLaptop(movie, text);
        collection extensional persistent movies@JoeLaptop(movie, file, size);

        // 1. every review written on the laptop is posted on the blog;
        rule posts@JoeBlog($movie, $text) :- reviews@JoeLaptop($movie, $text);

        // 2. the movie file is uploaded to Dropbox;
        rule files@JoeDropbox($file, $movie, $size) :- movies@JoeLaptop($movie, $file, $size);

        // 3. each Facebook friend gets a notification pointing at the blog post.
        rule notify@JoeLaptop($friend, $movie) :-
            reviews@JoeLaptop($movie, $text),
            friends@JoeFB($me, $friend);
        """)
        .peer("JoeBlog")
        .peer("JoeFB").wrapper(FacebookUserWrapper(facebook, "Joe", peer_name="JoeFB"))
        .peer("JoeDropbox").wrapper(DropboxWrapper(dropbox, "Joe", peer_name="JoeDropbox"))
        .build()
    )

    # Joe watches a movie and writes his review — one insert each.
    laptop = deployment.peer("JoeLaptop")
    laptop.insert(Fact("reviews", "JoeLaptop",
                       ("Alphaville", "A strange and wonderful movie.")))
    laptop.insert(Fact("movies", "JoeLaptop",
                       ("Alphaville", "/movies/alphaville.mkv", 700)))

    summary = deployment.converge()
    print(f"converged in {summary.round_count} rounds\n")

    print("Blog posts (posts@JoeBlog):")
    for fact in deployment.query("JoeBlog", "posts"):
        print(f"  {fact}")

    print("\nDropbox folder (simulated service):")
    for record in dropbox.files_of("Joe"):
        print(f"  {record.path} ({record.size} MB)")

    print("\nFriends notified (notify@JoeLaptop):")
    for fact in deployment.query("JoeLaptop", "notify").sorted():
        print(f"  {fact}")

    print("\nMessages exchanged:", deployment.stats.messages_sent)


if __name__ == "__main__":
    main()
