#!/usr/bin/env python3
"""Running peers as separate OS processes, through the same builder.

The paper's demo runs peers on different machines.  The closest local
equivalent is one OS process per peer, exchanging wire-encoded messages.
Selecting it is one builder call — ``backend("processes")`` — which proves
that the deployment description is independent of the runtime backend.

Run with::

    python examples/multiprocess_peers.py
"""

from repro.api import system

JULES_PROGRAM = """
collection extensional persistent selectedAttendee@Jules(attendee);
collection intensional attendeePictures@Jules(id, name);
fact selectedAttendee@Jules("Emilien");
rule attendeePictures@Jules($id, $n) :-
    selectedAttendee@Jules($a), pictures@$a($id, $n);
"""

EMILIEN_PROGRAM = """
collection extensional persistent pictures@Emilien(id, name);
fact pictures@Emilien(1, "sea.jpg");
fact pictures@Emilien(2, "boat.jpg");
fact pictures@Emilien(3, "poster.jpg");
"""


def main() -> None:
    builder = (system()
               .backend("processes")
               .peer("Jules").program(JULES_PROGRAM)
               .peer("Emilien").program(EMILIEN_PROGRAM)
               .done())
    with builder.build() as deployment:
        print("peers running as OS processes:", ", ".join(deployment.peer_names()))

        rounds = deployment.run(max_rounds=20)
        print(f"converged in {rounds} rounds, "
              f"{deployment.messages_routed} messages routed between processes\n")

        print("attendeePictures@Jules (computed in Jules' process):")
        for fact in deployment.query("Jules", "attendeePictures").sorted():
            print(f"  {fact}")

        counts = deployment.counts("Emilien")
        print(f"\ndelegations installed in Émilien's process: "
              f"{counts['installed_delegations']}")


if __name__ == "__main__":
    main()
