#!/usr/bin/env python3
"""Running peers as separate OS processes.

The paper's demo runs peers on different machines.  The closest local
equivalent is one OS process per peer, exchanging wire-encoded messages —
this example runs the quickstart's delegation scenario on the
:class:`~repro.runtime.processes.ProcessNetwork` transport.

Run with::

    python examples/multiprocess_peers.py
"""

from repro.runtime.processes import ProcessNetwork

JULES_PROGRAM = """
collection extensional persistent selectedAttendee@Jules(attendee);
collection intensional attendeePictures@Jules(id, name);
fact selectedAttendee@Jules("Emilien");
rule attendeePictures@Jules($id, $n) :-
    selectedAttendee@Jules($a), pictures@$a($id, $n);
"""

EMILIEN_PROGRAM = """
collection extensional persistent pictures@Emilien(id, name);
fact pictures@Emilien(1, "sea.jpg");
fact pictures@Emilien(2, "boat.jpg");
fact pictures@Emilien(3, "poster.jpg");
"""


def main() -> None:
    with ProcessNetwork() as network:
        network.spawn_peer("Jules", JULES_PROGRAM)
        network.spawn_peer("Emilien", EMILIEN_PROGRAM)
        print("peers running as OS processes:", ", ".join(network.peer_names()))

        rounds = network.run_until_quiescent(max_rounds=20)
        print(f"converged in {rounds} rounds, "
              f"{network.messages_routed} messages routed between processes\n")

        print("attendeePictures@Jules (computed in Jules' process):")
        for fact in sorted(network.query("Jules", "attendeePictures"), key=str):
            print(f"  {fact}")

        counts = network.counts("Emilien")
        print(f"\ndelegations installed in Émilien's process: "
              f"{counts['installed_delegations']}")


if __name__ == "__main__":
    main()
