"""Compilation of rule bodies into single SQL statements.

When a peer's backend is SQL-capable, a rule body whose literals are all
*store-resident* — constant relation/peer positions, located at the local
peer, with no ephemeral provided facts mixed into any referenced relation —
is compiled into **one** ``SELECT`` executed inside the store:

* each positive literal becomes an entry in the ``FROM`` list (the union of
  the extensional and derived tables of its relation);
* a constant argument becomes a bound-argument probe
  (``b0.t2 = ? AND b0.v2 = ?``);
* a variable occurring in several literals becomes a pairwise join condition
  over its (tag, value) column pair — type-strict, like the hash indexes;
* a negated literal becomes a correlated ``NOT EXISTS`` subquery
  (stratification is handled by the engine exactly as before — the compiler
  only sees one rule at a time);
* the ``SELECT DISTINCT`` output columns are the (tag, value) pairs of the
  head variables, decoded back into one substitution per row.

The compiler is deliberately conservative: anything it cannot prove
equivalent to the tuple-at-a-time Python evaluation (variable relation/peer
positions, remote literals, provided facts, provenance recording) returns
``None`` and the evaluator falls back literal by literal.  The aggregate
entry point plays the same role for the live-view read path: ``GROUP BY``
pushdown of ``count/sum/min/max/avg`` with exactness guards (integer-only
SUM/AVG, single-typed MIN/MAX) so pushed-down answers are bit-identical to
:func:`repro.datalog.aggregation.compute_aggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.rules import Atom, Rule
from repro.core.terms import Constant, Variable
from repro.datalog.aggregation import Aggregate
from repro.store.backend import DERIVED_NAMESPACE, STORE_NAMESPACE
from repro.store.sqlite import (
    EXACT_SUM_TAGS,
    NUMERIC_TAGS,
    decode_value,
    encode_value,
)

#: Sentinel for a body that is *provably empty* (a positive literal reads a
#: relation with no facts at all) — compiled, but no statement needs to run.
_EMPTY = object()


@dataclass
class CompiledBody:
    """A rule body compiled to one SQL statement."""

    sql: str
    params: Tuple
    head_vars: Tuple[Variable, ...]

    def decode(self, row) -> Dict[Variable, Constant]:
        return {
            var: Constant(decode_value(row[2 * i], row[2 * i + 1]))
            for i, var in enumerate(self.head_vars)
        }


class BodyPushdown:
    """Compiles and executes whole rule bodies against a SQL backend.

    Bound to one :class:`~repro.core.state.PeerState`; the engine hands an
    instance to the :class:`~repro.core.evaluation.RuleEvaluator`, whose
    ``evaluate_rule`` tries :meth:`run` first and falls back to per-literal
    evaluation when it returns ``None``.
    """

    def __init__(self, state):
        self.state = state
        self.backend = state.backend

    # ------------------------------------------------------------------ #
    # whole-body pushdown
    # ------------------------------------------------------------------ #

    def run(self, rule: Rule,
            order: Optional[Sequence[int]] = None
            ) -> Optional[List[Dict[Variable, Constant]]]:
        """Evaluate ``rule``'s body in the store.

        Returns one substitution (over the head variables) per distinct
        result row, or ``None`` when the body is not store-resident and the
        caller must fall back to tuple-at-a-time evaluation.  ``order`` is an
        optional planner-chosen permutation of body positions: the ``FROM``
        list (and SQLite's join nesting, which follows it) is emitted in that
        order.  Join conditions are symmetric, so results are identical.
        """
        compiled = self.compile(rule, order=order)
        if compiled is None:
            return None
        if compiled is _EMPTY:
            return []
        rows = self.backend.execute(compiled.sql, compiled.params).fetchall()
        self.backend.counters["compiled_statements"] += 1
        return [compiled.decode(row) for row in rows]

    def compile(self, rule: Rule, order: Optional[Sequence[int]] = None):
        """Compile the body of ``rule``; ``None`` means "not compilable"."""
        local_peer = self.state.peer
        for atom in rule.body:
            relation = atom.relation_constant()
            peer = atom.peer_constant()
            if relation is None or peer is None or peer != local_peer:
                return None
            if self.state.provided_count(relation, peer):
                # Provided facts live outside the store tables; mixing them
                # in would need a per-stage temp table — fall back instead.
                return None

        params: List[object] = []
        from_items: List[str] = []
        conds: List[str] = []
        var_first: Dict[Variable, Tuple[str, int]] = {}

        if order is not None and len(order) == len(rule.body):
            body = [rule.body[position] for position in order]
        else:
            body = list(rule.body)
        positives = [a for a in body if not a.negated]
        negatives = [a for a in body if a.negated]

        for index, atom in enumerate(positives):
            ref = self._source_ref(atom)
            if ref is None:
                return _EMPTY
            alias = f"b{index}"
            from_items.append(f"{ref} AS {alias}")
            self._constrain(atom, alias, conds, params, var_first, var_first)

        for index, atom in enumerate(negatives):
            ref = self._source_ref(atom)
            if ref is None:
                # The negated relation holds no facts: the literal is always
                # satisfied and contributes no condition.
                continue
            alias = f"n{index}"
            inner_conds: List[str] = []
            # Variables not bound by a positive literal (anonymous, or unsafe
            # leftovers) are unconstrained, but repeated occurrences inside
            # the same negated literal must still agree with each other.
            local_first: Dict[Variable, Tuple[str, int]] = {}
            self._constrain(atom, alias, inner_conds, params, var_first, local_first)
            subquery = f"SELECT 1 FROM {ref} AS {alias}"
            if inner_conds:
                subquery += f" WHERE {' AND '.join(inner_conds)}"
            conds.append(f"NOT EXISTS ({subquery})")

        head_vars = rule.head.variables()
        select_cols: List[str] = []
        for var in head_vars:
            first = var_first.get(var)
            if first is None:
                return None  # unsafe rule: let the Python evaluator raise.
            alias, position = first
            select_cols.append(f"{alias}.t{position}")
            select_cols.append(f"{alias}.v{position}")

        if select_cols:
            select = f"SELECT DISTINCT {', '.join(select_cols)}"
        else:
            # Ground head: existence is all that matters.
            select = "SELECT 1"
        sql = select
        if from_items:
            sql += f" FROM {', '.join(from_items)}"
        if conds:
            sql += f" WHERE {' AND '.join(conds)}"
        if not select_cols:
            sql += " LIMIT 1"
        return CompiledBody(sql=sql, params=tuple(params), head_vars=head_vars)

    def _source_ref(self, atom: Atom) -> Optional[str]:
        """SQL table expression for a literal's relation, or ``None`` if the
        relation holds no facts (no table in either namespace, or only tables
        of a different arity — which can never match the literal)."""
        relation = atom.relation_constant()
        peer = atom.peer_constant()
        tables = []
        for namespace in (STORE_NAMESPACE, DERIVED_NAMESPACE):
            ref = self.backend.table_ref(namespace, relation, peer)
            if ref is not None and ref[1] == atom.arity:
                tables.append(ref[0])
        if not tables:
            return None
        if atom.arity:
            cols = ", ".join(f"t{i}, v{i}" for i in range(atom.arity))
        else:
            cols = "u"
        if len(tables) == 1:
            return f'(SELECT {cols} FROM "{tables[0]}")'
        return (f'(SELECT {cols} FROM "{tables[0]}" '
                f'UNION SELECT {cols} FROM "{tables[1]}")')

    @staticmethod
    def _constrain(atom: Atom, alias: str, conds: List[str], params: List[object],
                   var_first: Dict[Variable, Tuple[str, int]],
                   bind_into: Dict[Variable, Tuple[str, int]]) -> None:
        """Emit equality conditions for one literal's argument positions.

        First occurrences of variables are recorded in ``bind_into`` (the
        global map for positive literals, a literal-local map for negated
        ones — a negated literal must not bind variables for the rest of the
        body, matching left-to-right semantics).
        """
        for position, term in enumerate(atom.args):
            if isinstance(term, Constant):
                tag, stored = encode_value(term.value)
                conds.append(f"{alias}.t{position} = ?")
                params.append(tag)
                conds.append(f"{alias}.v{position} = ?")
                params.append(stored)
                continue
            first = var_first.get(term)
            if first is None and bind_into is not var_first:
                first = bind_into.get(term)
            if first is None:
                bind_into[term] = (alias, position)
            else:
                other_alias, other_position = first
                conds.append(f"{alias}.t{position} = {other_alias}.t{other_position}")
                conds.append(f"{alias}.v{position} = {other_alias}.v{other_position}")

    # ------------------------------------------------------------------ #
    # GROUP BY pushdown for the live-view read path
    # ------------------------------------------------------------------ #

    def aggregate(self, relation: str, peer: str, width: int,
                  group_positions: Sequence[int],
                  specs: Dict[int, Aggregate]) -> Optional[List[Tuple]]:
        """Compute a grouped aggregate over ``relation@peer`` inside the store.

        ``width`` is the width of the *output* tuples (group keys at
        ``group_positions``, aggregate results at the spec positions) — the
        stored relation may be wider (aggregate views keep support columns
        whose only effect is row multiplicity, exactly like the Python
        grouping).  Returns one output tuple per group, or ``None`` when
        pushdown cannot be proven bit-identical to the Python path — the
        caller then aggregates in Python.
        """
        if peer != self.state.peer:
            return None
        if self.state.provided_count(relation, peer):
            return None
        schema = self.state.schemas.get(relation, peer)
        if schema is None:
            return []
        arity = schema.arity
        if width > arity or any(p >= arity for p in group_positions):
            return None
        sources: List[str] = []
        for namespace in (STORE_NAMESPACE, DERIVED_NAMESPACE):
            ref = self.backend.table_ref(namespace, relation, peer)
            if ref is None or ref[1] != arity:
                continue
            count = self.backend.execute(
                f'SELECT COUNT(*) FROM "{ref[0]}"').fetchone()[0]
            if count:
                sources.append(ref[0])
        if not sources:
            return []
        if len(sources) > 1:
            # A fact visible through both stores is counted twice by the
            # Python path (fact_view concatenates) — don't risk diverging.
            return None
        table = sources[0]

        min_max_tags: Dict[int, str] = {}
        for position, function in specs.items():
            if function is Aggregate.COUNT:
                continue
            if position >= arity:
                return None
            tags = {row[0] for row in self.backend.execute(
                f'SELECT DISTINCT t{position} FROM "{table}"')}
            if function in (Aggregate.SUM, Aggregate.AVG):
                # Integer arithmetic is associative; float accumulation order
                # is not — only push down exactly-representable sums.
                if not tags <= EXACT_SUM_TAGS:
                    return None
            else:  # MIN / MAX need one tag to decode the winner's type.
                if len(tags) != 1 or not tags <= (NUMERIC_TAGS | {"str"}):
                    return None
                min_max_tags[position] = next(iter(tags))

        select: List[str] = []
        for g in group_positions:
            select.append(f"t{g}")
            select.append(f"v{g}")
        agg_positions = sorted(specs)
        for p in agg_positions:
            function = specs[p]
            if function is Aggregate.COUNT:
                select.append("COUNT(*)")
            elif function is Aggregate.SUM:
                select.append(f"SUM(v{p})")
            elif function is Aggregate.AVG:
                select.append(f"SUM(v{p}) * 1.0 / COUNT(*)")
            elif function is Aggregate.MIN:
                select.append(f"MIN(v{p})")
            else:
                select.append(f"MAX(v{p})")
        sql = f'SELECT {", ".join(select)} FROM "{table}"'
        if group_positions:
            group_cols = ", ".join(f"t{g}, v{g}" for g in group_positions)
            sql += f" GROUP BY {group_cols}"
        rows = self.backend.execute(sql).fetchall()
        self.backend.counters["aggregate_pushdowns"] += 1

        results: List[Tuple] = []
        base = 2 * len(group_positions)
        for row in rows:
            output: List[object] = [None] * width
            for slot, g in enumerate(group_positions):
                output[g] = decode_value(row[2 * slot], row[2 * slot + 1])
            for offset, p in enumerate(agg_positions):
                function = specs[p]
                raw = row[base + offset]
                if function is Aggregate.COUNT:
                    output[p] = int(raw)
                elif function is Aggregate.AVG:
                    output[p] = float(raw)
                elif function in (Aggregate.MIN, Aggregate.MAX):
                    output[p] = decode_value(min_max_tags[p], raw)
                else:  # SUM over EXACT_SUM_TAGS: SQLite returns the exact int.
                    output[p] = int(raw)
            results.append(tuple(output))
        return results
