"""The storage-backend protocol and backend resolution.

A :class:`StorageBackend` owns every table of one peer.  Tables are keyed by
``(namespace, relation, peer)`` — the engine uses two namespaces per peer,
``"store"`` for extensional base facts and ``"derived"`` for intensional
facts — plus a small ordered metadata side-store (``kind``/``key`` →
JSON payload) in which durable backends persist schemas, rules and installed
delegations so that a reopened peer can restore its program.

Backends are **per peer**: one :class:`~repro.store.sqlite.SqliteBackend` maps
to one database file, one :class:`~repro.store.memory.MemoryBackend` to one
set of Python dicts.  The backend for a peer is chosen by
:func:`resolve_backend`, either explicitly (``system().storage("sqlite",
path=...)``) or through the ``REPRO_STORE_BACKEND`` environment variable,
which is how CI runs the whole test suite once per backend.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterator, List, Optional, Protocol, Tuple, runtime_checkable

from repro.core.errors import WebdamLogError
from repro.core.schema import RelationSchema
from repro.core.terms import ConstantValue

#: Environment variable naming the default backend (``memory`` or ``sqlite``).
DEFAULT_BACKEND_ENV = "REPRO_STORE_BACKEND"

#: Table namespace holding extensional base facts.
STORE_NAMESPACE = "store"
#: Table namespace holding derived intensional facts.
DERIVED_NAMESPACE = "derived"


class StoreError(WebdamLogError):
    """Raised for storage-backend failures (unknown backend, catalog mismatch)."""


Row = Tuple[ConstantValue, ...]


@runtime_checkable
class StorageTable(Protocol):
    """Storage for the tuples of one relation.

    The contract mirrors the historical in-memory relation table exactly:
    type-strict matching (``True`` is distinct from ``1``), primary-key
    last-writer-wins replacement when the schema declares a key, and
    :meth:`scan` with positional bindings never post-filters.
    """

    schema: RelationSchema

    def __len__(self) -> int: ...

    def __contains__(self, values: Row) -> bool: ...

    def __iter__(self) -> Iterator[Row]: ...

    def insert(self, values: Row) -> Tuple[List[Row], List[Row]]:
        """Insert a tuple; return ``(inserted_rows, deleted_rows)``."""
        ...

    def delete(self, values: Row) -> bool:
        """Delete a tuple; return ``True`` if it was present."""
        ...

    def clear(self) -> List[Row]:
        """Remove every tuple; return the removed rows."""
        ...

    def scan(self, bindings: Optional[Dict[int, ConstantValue]] = None) -> Iterator[Row]:
        """Iterate over tuples matching ``{position: value}`` bindings exactly."""
        ...


@runtime_checkable
class StorageBackend(Protocol):
    """A collection of relation tables plus a durable metadata side-store."""

    #: Human-readable backend name ("memory", "sqlite").
    name: str
    #: Whether data written through this backend survives process death.
    persistent: bool
    #: Whether the SQL rule-body compiler can target this backend.
    SUPPORTS_SQL: bool

    def table(self, namespace: str, schema: RelationSchema) -> StorageTable:
        """Create-or-get the table for ``schema`` in ``namespace``."""
        ...

    def stored_relations(self, namespace: str) -> Tuple[Tuple[str, str, int], ...]:
        """``(relation, peer, arity)`` of every table already materialised in
        ``namespace`` — what a reopened peer must restore."""
        ...

    def save_meta(self, kind: str, key: str, payload: str) -> None:
        """Persist one metadata record (idempotent upsert keyed by kind+key)."""
        ...

    def delete_meta(self, kind: str, key: str) -> None:
        """Delete one metadata record."""
        ...

    def load_meta(self, kind: str) -> List[Tuple[str, str]]:
        """All ``(key, payload)`` records of ``kind`` in insertion order."""
        ...

    def commit(self) -> None:
        """Make every change since the previous commit durable (stage boundary)."""
        ...

    def close(self) -> None:
        """Commit and release resources; idempotent."""
        ...


_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9._-]")


def _safe_filename(name: str) -> str:
    """Sanitise a peer name into a filesystem-safe database filename."""
    cleaned = _UNSAFE_FILENAME.sub("_", name)
    return cleaned or "peer"


def resolve_backend(spec=None, peer: Optional[str] = None,
                    options: Optional[Dict] = None) -> StorageBackend:
    """Resolve a backend specification into a :class:`StorageBackend` instance.

    ``spec`` may be ``None`` (consult ``REPRO_STORE_BACKEND``, defaulting to
    ``memory``), a backend name, or an already-constructed backend instance
    (returned unchanged — useful in tests).  For the ``sqlite`` backend, a
    ``path`` option names a *directory*; each peer gets its own database file
    ``<path>/<peer>.db`` inside it.  Without a path the SQLite backend runs on
    a private in-memory database — same engine and SQL compilation, no
    durability — which is what the environment-variable override uses so the
    entire test suite can run against SQLite without touching disk.
    """
    options = dict(options or {})
    if spec is None:
        spec = os.environ.get(DEFAULT_BACKEND_ENV) or "memory"
    if not isinstance(spec, str):
        return spec
    name = spec.lower()
    if name in ("memory", "dict", "inmemory"):
        from repro.store.memory import MemoryBackend

        return MemoryBackend()
    if name == "sqlite":
        from repro.store.sqlite import SqliteBackend

        path = options.pop("path", None)
        db_path = None
        if path is not None:
            os.makedirs(path, exist_ok=True)
            db_path = os.path.join(path, f"{_safe_filename(peer or 'peer')}.db")
        return SqliteBackend(db_path, **options)
    raise StoreError(f"unknown storage backend {spec!r}; expected 'memory' or 'sqlite'")
