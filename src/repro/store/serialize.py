"""JSON codecs for durable peer metadata.

Durable backends persist three kinds of metadata next to the fact tables:
relation **schemas**, the peer's **own rules**, and the **delegations**
installed by remote delegators.  This module defines the JSON wire format for
those records, independent of the runtime's network serialisation so that a
database file never grows a dependency on the transport layer.

Identity is preserved exactly: rules keep their ``rule_id``/``author``/
``origin`` and delegations keep their content-hashed ``delegation_id``, which
is what makes recovery idempotent — a reopened peer re-derives the same
delegation ids its neighbours already know about.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from repro.core.delegation import InstalledDelegation
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationKind, RelationSchema
from repro.core.terms import Constant, ConstantValue, Term, Variable
from repro.store.backend import StoreError


# ---------------------------------------------------------------------- #
# values and terms
# ---------------------------------------------------------------------- #

def encode_value(value: ConstantValue):
    """Encode a constant payload as a JSON-compatible value.

    ``bytes`` and non-finite floats need escape hatches; every other allowed
    payload type (str/int/float/bool/None) round-trips through JSON natively,
    including the bool-vs-int distinction.
    """
    if isinstance(value, bytes):
        return {"$bytes": value.hex()}
    if isinstance(value, float) and not math.isfinite(value):
        return {"$float": repr(value)}
    return value


def decode_value(encoded) -> ConstantValue:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        if "$bytes" in encoded:
            return bytes.fromhex(encoded["$bytes"])
        if "$float" in encoded:
            return float(encoded["$float"])
        raise StoreError(f"unknown encoded value {encoded!r}")
    return encoded


def encode_term(term: Term) -> Dict:
    if isinstance(term, Variable):
        return {"var": term.name}
    if isinstance(term, Constant):
        return {"const": encode_value(term.value)}
    raise StoreError(f"cannot encode term {term!r}")


def decode_term(encoded: Dict) -> Term:
    if "var" in encoded:
        return Variable(encoded["var"])
    if "const" in encoded:
        return Constant(decode_value(encoded["const"]))
    raise StoreError(f"cannot decode term {encoded!r}")


# ---------------------------------------------------------------------- #
# atoms, rules, schemas, delegations
# ---------------------------------------------------------------------- #

def encode_atom(atom: Atom) -> Dict:
    return {
        "relation": encode_term(atom.relation),
        "peer": encode_term(atom.peer),
        "args": [encode_term(a) for a in atom.args],
        "negated": atom.negated,
    }


def decode_atom(encoded: Dict) -> Atom:
    return Atom(
        relation=decode_term(encoded["relation"]),
        peer=decode_term(encoded["peer"]),
        args=tuple(decode_term(a) for a in encoded["args"]),
        negated=bool(encoded.get("negated", False)),
    )


def encode_rule(rule: Rule) -> str:
    return json.dumps({
        "head": encode_atom(rule.head),
        "body": [encode_atom(a) for a in rule.body],
        "author": rule.author,
        "origin": rule.origin,
        "rule_id": rule.rule_id,
    }, sort_keys=True)


def decode_rule(payload: str) -> Rule:
    data = json.loads(payload)
    return Rule(
        head=decode_atom(data["head"]),
        body=tuple(decode_atom(a) for a in data["body"]),
        author=data.get("author"),
        origin=data.get("origin"),
        rule_id=data["rule_id"],
    )


def encode_schema(schema: RelationSchema) -> str:
    return json.dumps({
        "name": schema.name,
        "peer": schema.peer,
        "columns": list(schema.columns),
        "kind": schema.kind.value,
        "persistent": schema.persistent,
        "key": list(schema.key),
    }, sort_keys=True)


def decode_schema(payload: str) -> RelationSchema:
    data = json.loads(payload)
    return RelationSchema(
        name=data["name"],
        peer=data["peer"],
        columns=tuple(data["columns"]),
        kind=RelationKind(data["kind"]),
        persistent=bool(data["persistent"]),
        key=tuple(data["key"]),
    )


def encode_delegation(installed: InstalledDelegation) -> str:
    return json.dumps({
        "delegation_id": installed.delegation_id,
        "delegator": installed.delegator,
        "rule": json.loads(encode_rule(installed.rule)),
    }, sort_keys=True)


def decode_delegation(payload: str) -> InstalledDelegation:
    data = json.loads(payload)
    rule_data = data["rule"]
    return InstalledDelegation(
        delegation_id=data["delegation_id"],
        delegator=data["delegator"],
        rule=decode_rule(json.dumps(rule_data)),
    )
