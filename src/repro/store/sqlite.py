"""The SQLite storage backend: durable relations, WAL journaling, SQL probes.

Layout
------
One backend maps to one database file (or a private in-memory database when
no path is given).  Each relation table stores one fact per row as *paired
columns* ``(t0, v0, t1, v1, ...)`` — a type tag plus the value — so that the
type-strict semantics of :class:`~repro.core.terms.Constant` survive SQLite's
numeric affinity: ``True`` is stored as ``('bool', 1)`` and stays distinct
from ``('int', 1)``, and ``1`` stays distinct from ``1.0``.  A full-row
UNIQUE index gives set semantics via ``INSERT OR IGNORE``; additional
composite indexes are created lazily per bound-column subset, mirroring the
hash indexes of the memory backend.

Physical table names are sequential (``r0``, ``r1``, ...) and mapped from
``(namespace, relation, peer)`` through the ``_repro_catalog`` table, so
arbitrary relation names never need escaping into identifiers.  Metadata
(schemas, rules, delegations) lives in ``_repro_meta`` keyed by
``(kind, key)`` with an insertion sequence number preserving order.

Transactions
------------
Writes open an implicit transaction that the engine commits at **stage
boundaries** (`commit()` is called at the end of every ``run_stage`` and on
close).  The recovery unit is therefore the stage: a crash mid-stage rolls
back to the last completed stage, never to a torn half-stage.
:meth:`SqliteBackend.abort` simulates process death — it rolls back the open
transaction and drops the connection without committing, which is what the
crash/recovery suite uses.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.errors import SchemaError
from repro.core.schema import RelationSchema
from repro.core.terms import ConstantValue
from repro.store.backend import StoreError

# Type tags stored alongside every value.  bool must be checked before int
# (bool subclasses int).
_TAG_NONE = "none"
_TAG_BOOL = "bool"
_TAG_INT = "int"
_TAG_FLOAT = "float"
_TAG_STR = "str"
_TAG_BYTES = "bytes"

#: Tags whose stored values SQLite's SUM/MIN/MAX treat exactly like Python
#: arithmetic over the decoded values (bool is stored as 0/1, matching
#: ``True + True == 2``).
NUMERIC_TAGS = frozenset({_TAG_BOOL, _TAG_INT, _TAG_FLOAT})
#: Tags safe for exact (bit-identical) SUM/AVG pushdown: integer arithmetic
#: is associative, float accumulation order is not.
EXACT_SUM_TAGS = frozenset({_TAG_BOOL, _TAG_INT})


def encode_value(value: ConstantValue) -> Tuple[str, object]:
    """Encode one constant payload as a ``(tag, storable)`` pair."""
    if value is None:
        return _TAG_NONE, 0
    if isinstance(value, bool):
        return _TAG_BOOL, int(value)
    if isinstance(value, int):
        return _TAG_INT, value
    if isinstance(value, float):
        return _TAG_FLOAT, value
    if isinstance(value, str):
        return _TAG_STR, value
    if isinstance(value, bytes):
        return _TAG_BYTES, value
    raise StoreError(f"unsupported constant type {type(value).__name__!r}")


def decode_value(tag: str, stored) -> ConstantValue:
    """Inverse of :func:`encode_value`."""
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return bool(stored)
    if tag == _TAG_INT:
        return int(stored)
    if tag == _TAG_FLOAT:
        return float(stored)
    if tag == _TAG_STR:
        return stored
    if tag == _TAG_BYTES:
        return bytes(stored)
    raise StoreError(f"unknown value tag {tag!r}")


def _pair_columns(arity: int) -> List[str]:
    cols: List[str] = []
    for i in range(arity):
        cols.append(f"t{i}")
        cols.append(f"v{i}")
    return cols


class SqliteTable:
    """One relation stored as a SQLite table of tag/value column pairs."""

    __slots__ = ("backend", "schema", "table_name", "_arity", "_cols",
                 "_col_list", "_insert_sql", "_indexed")

    def __init__(self, backend: "SqliteBackend", table_name: str, schema: RelationSchema):
        self.backend = backend
        self.schema = schema
        self.table_name = table_name
        self._arity = schema.arity
        # Zero-arity relations get a single dummy column so the table is valid SQL.
        self._cols = _pair_columns(self._arity) or ["u"]
        self._col_list = ", ".join(self._cols)
        marks = ", ".join("?" for _ in self._cols)
        self._insert_sql = (
            f'INSERT OR IGNORE INTO "{table_name}" ({self._col_list}) VALUES ({marks})'
        )
        self._indexed: Set[Tuple[int, ...]] = set()

    # -- encoding -------------------------------------------------------- #

    def _encode_row(self, values: Tuple[ConstantValue, ...]) -> Tuple:
        if not self._arity:
            return (0,)
        params: List[object] = []
        for value in values:
            tag, stored = encode_value(value)
            params.append(tag)
            params.append(stored)
        return tuple(params)

    def _decode_row(self, row) -> Tuple[ConstantValue, ...]:
        if not self._arity:
            return ()
        return tuple(decode_value(row[2 * i], row[2 * i + 1]) for i in range(self._arity))

    def _eq_clause(self, count: int) -> str:
        if not count:
            return "u = ?"
        return " AND ".join(f"t{i} = ? AND v{i} = ?" for i in range(count))

    # -- StorageTable protocol ------------------------------------------- #

    def __len__(self) -> int:
        cur = self.backend.execute(f'SELECT COUNT(*) FROM "{self.table_name}"')
        return cur.fetchone()[0]

    def __contains__(self, values: Tuple[ConstantValue, ...]) -> bool:
        values = tuple(values)
        if len(values) != self._arity:
            return False
        sql = f'SELECT 1 FROM "{self.table_name}" WHERE {self._eq_clause(self._arity)} LIMIT 1'
        return self.backend.execute(sql, self._encode_row(values)).fetchone() is not None

    def __iter__(self) -> Iterator[Tuple[ConstantValue, ...]]:
        return self.scan(None)

    def insert(self, values: Tuple[ConstantValue, ...]) -> Tuple[List[Tuple], List[Tuple]]:
        values = tuple(values)
        if len(values) != self._arity:
            raise SchemaError(
                f"arity mismatch inserting into {self.schema.qualified_name}: "
                f"expected {self._arity}, got {len(values)}"
            )
        key_idx = self.schema.key_indexes()
        self.backend.begin()
        if not key_idx:
            cur = self.backend.execute(self._insert_sql, self._encode_row(values))
            if cur.rowcount == 0:
                return [], []
            return [values], []
        # Primary-key replacement: an exact duplicate is a no-op; otherwise
        # rows sharing the key are displaced (last-writer-wins).
        if values in self:
            return [], []
        deleted: List[Tuple[ConstantValue, ...]] = []
        bindings = {i: values[i] for i in key_idx}
        for row in list(self.scan(bindings)):
            self.delete(row)
            deleted.append(row)
        self.backend.execute(self._insert_sql, self._encode_row(values))
        return [values], deleted

    def insert_many(self, rows) -> Tuple[List[Tuple], List[Tuple]]:
        """Batched insert: one ``executemany`` instead of a statement per row.

        Returns ``(inserted_rows, deleted_rows)``.  Keyed relations fall back
        to per-row :meth:`insert` (replacement needs a key probe per row).
        For unkeyed relations the rows are deduplicated in Python — against
        each other and against one scan of the existing table — because
        ``executemany`` cannot report *which* rows ``INSERT OR IGNORE``
        skipped; only genuinely-new rows hit the database.
        """
        if self.schema.key_indexes():
            all_inserted: List[Tuple[ConstantValue, ...]] = []
            all_deleted: List[Tuple[ConstantValue, ...]] = []
            for row in rows:
                inserted, deleted = self.insert(row)
                all_inserted.extend(inserted)
                all_deleted.extend(deleted)
            return all_inserted, all_deleted
        staged: List[Tuple[ConstantValue, ...]] = []
        encoded: List[Tuple] = []
        seen: Set[Tuple] = set()
        for row in rows:
            values = tuple(row)
            if len(values) != self._arity:
                raise SchemaError(
                    f"arity mismatch inserting into {self.schema.qualified_name}: "
                    f"expected {self._arity}, got {len(values)}"
                )
            key = self._encode_row(values)
            if key in seen:
                continue
            seen.add(key)
            staged.append(values)
            encoded.append(key)
        if not staged:
            return [], []
        existing: Set[Tuple] = set()
        if len(self):
            cur = self.backend.execute(
                f'SELECT {self._col_list} FROM "{self.table_name}"')
            existing = {tuple(row) for row in cur}
        new_rows = [(values, params)
                    for values, params in zip(staged, encoded)
                    if params not in existing]
        if not new_rows:
            return [], []
        self.backend.begin()
        self.backend.executemany(
            self._insert_sql, [params for _, params in new_rows])
        return [values for values, _ in new_rows], []

    def delete(self, values: Tuple[ConstantValue, ...]) -> bool:
        values = tuple(values)
        if len(values) != self._arity:
            return False
        self.backend.begin()
        sql = f'DELETE FROM "{self.table_name}" WHERE {self._eq_clause(self._arity)}'
        cur = self.backend.execute(sql, self._encode_row(values))
        return cur.rowcount > 0

    def clear(self) -> List[Tuple[ConstantValue, ...]]:
        removed = list(self.scan(None))
        if removed:
            self.backend.begin()
            self.backend.execute(f'DELETE FROM "{self.table_name}"')
        return removed

    def scan(self, bindings: Optional[Dict[int, ConstantValue]] = None
             ) -> Iterator[Tuple[ConstantValue, ...]]:
        if not bindings:
            cur = self.backend.execute(
                f'SELECT {self._col_list} FROM "{self.table_name}"')
            for row in cur:
                yield self._decode_row(row)
            return
        positions = tuple(sorted(bindings))
        if positions[-1] >= self._arity:
            return
        self._ensure_index(positions)
        clause = " AND ".join(f"t{p} = ? AND v{p} = ?" for p in positions)
        params: List[object] = []
        for p in positions:
            tag, stored = encode_value(bindings[p])
            params.append(tag)
            params.append(stored)
        cur = self.backend.execute(
            f'SELECT {self._col_list} FROM "{self.table_name}" WHERE {clause}', params)
        for row in cur:
            yield self._decode_row(row)

    def _ensure_index(self, positions: Tuple[int, ...]) -> None:
        """Lazily create a composite index on a bound-column subset."""
        if positions in self._indexed or tuple(range(self._arity)) == positions:
            # The full-row UNIQUE index already covers all-columns probes.
            self._indexed.add(positions)
            return
        suffix = "_".join(str(p) for p in positions)
        cols = ", ".join(f"t{p}, v{p}" for p in positions)
        self.backend.begin()
        self.backend.execute(
            f'CREATE INDEX IF NOT EXISTS "{self.table_name}__ix_{suffix}" '
            f'ON "{self.table_name}" ({cols})')
        self._indexed.add(positions)


class SqliteBackend:
    """Durable storage backend over a single SQLite database."""

    name = "sqlite"
    SUPPORTS_SQL = True

    def __init__(self, path: Optional[str] = None, wal: bool = True):
        self.path = path
        self.persistent = path is not None
        self._conn = sqlite3.connect(path if path is not None else ":memory:",
                                     isolation_level=None, check_same_thread=False)
        if self.persistent and wal:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._in_txn = False
        self._closed = False
        self._tables: Dict[Tuple[str, str, str], SqliteTable] = {}
        #: Observability: statements executed on behalf of the rule compiler.
        self.counters: Dict[str, int] = {"compiled_statements": 0, "aggregate_pushdowns": 0}
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS _repro_catalog ("
            " namespace TEXT NOT NULL, relation TEXT NOT NULL, peer TEXT NOT NULL,"
            " table_name TEXT NOT NULL, arity INTEGER NOT NULL,"
            " PRIMARY KEY (namespace, relation, peer))")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS _repro_meta ("
            " kind TEXT NOT NULL, key TEXT NOT NULL, seq INTEGER NOT NULL,"
            " payload TEXT NOT NULL, PRIMARY KEY (kind, key))")
        self._physical: Dict[Tuple[str, str, str], Tuple[str, int]] = {}
        for namespace, relation, peer, table_name, arity in self._conn.execute(
                "SELECT namespace, relation, peer, table_name, arity FROM _repro_catalog"):
            self._physical[(namespace, relation, peer)] = (table_name, arity)
        self._table_seq = len(self._physical)

    # -- connection management ------------------------------------------- #

    def begin(self) -> None:
        """Open the stage transaction if none is active."""
        if not self._in_txn:
            self._conn.execute("BEGIN")
            self._in_txn = True

    def execute(self, sql: str, params=()) -> sqlite3.Cursor:
        """Execute a statement on the backend connection."""
        return self._conn.execute(sql, params)

    def executemany(self, sql: str, seq_of_params) -> sqlite3.Cursor:
        """Execute a statement once per parameter set, in one driver call."""
        return self._conn.executemany(sql, seq_of_params)

    def commit(self) -> None:
        if self._closed:
            return
        if self._in_txn:
            self._conn.execute("COMMIT")
            self._in_txn = False

    def close(self) -> None:
        if self._closed:
            return
        self.commit()
        self._conn.close()
        self._closed = True

    def abort(self) -> None:
        """Simulate process death: roll back the open transaction, drop the
        connection, commit nothing.  Used by the crash/recovery suite."""
        if self._closed:
            return
        if self._in_txn:
            self._conn.execute("ROLLBACK")
            self._in_txn = False
        self._conn.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # -- tables ----------------------------------------------------------- #

    def table(self, namespace: str, schema: RelationSchema) -> SqliteTable:
        key = (namespace, schema.name, schema.peer)
        table = self._tables.get(key)
        if table is not None:
            return table
        physical = self._physical.get(key)
        if physical is None:
            table_name = f"r{self._table_seq}"
            self._table_seq += 1
            cols = _pair_columns(schema.arity) or ["u"]
            col_defs = ", ".join(f"{c} NOT NULL" for c in cols)
            self.begin()
            self._conn.execute(f'CREATE TABLE "{table_name}" ({col_defs})')
            self._conn.execute(
                f'CREATE UNIQUE INDEX "{table_name}__row" '
                f'ON "{table_name}" ({", ".join(cols)})')
            self._conn.execute(
                "INSERT INTO _repro_catalog (namespace, relation, peer, table_name, arity)"
                " VALUES (?, ?, ?, ?, ?)",
                (namespace, schema.name, schema.peer, table_name, schema.arity))
            self._physical[key] = (table_name, schema.arity)
        else:
            table_name, arity = physical
            if arity != schema.arity:
                raise StoreError(
                    f"stored table for {schema.qualified_name} has arity {arity}, "
                    f"schema says {schema.arity}")
        table = SqliteTable(self, table_name, schema)
        self._tables[key] = table
        return table

    def table_ref(self, namespace: str, relation: str, peer: str
                  ) -> Optional[Tuple[str, int]]:
        """``(physical_table_name, arity)`` without creating the table."""
        return self._physical.get((namespace, relation, peer))

    def stored_relations(self, namespace: str) -> Tuple[Tuple[str, str, int], ...]:
        found = [(relation, peer, arity)
                 for (ns, relation, peer), (_, arity) in self._physical.items()
                 if ns == namespace]
        return tuple(sorted(found))

    # -- metadata --------------------------------------------------------- #

    def save_meta(self, kind: str, key: str, payload: str) -> None:
        self.begin()
        row = self._conn.execute(
            "SELECT seq FROM _repro_meta WHERE kind = ? AND key = ?", (kind, key)).fetchone()
        if row is not None:
            seq = row[0]
        else:
            seq = self._conn.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 FROM _repro_meta WHERE kind = ?",
                (kind,)).fetchone()[0]
        self._conn.execute(
            "INSERT OR REPLACE INTO _repro_meta (kind, key, seq, payload) VALUES (?, ?, ?, ?)",
            (kind, key, seq, payload))

    def delete_meta(self, kind: str, key: str) -> None:
        self.begin()
        self._conn.execute(
            "DELETE FROM _repro_meta WHERE kind = ? AND key = ?", (kind, key))

    def load_meta(self, kind: str) -> List[Tuple[str, str]]:
        cur = self._conn.execute(
            "SELECT key, payload FROM _repro_meta WHERE kind = ? ORDER BY seq", (kind,))
        return [(row[0], row[1]) for row in cur]
