"""The in-memory storage backend: hash-indexed Python sets.

This is the storage engine the reproduction always had — it used to live as a
private class inside :mod:`repro.core.facts` and was extracted verbatim when
the backend seam was introduced.  It is the default backend: fastest for
anything that fits in RAM, with zero durability.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import SchemaError
from repro.core.schema import RelationSchema
from repro.core.terms import ConstantValue


class MemoryTable:
    """Hash-indexed storage for one relation.

    Tuples are stored keyed by a *typed* row key — ``bool`` is a subclass of
    ``int`` and ``1 == 1.0`` in Python, but :class:`~repro.core.terms.Constant`
    equality (and the SQLite backend's tag columns) keep ``True``, ``1`` and
    ``1.0`` distinct, so row identity must too.  Secondary hash indexes keyed
    by *subsets of columns* are built lazily the first time a lookup with that
    bound-column set is issued, and maintained incrementally on every
    insert/delete afterwards — an indexed lookup never rescans the relation
    and never post-filters, it is an exact hash probe.
    """

    __slots__ = ("schema", "_tuples", "_indexes")

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        self._tuples: Dict[Tuple, Tuple[ConstantValue, ...]] = {}
        # {(col, col, ...): {key-tuple: {row-key: row}}} — one hash index per
        # bound-column subset.
        self._indexes: Dict[Tuple[int, ...],
                            Dict[Tuple, Dict[Tuple, Tuple[ConstantValue, ...]]]] = {}

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, values: Tuple[ConstantValue, ...]) -> bool:
        return self._row_key(tuple(values)) in self._tuples

    def __iter__(self) -> Iterator[Tuple[ConstantValue, ...]]:
        return iter(self._tuples.values())

    def _index_for(self, positions: Tuple[int, ...]
                   ) -> Dict[Tuple, Dict[Tuple, Tuple[ConstantValue, ...]]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row_key, row in self._tuples.items():
                key = tuple(self._index_key(row[p]) for p in positions)
                index.setdefault(key, {})[row_key] = row
            self._indexes[positions] = index
        return index

    @staticmethod
    def _index_key(value: ConstantValue):
        # bool is a subclass of int; keep True distinct from 1 in indexes,
        # matching Constant equality semantics.
        return (type(value).__name__, value)

    @classmethod
    def _row_key(cls, values: Tuple[ConstantValue, ...]) -> Tuple:
        return tuple(cls._index_key(v) for v in values)

    def insert(self, values: Tuple[ConstantValue, ...]) -> Tuple[List[Tuple], List[Tuple]]:
        """Insert a tuple.  Returns ``(inserted_rows, deleted_rows)``.

        When the schema declares a primary key, an existing tuple with the
        same key is replaced (last-writer-wins), which yields one deletion.
        """
        values = tuple(values)
        if len(values) != self.schema.arity:
            raise SchemaError(
                f"arity mismatch inserting into {self.schema.qualified_name}: "
                f"expected {self.schema.arity}, got {len(values)}"
            )
        if self._row_key(values) in self._tuples:
            return [], []
        deleted: List[Tuple[ConstantValue, ...]] = []
        key_idx = self.schema.key_indexes()
        if key_idx:
            key_value = self._row_key(tuple(values[i] for i in key_idx))
            for row in list(self._tuples.values()):
                if self._row_key(tuple(row[i] for i in key_idx)) == key_value:
                    self._remove(row)
                    deleted.append(row)
        self._add(values)
        return [values], deleted

    def insert_many(self, rows) -> Tuple[List[Tuple], List[Tuple]]:
        """Batched insert.  Returns ``(inserted_rows, deleted_rows)``.

        Keyed relations fall back to per-row :meth:`insert` (replacement
        semantics make intra-batch order observable); unkeyed relations skip
        duplicates in one pass and never delete.
        """
        if self.schema.key_indexes():
            all_inserted: List[Tuple[ConstantValue, ...]] = []
            all_deleted: List[Tuple[ConstantValue, ...]] = []
            for row in rows:
                inserted, deleted = self.insert(row)
                all_inserted.extend(inserted)
                all_deleted.extend(deleted)
            return all_inserted, all_deleted
        inserted = []
        for row in rows:
            values = tuple(row)
            if len(values) != self.schema.arity:
                raise SchemaError(
                    f"arity mismatch inserting into {self.schema.qualified_name}: "
                    f"expected {self.schema.arity}, got {len(values)}"
                )
            if self._row_key(values) in self._tuples:
                continue
            self._add(values)
            inserted.append(values)
        return inserted, []

    def delete(self, values: Tuple[ConstantValue, ...]) -> bool:
        """Delete a tuple; return ``True`` if it was present."""
        values = tuple(values)
        if self._row_key(values) not in self._tuples:
            return False
        self._remove(values)
        return True

    def _add(self, values: Tuple[ConstantValue, ...]) -> None:
        row_key = self._row_key(values)
        self._tuples[row_key] = values
        for positions, index in self._indexes.items():
            key = tuple(self._index_key(values[p]) for p in positions)
            index.setdefault(key, {})[row_key] = values

    def _remove(self, values: Tuple[ConstantValue, ...]) -> None:
        row_key = self._row_key(values)
        self._tuples.pop(row_key, None)
        for positions, index in self._indexes.items():
            key = tuple(self._index_key(values[p]) for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.pop(row_key, None)
                if not bucket:
                    del index[key]

    def clear(self) -> List[Tuple[ConstantValue, ...]]:
        """Remove every tuple; return the removed rows."""
        removed = list(self._tuples.values())
        self._tuples.clear()
        self._indexes.clear()
        return removed

    def scan(self, bindings: Optional[Dict[int, ConstantValue]] = None
             ) -> Iterator[Tuple[ConstantValue, ...]]:
        """Iterate over tuples matching the given ``{column: value}`` bindings.

        With no bindings this is a full scan.  With bindings, the hash index
        on exactly that column subset is probed — every returned row matches
        all bindings, no post-filtering happens.
        """
        if not bindings:
            yield from self._tuples.values()
            return
        positions = tuple(sorted(bindings))
        if positions[-1] >= self.schema.arity:
            # A bound position beyond the relation's arity can never match.
            return
        key = tuple(self._index_key(bindings[p]) for p in positions)
        yield from self._index_for(positions).get(key, {}).values()


class MemoryBackend:
    """In-RAM backend: one :class:`MemoryTable` per (namespace, relation, peer).

    The metadata side-store honours the same save/delete/load contract as the
    durable backends (insertion-ordered, last write wins in place) but lives
    in a plain dict — a memory-backed peer never survives its process, so
    ``PeerState`` always restores from an empty store.
    """

    name = "memory"
    persistent = False
    SUPPORTS_SQL = False

    def __init__(self):
        self._tables: Dict[Tuple[str, str, str], MemoryTable] = {}
        self._meta: Dict[str, Dict[str, str]] = {}

    def table(self, namespace: str, schema: RelationSchema) -> MemoryTable:
        key = (namespace, schema.name, schema.peer)
        table = self._tables.get(key)
        if table is None:
            table = MemoryTable(schema)
            self._tables[key] = table
        return table

    def stored_relations(self, namespace: str) -> Tuple[Tuple[str, str, int], ...]:
        return ()

    def save_meta(self, kind: str, key: str, payload: str) -> None:
        self._meta.setdefault(kind, {})[key] = payload

    def delete_meta(self, kind: str, key: str) -> None:
        self._meta.get(kind, {}).pop(key, None)

    def load_meta(self, kind: str):
        return list(self._meta.get(kind, {}).items())

    def commit(self) -> None:
        pass

    def close(self) -> None:
        pass
