"""Pluggable storage backends for per-peer fact stores.

``repro.store`` turns the storage layer of a peer into a seam:

* :class:`~repro.store.backend.StorageBackend` /
  :class:`~repro.store.backend.StorageTable` — the protocol every backend
  implements (tables keyed by ``(namespace, relation, peer)``, plus a small
  durable metadata side-store for schemas, rules and delegations);
* :mod:`repro.store.memory` — the hash-indexed in-RAM tables that used to
  live inside :mod:`repro.core.facts` (the default backend);
* :mod:`repro.store.sqlite` — a durable SQLite backend (WAL mode) where each
  relation is a table and facts survive process death;
* :mod:`repro.store.compiler` — compiles whole rule bodies (joins, bound
  arguments, stratified negation, ``GROUP BY`` aggregates) into single SQL
  statements executed inside the store instead of tuple-at-a-time Python
  unification.

Select a backend per deployment with ``system().storage("sqlite", path=...)``
or globally with the ``REPRO_STORE_BACKEND`` environment variable.
"""

from repro.store.backend import (
    DEFAULT_BACKEND_ENV,
    StorageBackend,
    StorageTable,
    StoreError,
    resolve_backend,
)
from repro.store.memory import MemoryBackend, MemoryTable
from repro.store.sqlite import SqliteBackend

__all__ = [
    "DEFAULT_BACKEND_ENV",
    "MemoryBackend",
    "MemoryTable",
    "SqliteBackend",
    "StorageBackend",
    "StorageTable",
    "StoreError",
    "resolve_backend",
]
