"""Plain-text tables and series for the benchmark reports.

The original paper is a demo paper without numeric tables; each benchmark
nevertheless prints its results as an aligned table (rows = sweep points,
columns = counters) so that EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [str(cell).ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                title: Optional[str] = None) -> str:
    """Print (and return) an aligned table."""
    text = format_table(headers, rows, title=title)
    print(text)
    return text


def format_series(name: str, points: Iterable[Tuple[Any, Any]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a single (x, y) series, one point per line."""
    lines = [f"# series: {name} ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"{_format_cell(x)}\t{_format_cell(y)}")
    return "\n".join(lines)


def results_to_rows(results: Iterable, columns: Sequence[str]) -> List[Tuple]:
    """Project a list of :class:`~repro.bench.harness.ExperimentResult` onto table rows."""
    return [result.row(columns) for result in results]
