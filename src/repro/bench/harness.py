"""Experiment drivers shared by the benchmark harness."""

from __future__ import annotations

import datetime
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class ExperimentResult:
    """Counters collected from one experiment run."""

    label: str
    metrics: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str):
        return self.metrics[key]

    def get(self, key: str, default=None):
        """Dictionary-style access with a default."""
        return self.metrics.get(key, default)

    def row(self, columns: Sequence[str]) -> Tuple:
        """The metrics projected onto ``columns`` (prefixed with the label)."""
        return (self.label,) + tuple(self.metrics.get(column, "") for column in columns)


def _transport_stats(system):
    """The transport counters of a runtime system or an api facade."""
    transport = getattr(system, "transport", None)
    if transport is None:  # pragma: no cover - pre-protocol systems
        transport = system.network
    return transport.stats


def _standard_metrics(summary, totals, stats, elapsed: float) -> Dict[str, Any]:
    """The counter set shared by every experiment driver."""
    total_stages = getattr(summary, "total_stages", None)
    return {
        "rounds": summary.round_count,
        "converged": summary.converged,
        "scheduler": getattr(summary, "scheduler", "lockstep"),
        "stages": total_stages() if callable(total_stages) else None,
        "messages": stats.messages_sent,
        "payload_items": stats.payload_items,
        "derived_facts": totals["derived_facts"],
        "extensional_facts": totals["extensional_facts"],
        "installed_delegations": totals["installed_delegations"],
        "pending_delegations": totals["pending_delegations"],
        "peers": totals["peers"],
        "elapsed_seconds": elapsed,
    }


def measure_scenario(scenario, label: str = "scenario",
                     max_rounds: int = 100) -> ExperimentResult:
    """Run a scenario to convergence and collect the standard counters.

    The counters are the ones the paper's qualitative claims are about: how
    many rounds until convergence, how many messages and payload items moved,
    how many facts were derived and how many delegations were installed.
    ``scenario`` needs ``run(max_rounds=...)`` and a ``system`` exposing
    ``totals()`` and a :class:`~repro.runtime.transport.Transport` — both the
    Wepic :class:`~repro.wepic.scenario.DemoScenario` and anything built via
    :mod:`repro.api` qualify.
    """
    start = time.perf_counter()
    summary = scenario.run(max_rounds=max_rounds)
    elapsed = time.perf_counter() - start
    metrics = _standard_metrics(summary, scenario.system.totals(),
                                _transport_stats(scenario.system), elapsed)
    return ExperimentResult(label=label, metrics=metrics)


def measure_system(deployment, label: str = "system",
                   max_rounds: int = 100) -> ExperimentResult:
    """Run a :class:`repro.api.System` to convergence and collect counters.

    The facade counterpart of :func:`measure_scenario` for deployments built
    directly with :func:`repro.api.system`.
    """
    start = time.perf_counter()
    summary = deployment.run(max_rounds=max_rounds)
    elapsed = time.perf_counter() - start
    metrics = _standard_metrics(summary, deployment.totals(),
                                deployment.stats, elapsed)
    return ExperimentResult(label=label, metrics=metrics)


def run_sweep(parameter_values: Iterable, runner: Callable[[Any], ExperimentResult]
              ) -> List[ExperimentResult]:
    """Run ``runner`` for every value of a parameter sweep."""
    return [runner(value) for value in parameter_values]


def time_callable(function: Callable[[], Any], repeat: int = 1) -> Tuple[float, Any]:
    """Wall-clock time of ``function`` (best of ``repeat`` runs) and its last result."""
    timing, result = time_repeated(function, repeat)
    return timing["best_seconds"], result


def time_repeated(function: Callable[[], Any], repeats: int = 1
                  ) -> Tuple[Dict[str, float], Any]:
    """Best-of-N timing of ``function``.

    Runs ``function`` ``repeats`` times and returns ``(timing, last_result)``
    where ``timing`` holds the individual run times plus ``best`` and
    ``mean`` — the shape every ``BENCH_*.json`` embeds per measurement so a
    report is interpretable without knowing how it was produced.
    """
    times: List[float] = []
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = function()
        times.append(time.perf_counter() - start)
    timing = {
        "best_seconds": round(min(times), 6),
        "mean_seconds": round(sum(times) / len(times), 6),
        "runs_seconds": [round(t, 6) for t in times],
    }
    return timing, result


def machine_metadata() -> Dict[str, Any]:
    """The machine description embedded in every benchmark report."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def bench_metadata(repeats: int = 1, **extra: Any) -> Dict[str, Any]:
    """Standard metadata block for ``BENCH_*.json`` reports.

    Embeds the machine description, the repeat policy (``repeats`` runs,
    best-of-N timings) and a UTC timestamp; ``extra`` keys are merged in so
    benchmarks can record their parameters alongside.
    """
    metadata: Dict[str, Any] = {
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "repeats": max(1, repeats),
        "timing": "best-of-N wall clock (see runs_seconds per measurement)",
        "machine": machine_metadata(),
    }
    metadata.update(extra)
    return metadata


def compare(baseline: ExperimentResult, candidate: ExperimentResult,
            metrics: Sequence[str]) -> Dict[str, float]:
    """Ratios candidate/baseline for the given metrics (0 when the baseline is 0)."""
    ratios: Dict[str, float] = {}
    for metric in metrics:
        base = baseline.get(metric, 0) or 0
        cand = candidate.get(metric, 0) or 0
        ratios[metric] = (cand / base) if base else 0.0
    return ratios
