"""Measurement and reporting helpers for the benchmark harness.

Every benchmark in ``benchmarks/`` follows the same pattern: build a
scenario, apply a workload, run the system, and report a table or a series
whose *shape* reproduces the corresponding figure or demonstration scenario
of the paper.  This package provides the shared pieces:

* :mod:`repro.bench.harness` — experiment drivers (run a scenario and collect
  counters, sweep a parameter, time a callable);
* :mod:`repro.bench.reporting` — plain-text tables and series formatting used
  both by the benchmarks and by EXPERIMENTS.md.
"""

from repro.bench.harness import (
    ExperimentResult,
    measure_scenario,
    measure_system,
    run_sweep,
    time_callable,
)
from repro.bench.reporting import format_table, format_series, print_table

__all__ = [
    "ExperimentResult",
    "measure_scenario",
    "measure_system",
    "run_sweep",
    "time_callable",
    "format_table",
    "format_series",
    "print_table",
]
