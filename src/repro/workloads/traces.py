"""Event traces: replayable sequences of user actions.

A trace is an ordered list of :class:`TraceEvent` — uploads, selections,
ratings, transfers, rule customisations, peer joins — that can be replayed
against a :class:`~repro.wepic.scenario.DemoScenario`, optionally running the
system to convergence between events.  The scaling and churn benchmarks use
traces so the *same* action sequence is applied to every configuration being
compared.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import WorkloadError
from repro.wepic.annotations import MAX_RATING, MIN_RATING
from repro.wepic.pictures import generate_picture
from repro.workloads.generator import attendee_names

#: Supported trace event kinds.
EVENT_KINDS = (
    "upload", "select", "deselect", "rate", "transfer_select", "set_protocol",
    "authorize_facebook", "customize_rating_filter", "reset_rule", "join",
)


@dataclass(frozen=True)
class TraceEvent:
    """One user action of a trace."""

    kind: str
    attendee: str
    arguments: Tuple = ()

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise WorkloadError(f"unknown trace event kind {self.kind!r}")

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.arguments)
        return f"{self.kind}({self.attendee}{', ' if rendered else ''}{rendered})"


@dataclass
class WorkloadTrace:
    """An ordered sequence of trace events."""

    events: List[TraceEvent] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def append(self, event: TraceEvent) -> "WorkloadTrace":
        """Add one event to the trace."""
        self.events.append(event)
        return self

    def counts_by_kind(self) -> Dict[str, int]:
        """How many events of each kind the trace contains."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def replay(self, scenario, run_between_events: bool = False,
               max_rounds: int = 60) -> Dict[str, int]:
        """Replay the trace against a scenario.

        Returns counters: events applied, rounds executed, messages sent.
        """
        rounds = 0
        messages_before = scenario.system.network.stats.messages_sent
        for event in self.events:
            self._apply(scenario, event)
            if run_between_events:
                summary = scenario.run(max_rounds=max_rounds)
                rounds += summary.round_count
        if not run_between_events:
            summary = scenario.run(max_rounds=max_rounds)
            rounds += summary.round_count
        return {
            "events": len(self.events),
            "rounds": rounds,
            "messages": scenario.system.network.stats.messages_sent - messages_before,
        }

    @staticmethod
    def _apply(scenario, event: TraceEvent) -> None:
        if event.kind == "join":
            pictures = event.arguments[0] if event.arguments else 0
            if event.attendee not in scenario.apps:
                scenario.add_attendee(event.attendee, pictures=pictures)
            return
        app = scenario.app(event.attendee)
        if event.kind == "upload":
            picture_id, size = (event.arguments + (None, 64))[:2]
            picture = generate_picture(event.attendee, index=picture_id, size=size)
            app.upload_picture(picture)
        elif event.kind == "select":
            app.select_attendee(event.arguments[0])
        elif event.kind == "deselect":
            app.deselect_attendee(event.arguments[0])
        elif event.kind == "rate":
            picture_id, rating, owner = (event.arguments + (None,))[:3]
            app.rate_picture(picture_id, rating, owner=owner)
        elif event.kind == "transfer_select":
            picture = generate_picture(event.attendee, index=event.arguments[0])
            app.select_picture_for_transfer(picture)
        elif event.kind == "set_protocol":
            app.set_protocol(event.arguments[0])
        elif event.kind == "authorize_facebook":
            picture = generate_picture(event.attendee, index=event.arguments[0])
            app.authorize_facebook(picture)
        elif event.kind == "customize_rating_filter":
            rating = event.arguments[0] if event.arguments else MAX_RATING
            app.restrict_to_rating(rating)
        elif event.kind == "reset_rule":
            app.reset_attendee_pictures_rule()
        else:  # pragma: no cover - guarded by TraceEvent validation
            raise WorkloadError(f"unhandled trace event {event.kind!r}")


def generate_trace(attendees: int = 3, events: int = 20, seed: int = 7,
                   join_probability: float = 0.0) -> WorkloadTrace:
    """Generate a random (but seeded) trace of user actions.

    The generated trace only uses actions that are always valid (uploads,
    selections, ratings of already uploaded pictures, protocol declarations),
    so it can be replayed against any scenario that contains the attendees.
    """
    rng = random.Random(seed)
    names = list(attendee_names(attendees))
    trace = WorkloadTrace(seed=seed)
    uploaded: List[Tuple[str, int]] = []
    next_picture_id = 1000  # avoid clashing with scenario-provided libraries
    joined_counter = attendees

    for _ in range(events):
        roll = rng.random()
        if join_probability and roll < join_probability:
            joined_counter += 1
            new_name = attendee_names(joined_counter)[-1]
            names.append(new_name)
            trace.append(TraceEvent("join", new_name, (0,)))
            continue
        attendee = rng.choice(names)
        action = rng.choice(("upload", "select", "rate", "set_protocol"))
        if action == "upload" or not uploaded:
            trace.append(TraceEvent("upload", attendee, (next_picture_id, 32)))
            uploaded.append((attendee, next_picture_id))
            next_picture_id += 1
        elif action == "select":
            other = rng.choice([n for n in names if n != attendee] or [attendee])
            trace.append(TraceEvent("select", attendee, (other,)))
        elif action == "rate":
            owner, picture_id = rng.choice(uploaded)
            trace.append(TraceEvent("rate", attendee,
                                    (picture_id, rng.randint(MIN_RATING, MAX_RATING), owner)))
        else:
            trace.append(TraceEvent("set_protocol", attendee,
                                    (rng.choice(("email", "wepic")),)))
    return trace
