"""Workload generation: attendees, pictures, annotations, selections.

All generation is driven by a :class:`WorkloadConfig` and a seed, so the same
configuration always produces the same workload — a requirement for the
benchmark harness, whose sweeps must be comparable across runs.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import WorkloadError
from repro.wepic.annotations import MAX_RATING, MIN_RATING, Comment, NameTag, Rating
from repro.wepic.pictures import Picture, PictureLibrary, generate_library

#: First names used to build attendee populations; combined with an index
#: suffix when more attendees than names are requested.
_FIRST_NAMES = (
    "Emilien", "Jules", "Julia", "Serge", "Gerome", "Alice", "Bob", "Carol",
    "David", "Eve", "Frank", "Grace", "Heidi", "Ivan", "Judy", "Mallory",
    "Niaj", "Olivia", "Peggy", "Rupert", "Sybil", "Trent", "Victor", "Wendy",
)


def attendee_names(count: int) -> Tuple[str, ...]:
    """Deterministic list of ``count`` distinct attendee names."""
    if count < 0:
        raise WorkloadError("attendee count must be non-negative")
    names: List[str] = []
    for index in range(count):
        base = _FIRST_NAMES[index % len(_FIRST_NAMES)]
        suffix = index // len(_FIRST_NAMES)
        names.append(base if suffix == 0 else f"{base}{suffix + 1}")
    return tuple(names)


class ZipfSampler:
    """Draws ranks ``0..size-1`` with probability proportional to
    ``1 / (rank + 1) ** exponent`` — the fan-out law of real annotation
    traffic, where a handful of pictures receive most of the ratings.

    ``exponent`` 0 degenerates to uniform; around 1 is the classic Zipf
    shape; larger values concentrate harder on the head.  Sampling is
    inverse-CDF over a precomputed cumulative table (O(log size) per draw),
    so a million-fact workload costs a million bisections, not a million
    weight recomputations.  Deterministic given its ``rng``.
    """

    __slots__ = ("size", "exponent", "rng", "_cumulative", "_total")

    def __init__(self, size: int, exponent: float,
                 rng: Optional[random.Random] = None):
        if size < 1:
            raise WorkloadError("ZipfSampler needs a positive population size")
        if exponent < 0:
            raise WorkloadError("zipf exponent must be non-negative")
        self.size = size
        self.exponent = exponent
        self.rng = rng if rng is not None else random.Random(0)
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, size + 1):
            total += 1.0 / rank ** exponent
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self) -> int:
        """One rank, head-biased according to the exponent."""
        return bisect.bisect_left(self._cumulative,
                                  self.rng.random() * self._total)

    def sample_many(self, count: int) -> List[int]:
        """``count`` independent ranks."""
        return [self.sample() for _ in range(count)]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic Wepic workload."""

    attendees: int = 3
    pictures_per_attendee: int = 5
    picture_size: int = 64
    ratings_per_attendee: int = 5
    comments_per_attendee: int = 2
    tags_per_attendee: int = 2
    selection_fraction: float = 0.5
    facebook_authorization_fraction: float = 0.5
    #: Skew of annotation fan-out over pictures: 0 keeps the historical
    #: uniform choice, > 0 draws pictures from a :class:`ZipfSampler` so a
    #: few popular pictures soak up most ratings/comments/tags.
    popularity_exponent: float = 0.0
    seed: int = 42

    def __post_init__(self):
        if self.attendees < 1:
            raise WorkloadError("a workload needs at least one attendee")
        if not 0.0 <= self.selection_fraction <= 1.0:
            raise WorkloadError("selection_fraction must be within [0, 1]")
        if not 0.0 <= self.facebook_authorization_fraction <= 1.0:
            raise WorkloadError("facebook_authorization_fraction must be within [0, 1]")
        if self.picture_size < 1:
            raise WorkloadError("picture_size must be positive")
        if self.popularity_exponent < 0:
            raise WorkloadError("popularity_exponent must be non-negative")


@dataclass
class Workload:
    """A fully generated workload, ready to be loaded into a scenario."""

    config: WorkloadConfig
    attendees: Tuple[str, ...]
    libraries: Dict[str, PictureLibrary]
    ratings: List[Rating]
    comments: List[Comment]
    tags: List[NameTag]
    selections: Dict[str, Tuple[str, ...]]
    facebook_authorizations: Dict[str, Tuple[int, ...]]

    def total_pictures(self) -> int:
        """Total number of pictures across every attendee."""
        return sum(len(library) for library in self.libraries.values())

    def pictures_of(self, attendee: str) -> PictureLibrary:
        """The picture library of one attendee."""
        return self.libraries[attendee]

    def all_pictures(self) -> Tuple[Picture, ...]:
        """Every picture of the workload, in a deterministic order."""
        pictures: List[Picture] = []
        for attendee in self.attendees:
            pictures.extend(self.libraries[attendee].pictures)
        return tuple(pictures)

    def ratings_of(self, rater: str) -> Tuple[Rating, ...]:
        """The ratings authored by one attendee."""
        return tuple(r for r in self.ratings if r.author == rater)


def generate_workload(config: WorkloadConfig) -> Workload:
    """Generate a workload from its configuration (fully deterministic)."""
    rng = random.Random(config.seed)
    attendees = attendee_names(config.attendees)

    libraries: Dict[str, PictureLibrary] = {}
    next_picture_id = 1
    for attendee in attendees:
        libraries[attendee] = generate_library(
            attendee, config.pictures_per_attendee,
            size=config.picture_size, start_id=next_picture_id,
        )
        next_picture_id += config.pictures_per_attendee

    all_pictures = [picture for attendee in attendees
                    for picture in libraries[attendee].pictures]

    ratings: List[Rating] = []
    comments: List[Comment] = []
    tags: List[NameTag] = []
    for attendee in attendees:
        candidates = [p for p in all_pictures if p.owner != attendee] or all_pictures
        if config.popularity_exponent > 0:
            sampler = ZipfSampler(len(candidates), config.popularity_exponent,
                                  rng)
            pick = lambda: candidates[sampler.sample()]  # noqa: E731
        else:
            pick = lambda: rng.choice(candidates)  # noqa: E731
        for _ in range(min(config.ratings_per_attendee, len(candidates))):
            picture = pick()
            ratings.append(Rating(picture_id=picture.picture_id, author=attendee,
                                  value=rng.randint(MIN_RATING, MAX_RATING)))
        for index in range(min(config.comments_per_attendee, len(candidates))):
            picture = pick()
            comments.append(Comment(picture_id=picture.picture_id, author=attendee,
                                    text=f"comment {index} by {attendee}"))
        for _ in range(min(config.tags_per_attendee, len(candidates))):
            picture = pick()
            tagged = rng.choice(attendees)
            tags.append(NameTag(picture_id=picture.picture_id, author=attendee,
                                attendee=tagged))

    selections: Dict[str, Tuple[str, ...]] = {}
    for attendee in attendees:
        others = [name for name in attendees if name != attendee]
        rng.shuffle(others)
        count = max(1, round(config.selection_fraction * len(others))) if others else 0
        selections[attendee] = tuple(sorted(others[:count]))

    authorizations: Dict[str, Tuple[int, ...]] = {}
    for attendee in attendees:
        owned = libraries[attendee].pictures
        authorized = [p.picture_id for p in owned
                      if rng.random() < config.facebook_authorization_fraction]
        authorizations[attendee] = tuple(sorted(authorized))

    return Workload(
        config=config,
        attendees=attendees,
        libraries=libraries,
        ratings=ratings,
        comments=comments,
        tags=tags,
        selections=selections,
        facebook_authorizations=authorizations,
    )


def load_workload(scenario, workload: Workload,
                  apply_selections: bool = True,
                  apply_annotations: bool = True,
                  apply_authorizations: bool = True) -> None:
    """Load a generated workload into a :class:`~repro.wepic.scenario.DemoScenario`.

    Attendees present in the workload but missing from the scenario are added
    on the fly.  Pictures are uploaded, annotations recorded (ratings pushed
    to the owners so the paper's ``rate@$owner`` rule variant works),
    selections and Facebook authorisations applied.
    """
    for attendee in workload.attendees:
        if attendee not in scenario.apps:
            scenario.add_attendee(attendee)
        app = scenario.app(attendee)
        library = workload.libraries[attendee]
        scenario.libraries[attendee] = library
        app.upload_library(library)

    owners_by_picture = {p.picture_id: p.owner for p in workload.all_pictures()}

    if apply_annotations:
        for rating in workload.ratings:
            app = scenario.app(rating.author)
            app.rate_picture(rating.picture_id, rating.value,
                             owner=owners_by_picture.get(rating.picture_id))
        for comment in workload.comments:
            app = scenario.app(comment.author)
            app.comment_picture(comment.picture_id, comment.text,
                                owner=owners_by_picture.get(comment.picture_id))
        for tag in workload.tags:
            app = scenario.app(tag.author)
            app.tag_picture(tag.picture_id, tag.attendee,
                            owner=owners_by_picture.get(tag.picture_id))

    if apply_selections:
        for attendee, selected in workload.selections.items():
            app = scenario.app(attendee)
            for other in selected:
                app.select_attendee(other)

    if apply_authorizations:
        for attendee, picture_ids in workload.facebook_authorizations.items():
            app = scenario.app(attendee)
            library = workload.libraries[attendee]
            for picture_id in picture_ids:
                picture = library.by_id(picture_id)
                if picture is not None:
                    app.authorize_facebook(picture)
