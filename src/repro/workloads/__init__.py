"""Synthetic workload generation for the Wepic experiments.

The paper's demo relies on conference attendees uploading, rating and
transferring real photos.  The reproduction synthesises equivalent workloads
with seeded randomness so every experiment is repeatable:

* :mod:`repro.workloads.generator` — attendee populations, picture libraries,
  rating/comment/tag matrices, selection patterns and authorization sets;
* :mod:`repro.workloads.traces` — event traces (sequences of user actions)
  that can be replayed against a :class:`~repro.wepic.scenario.DemoScenario`.
"""

from repro.workloads.generator import (
    WorkloadConfig,
    Workload,
    ZipfSampler,
    generate_workload,
    attendee_names,
)
from repro.workloads.traces import TraceEvent, WorkloadTrace, generate_trace

__all__ = [
    "WorkloadConfig",
    "Workload",
    "ZipfSampler",
    "generate_workload",
    "attendee_names",
    "TraceEvent",
    "WorkloadTrace",
    "generate_trace",
]
