"""The WebdamLog per-peer engine.

A computation **stage** of a peer is broken down into the three steps
described in the paper:

1. the peer loads the inputs received from the remote peers since the
   previous stage (fact updates and delegations);
2. the peer runs a fixpoint computation of its program (its own rules plus
   the rules delegated to it);
3. the peer sends facts (updates) and rules (delegations) to other peers.

:class:`WebdamLogEngine` implements exactly this loop for one peer.  It is
transport-agnostic: incoming inputs are pushed through ``receive_*`` methods
(by the runtime layer, by wrappers, or directly by tests), and the outputs of
a stage are returned in a :class:`StageResult` for the caller to deliver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.delegation import Delegation, DelegationDiff
from repro.core.errors import EvaluationError, SchemaError
from repro.core.evaluation import RuleEvaluator, RuleOutcome, stratify_local_rules
from repro.core.facts import Delta, Fact
from repro.core.parser import ParsedProgram, parse_fact, parse_program, parse_rule
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationKind, RelationSchema, SchemaRegistry
from repro.core.state import PeerState
from repro.planner import BodyPlanner, StagePlan, StatsProvider, resolve_planner_mode
from repro.planner.magic import MAGIC_PREFIX
from repro.store.backend import resolve_backend

#: Predicate marker for atoms whose relation or peer position is still a
#: variable at analysis time — they may read from (or derive into) any
#: relation, so dependency analysis treats them as depending on everything.
_WILDCARD = "*any*"


def _predicate_of(atom: Atom) -> str:
    relation = atom.relation_constant()
    peer = atom.peer_constant()
    if relation is None or peer is None:
        return _WILDCARD
    return f"{relation}@{peer}"


class _ProgramAnalysis:
    """Precomputed dependency structure of a peer's current program.

    Cached on the engine and rebuilt whenever the rule set changes (own
    rules added/removed/replaced, delegations installed or retracted) — the
    cache is validated by object identity against ``state.all_rules()``, so
    any mutation path invalidates it, including ones that bypass the engine
    API (e.g. the delegation controller installing an approved rule).
    """

    __slots__ = ("rules", "strata", "body_predicates", "negated_predicates",
                 "head_predicate")

    def __init__(self, peer: str, rules: Tuple[Rule, ...]):
        self.rules = rules
        self.strata = stratify_local_rules(peer, list(rules))
        self.body_predicates: Dict[Rule, FrozenSet[str]] = {}
        self.head_predicate: Dict[Rule, str] = {}
        self.negated_predicates: Set[str] = set()
        for rule in rules:
            predicates = set()
            for atom in rule.body:
                predicate = _predicate_of(atom)
                predicates.add(predicate)
                if atom.negated:
                    self.negated_predicates.add(predicate)
            self.body_predicates[rule] = frozenset(predicates)
            self.head_predicate[rule] = _predicate_of(rule.head)

    def matches(self, rules: Tuple[Rule, ...]) -> bool:
        """``True`` when the analysis still describes exactly these rules."""
        return len(self.rules) == len(rules) and all(
            cached is current for cached, current in zip(self.rules, rules))

    def triggered(self, rule: Rule, delta_predicates: Set[str]) -> bool:
        """``True`` when a delta over these predicates can re-fire ``rule``."""
        body = self.body_predicates[rule]
        return _WILDCARD in body or not delta_predicates.isdisjoint(body)

    def touches_negation(self, delta_predicates: Set[str]) -> bool:
        """``True`` when the delta reaches a negated body occurrence."""
        negated = self.negated_predicates
        if not negated:
            return False
        return _WILDCARD in negated or not delta_predicates.isdisjoint(negated)

    def derivation_closure(self, seed_predicates: Set[str]) -> Optional[Set[str]]:
        """Every predicate the seed predicates can derive into, transitively.

        Follows rule bodies forward to heads only (unlike
        :meth:`affected_closure` it does not pull in sibling definitions of
        reached heads — it answers "what can this delta change", not "what
        must be recomputed").  Returns ``None`` when a wildcard-headed rule
        is reachable, meaning the delta could derive anywhere.
        """
        reachable = set(seed_predicates)
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                head = self.head_predicate[rule]
                if head in reachable:
                    continue
                body = self.body_predicates[rule]
                if _WILDCARD in body or not reachable.isdisjoint(body):
                    if head == _WILDCARD:
                        return None
                    reachable.add(head)
                    changed = True
        return reachable

    def affected_closure(self, seed_predicates: Set[str]
                         ) -> Tuple[Set[str], Set[Rule], bool]:
        """Predicates and rules transitively reachable from a delta.

        A rule is affected when its body reads an affected predicate *or*
        its head derives into one (every definition of a cleared predicate
        must re-fire, not only the ones the delta touched).  The returned
        flag is ``True`` when a wildcard-headed rule is affected, in which
        case the caller must fall back to a full recompute.
        """
        affected = set(seed_predicates)
        affected_rules: Set[Rule] = set()
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                if rule in affected_rules:
                    continue
                body = self.body_predicates[rule]
                head = self.head_predicate[rule]
                if (_WILDCARD in body or not affected.isdisjoint(body)
                        or head in affected):
                    affected_rules.add(rule)
                    changed = True
                    if head == _WILDCARD:
                        return set(), set(), True
                    affected.add(head)
        return affected, affected_rules, False


@dataclass(frozen=True)
class OutgoingUpdate:
    """Fact updates addressed to one remote peer."""

    target: str
    inserted: FrozenSet[Fact] = frozenset()
    deleted: FrozenSet[Fact] = frozenset()

    def __len__(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def __bool__(self) -> bool:
        return bool(self.inserted) or bool(self.deleted)


@dataclass
class StageResult:
    """Everything produced by one computation stage of a peer."""

    peer: str
    stage: int
    consumed_inputs: int = 0
    fixpoint_iterations: int = 0
    rules_evaluated: int = 0
    substitutions_explored: int = 0
    #: Number of rule bodies this stage that ran as a single compiled SQL
    #: statement inside the storage backend instead of tuple-at-a-time.
    compiled_sql: int = 0
    derived_intensional: int = 0
    derived_changed: bool = False
    deferred_local_updates: int = 0
    #: Which fixpoint strategy the stage used: ``"full"`` (clear everything
    #: and recompute — program/schema change or naive mode), ``"delta"``
    #: (seminaive over the input delta), ``"rederive"`` (scoped
    #: delete-and-rederive of the affected predicate closure) or ``"skip"``
    #: (no input delta — nothing evaluated at all).
    evaluation_path: str = "full"
    outgoing_updates: List[OutgoingUpdate] = field(default_factory=list)
    delegations_to_install: List[Delegation] = field(default_factory=list)
    delegations_to_retract: List[Delegation] = field(default_factory=list)
    #: Net change of the facts *visible* at the peer during this stage —
    #: extensional, derived and provided facts combined, with deletions that
    #: are still visible through another source filtered out.  This is what
    #: the :mod:`repro.api` subscription machinery consumes, so observers are
    #: fed from deltas as stages complete instead of re-scanning relations.
    visible_delta: Delta = field(default_factory=Delta.empty)
    #: The plans the stage's fixpoint executed (literal orders, estimated vs.
    #: actual cardinalities) plus the magic predicates active in the program.
    #: ``None`` when the planner is off or the stage evaluated nothing.
    plan: Optional[StagePlan] = None

    def outgoing_fact_count(self) -> int:
        """Total number of facts shipped to remote peers this stage."""
        return sum(len(update) for update in self.outgoing_updates)

    def outgoing_message_count(self) -> int:
        """Number of messages (updates + delegation installs/retracts) emitted."""
        return (len(self.outgoing_updates) + len(self.delegations_to_install)
                + len(self.delegations_to_retract))

    def has_outgoing(self) -> bool:
        """``True`` when the stage produced anything for other peers."""
        return bool(self.outgoing_updates or self.delegations_to_install
                    or self.delegations_to_retract)

    def is_quiescent(self) -> bool:
        """``True`` when the stage neither consumed inputs nor produced changes.

        A network of peers has converged when every peer reports a quiescent
        stage and no messages are in flight.
        """
        return (self.consumed_inputs == 0
                and not self.has_outgoing()
                and not self.derived_changed
                and self.deferred_local_updates == 0)


class WebdamLogEngine:
    """The WebdamLog engine of a single peer."""

    def __init__(self, peer: str, schemas: Optional[SchemaRegistry] = None,
                 strict_stage_inputs: bool = False,
                 evaluation_mode: str = "incremental",
                 use_indexes: bool = True,
                 storage=None, storage_options: Optional[Dict] = None,
                 planner: Optional[str] = None):
        if evaluation_mode not in ("incremental", "naive"):
            raise ValueError(
                f"unknown evaluation_mode {evaluation_mode!r}; "
                "expected 'incremental' or 'naive'"
            )
        self.peer = peer
        backend = resolve_backend(storage, peer=peer, options=storage_options)
        self.state = PeerState(peer, schemas, backend=backend)
        # Cost-based planner mode: ``off`` (written order), ``order`` (join
        # ordering) or ``magic`` (ordering + demand transformation of live
        # views).  ``None`` defers to REPRO_PLANNER / the default.  Ordering
        # is tied to the indexes — with use_indexes=False the engine is the
        # scan-everything seed baseline and must stay order-identical to it.
        self.planner_mode = resolve_planner_mode(planner)
        self._planner = (
            BodyPlanner(peer, StatsProvider(self.state), mode=self.planner_mode)
            if self.planner_mode != "off" and use_indexes else None)
        # Monotonically increasing program version: bumped whenever the rule
        # set changes (rules added/removed/replaced, delegations installed or
        # retracted, programs loaded).  The planner's plan cache is keyed on
        # it, so uninstalling a view's rules can never leave a stale plan.
        self.program_version = 0
        # Strict per-stage semantics (facts received for local intensional
        # relations are visible for exactly one stage, as in the PODS model);
        # the default keeps them until the sender retracts them, which is the
        # behaviour the Wepic demo relies on.
        self.strict_stage_inputs = strict_stage_inputs
        # ``"incremental"`` runs the seminaive / scoped-rederive fixpoint;
        # ``"naive"`` forces the historical clear-and-recompute at every
        # stage (the differential tests and benchmarks use it as baseline).
        self.evaluation_mode = evaluation_mode
        # When False the evaluator falls back to full relation scans instead
        # of the incrementally-maintained hash indexes (seed behaviour).
        self.use_indexes = use_indexes
        # Optional provenance tracker (see :mod:`repro.provenance`): when set,
        # every derivation of the fixpoint is recorded through its ``record``
        # method, which the access-control view policies build upon.  A
        # tracker exposing the maintenance hooks (``on_base_deleted`` /
        # ``on_rederive`` / ``on_full_recompute``) rides the incremental
        # evaluation paths — the graph is kept consistent along delta and
        # rederive stages; a hook-less recorder (or per-stage mode) falls
        # back to the historical full recompute every stage.
        self.provenance = None
        # Facts addressed to remote peers by the local user (or wrappers),
        # flushed at the next stage.
        self._pending_remote_inserts: Dict[str, Set[Fact]] = {}
        self._pending_remote_deletes: Dict[str, Set[Fact]] = {}
        # Facts previously shipped to each target as the result of rule
        # derivations; used to avoid re-sending and to retract view facts.
        self._sent_remote: Dict[str, Set[Fact]] = {}
        # Whether the engine needs a stage for reasons the stores cannot see
        # (rule or program changes).  Starts ``True``: a freshly built peer
        # has never evaluated its program.
        self._dirty = True
        # --- incremental-fixpoint state --------------------------------- #
        # Cached dependency analysis of the current program (rebuilt when the
        # rule set changes); explicit invalidation points are add_rule /
        # remove_rule / replace_rule / load_program and delegation installs,
        # with an identity check against state.all_rules() as the backstop.
        self._analysis: Optional[_ProgramAnalysis] = None
        # Set by declare(): a schema (re)declaration can change how head
        # facts are classified, which the rule-set identity check cannot see.
        self._schema_changed = False
        # Per-rule cumulative outputs (remote facts, delegations, deferred
        # extensional updates) of the last fixpoint.  The stage outcome fed
        # to _emit_outputs is the union over the current rules, so skipping
        # un-affected rules never loses (or spuriously retracts) outputs.
        self._rule_memo: Dict[Rule, RuleOutcome] = {}
        # Deletions performed by end-of-stage housekeeping (non-persistent
        # relation clears, strict provided clears) that the next fixpoint
        # must treat as part of its input delta.
        self._carryover_delta: Delta = Delta.empty()
        # Lifetime work counters across all stages (benchmark / test probes).
        self.eval_counters: Dict[str, int] = {
            "substitutions_explored": 0,
            "fixpoint_iterations": 0,
            "rules_evaluated": 0,
            "compiled_sql": 0,
            "stages_full": 0,
            "stages_delta": 0,
            "stages_rederive": 0,
            "stages_skip": 0,
            "plans_computed": 0,
            "plans_cached": 0,
            "plans_reordered": 0,
        }

    # ------------------------------------------------------------------ #
    # program loading and direct updates (the "user" API)
    # ------------------------------------------------------------------ #

    def load_program(self, program: Union[str, ParsedProgram]) -> ParsedProgram:
        """Load a WebdamLog program (text or already parsed).

        Schema declarations are registered, facts of local relations are
        inserted, facts of remote relations are queued to be pushed at the
        next stage, and rules are added to the peer's own program.
        """
        if isinstance(program, str):
            program = parse_program(program, default_peer=self.peer, author=self.peer)
        for schema in program.schemas:
            self.state.declare(schema)
        for fact in program.facts:
            if fact.peer == self.peer:
                self.state.insert_fact(fact)
            else:
                self.send_fact(fact)
        for rule in program.rules:
            self.state.add_rule(rule)
        self._invalidate_program_cache()
        self._schema_changed = True
        self.mark_dirty()
        return program

    def declare(self, schema: RelationSchema) -> RelationSchema:
        """Declare a relation schema."""
        self._schema_changed = True
        self.mark_dirty()
        return self.state.declare(schema)

    def add_rule(self, rule: Union[str, Rule]) -> Rule:
        """Add a rule to the peer's own program (parsed if given as text)."""
        if isinstance(rule, str):
            rule = parse_rule(rule, default_peer=self.peer, author=self.peer)
        self._invalidate_program_cache()
        self.mark_dirty()
        return self.state.add_rule(rule)

    def remove_rule(self, rule_id: str) -> Optional[Rule]:
        """Remove an own rule by identifier."""
        removed = self.state.remove_rule(rule_id)
        if removed is not None:
            self._invalidate_program_cache()
            self.mark_dirty()
        return removed

    def remove_rules(self, rule_ids: Iterable[str]) -> List[Rule]:
        """Remove several own rules at once (one cache invalidation).

        Used by the live-view machinery to uninstall a compiled query: the
        next stage's full recompute clears the view's derived facts, and the
        delegation diff retracts whatever the removed rules had delegated.
        Unknown identifiers are skipped; the removed rules are returned.
        """
        removed = [rule for rule_id in rule_ids
                   if (rule := self.state.remove_rule(rule_id)) is not None]
        if removed:
            self._invalidate_program_cache()
            self.mark_dirty()
        return removed

    def replace_rule(self, rule_id: str, new_rule: Union[str, Rule]) -> Rule:
        """Replace an own rule (the Wepic *customize rules* operation)."""
        if isinstance(new_rule, str):
            new_rule = parse_rule(new_rule, default_peer=self.peer, author=self.peer)
        self._invalidate_program_cache()
        self.mark_dirty()
        return self.state.replace_rule(rule_id, new_rule)

    def _invalidate_program_cache(self) -> None:
        """Drop the cached program analysis (rule set is about to change).

        Also bumps :attr:`program_version`, which keys the planner's plan
        cache — so removing rules (e.g. a live view uninstalling its magic
        predicates on ``close()``) can never leave a stale plan behind.
        """
        self._analysis = None
        self.program_version += 1
        if self._planner is not None:
            self._planner.sync(self.program_version)

    def rules(self) -> Tuple[Rule, ...]:
        """The peer's own rules."""
        return tuple(self.state.own_rules)

    def installed_delegations(self):
        """Delegations installed at this peer by remote delegators."""
        return self.state.delegations_in.all()

    def insert_fact(self, fact: Union[str, Fact]) -> Delta:
        """Insert a base fact.  Local facts go to the store, remote facts are queued."""
        if isinstance(fact, str):
            fact = parse_fact(fact, default_peer=self.peer)
        if fact.peer == self.peer:
            return self.state.insert_fact(fact)
        self.send_fact(fact)
        return Delta.insertion([fact])

    def insert_facts(self, facts: Iterable[Union[str, Fact]]) -> Delta:
        """Insert many base facts in one batch (the bulk-load fast path).

        Local facts flow through the storage backend's batched insert
        (``executemany`` on SQLite) instead of one round trip per fact;
        remote facts are queued individually like :meth:`insert_fact`.
        Returns the delta of the local insertions.
        """
        local: List[Fact] = []
        for fact in facts:
            if isinstance(fact, str):
                fact = parse_fact(fact, default_peer=self.peer)
            if fact.peer == self.peer:
                local.append(fact)
            else:
                self.send_fact(fact)
        if not local:
            return Delta.empty()
        return self.state.insert_facts(local)

    def delete_fact(self, fact: Union[str, Fact]) -> Delta:
        """Delete a base fact.  Local facts are removed, remote deletions are queued."""
        if isinstance(fact, str):
            fact = parse_fact(fact, default_peer=self.peer)
        if fact.peer == self.peer:
            return self.state.delete_fact(fact)
        self._pending_remote_deletes.setdefault(fact.peer, set()).add(fact)
        return Delta.deletion([fact])

    def send_fact(self, fact: Fact) -> None:
        """Queue a fact addressed to a remote peer (shipped at the next stage)."""
        if fact.peer == self.peer:
            raise SchemaError(f"fact {fact} is local; use insert_fact")
        self._pending_remote_inserts.setdefault(fact.peer, set()).add(fact)

    # ------------------------------------------------------------------ #
    # transport-facing input methods (step 1 inputs)
    # ------------------------------------------------------------------ #

    def receive_facts(self, sender: str, inserted: Iterable[Fact] = (),
                      deleted: Iterable[Fact] = ()) -> None:
        """Record fact updates received from ``sender`` for the next stage."""
        for fact in inserted:
            self.state.pending.inserted_facts.append((sender, fact))
        for fact in deleted:
            self.state.pending.deleted_facts.append((sender, fact))

    def receive_delegation(self, sender: str, delegation_id: str, rule: Rule) -> None:
        """Record a delegation install received from ``sender`` for the next stage."""
        self.state.pending.delegations_to_install.append((sender, delegation_id, rule))

    def receive_delegation_retraction(self, sender: str, delegation_id: str) -> None:
        """Record a delegation retraction received from ``sender`` for the next stage."""
        self.state.pending.delegations_to_retract.append((sender, delegation_id))

    def has_pending_input(self) -> bool:
        """``True`` when inputs are waiting to be consumed by the next stage."""
        return (not self.state.pending.is_empty()
                or bool(self.state.deferred_updates)
                or bool(self._pending_remote_inserts)
                or bool(self._pending_remote_deletes))

    def mark_dirty(self) -> None:
        """Flag that the peer's next stage may produce new results.

        Called on program mutations (and by the runtime when wrappers touch
        the store outside a stage); event-driven schedulers use
        :meth:`needs_stage` to decide which peers to activate.
        """
        self._dirty = True

    def needs_stage(self) -> bool:
        """``True`` when running a stage could change anything.

        A peer whose program is unchanged, whose stores saw no writes since
        the last stage, and which has no pending inputs is guaranteed to run
        a quiescent stage — an event-driven scheduler can safely skip it.
        """
        return (self._dirty
                or self.has_pending_input()
                or self.state.store.has_pending_changes()
                or self.state.has_provided_changes())

    # ------------------------------------------------------------------ #
    # the computation stage
    # ------------------------------------------------------------------ #

    def run_stage(self, commit: bool = True) -> StageResult:
        """Run one three-step computation stage and return its outputs.

        ``commit=False`` leaves the stage-boundary transaction open: the
        caller must invoke ``state.commit()`` itself after folding its own
        writes into the same transaction (causal replication persists its
        channel state this way, so the dots and the facts they delivered
        become durable atomically).
        """
        self.state.stage_counter += 1
        self._dirty = False
        result = StageResult(peer=self.peer, stage=self.state.stage_counter)
        if self.provenance is not None and hasattr(self.provenance, "notify_stage"):
            self.provenance.notify_stage(self.state.stage_counter)

        # ---- step 1: load inputs ------------------------------------- #
        result.consumed_inputs = self._consume_inputs()

        # ---- step 2: local fixpoint ----------------------------------- #
        outcome = self._run_fixpoint(result)

        # ---- step 3: emit updates and delegations ---------------------- #
        self._emit_outputs(outcome, result)

        # End-of-stage housekeeping.  The deletions these clears perform are
        # carried over into the next fixpoint's input delta: the facts were
        # visible to *this* stage's evaluation, so their consequences must be
        # retracted by the next one.
        housekeeping = Delta.empty()
        if self.strict_stage_inputs:
            housekeeping = housekeeping.merge(self.state.clear_provided())
        housekeeping = housekeeping.merge(self.state.store.clear_nonpersistent())
        self._carryover_delta = self._carryover_delta.merge(housekeeping)
        if outcome.local_extensional:
            deferred = {fact for fact in outcome.local_extensional
                        if not self.state.store.contains(fact)}
        else:
            deferred = set()
        self.state.deferred_updates = Delta.insertion(deferred)
        result.deferred_local_updates = len(self.state.deferred_updates)

        # Lifetime work accounting (benchmarks and tests read these).
        counters = self.eval_counters
        counters["substitutions_explored"] += result.substitutions_explored
        counters["fixpoint_iterations"] += result.fixpoint_iterations
        counters["rules_evaluated"] += result.rules_evaluated
        counters["compiled_sql"] += result.compiled_sql
        counters[f"stages_{result.evaluation_path}"] += 1

        # Delta accounting: the stores accumulated every change since the end
        # of the previous stage (including user updates made between stages).
        # Taking the deltas here nets out intra-stage churn — in particular
        # the clear-and-recompute of the derived store, whose net delta is
        # exactly "what changed in the derived relations this stage".
        store_delta = self.state.store.take_delta()
        derived_delta = self.state.derived.take_delta()
        provided_delta = self.state.take_provided_delta()
        result.derived_changed = bool(derived_delta)
        result.visible_delta = self._visible_delta(store_delta, derived_delta,
                                                   provided_delta)
        # Stage boundary: everything this stage wrote — facts, schemas, rules,
        # delegations — becomes durable in one transaction.  This is the
        # recovery unit: a peer that dies mid-stage reopens at the previous
        # stage boundary.
        if commit:
            self.state.commit()
        return result

    def _visible_delta(self, store_delta: Delta, derived_delta: Delta,
                       provided_delta: Delta) -> Delta:
        """Combine the per-source deltas into one delta of *visible* facts.

        A fact reported deleted by one source may still be visible through
        another (e.g. a derivation that vanished while the same fact is still
        provided by a remote sender); such deletions are dropped so the delta
        describes actual visibility transitions.
        """
        combined = store_delta.merge(derived_delta).merge(provided_delta)
        if not combined.deleted:
            return combined
        still_visible = {
            fact for fact in combined.deleted
            if fact in self.state.provided
            or self.state.derived.contains(fact)
            or self.state.store.contains(fact)
        }
        if not still_visible:
            return combined
        return Delta(combined.inserted, combined.deleted - still_visible)

    def run_to_quiescence(self, max_stages: int = 50) -> List[StageResult]:
        """Run stages until the peer is locally quiescent (single-peer helper).

        Outgoing messages are *not* delivered anywhere; use
        :class:`repro.runtime.system.WebdamLogSystem` to run a network of
        peers.  Raises :class:`EvaluationError` if quiescence is not reached
        within ``max_stages``.
        """
        results: List[StageResult] = []
        for _ in range(max_stages):
            result = self.run_stage()
            results.append(result)
            if result.is_quiescent():
                return results
        raise EvaluationError(
            f"peer {self.peer} did not reach quiescence within {max_stages} stages"
        )

    def close(self) -> None:
        """Commit outstanding writes and release the storage backend.

        On a durable backend the peer can later be rebuilt over the same
        database and will restore its facts, rules and installed delegations.
        """
        self.state.close()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def query(self, relation: str, peer: Optional[str] = None) -> Tuple[Fact, ...]:
        """Facts of ``relation@peer`` currently visible at this peer."""
        return self.state.query(relation, peer)

    def snapshot(self) -> Dict[str, Tuple[Fact, ...]]:
        """Snapshot of every non-empty relation visible at this peer."""
        return self.state.snapshot()

    def counts(self) -> Dict[str, int]:
        """Size counters of the peer state plus lifetime work counters."""
        combined = self.state.counts()
        combined.update(self.eval_counters)
        return combined

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _consume_inputs(self) -> int:
        consumed = 0
        pending = self.state.pending

        # Deferred local extensional updates decided by the previous stage.
        if self.state.deferred_updates:
            consumed += len(self.state.deferred_updates)
            self.state.store.apply(self.state.deferred_updates)
            self.state.deferred_updates = Delta.empty()

        for _sender, fact in pending.inserted_facts:
            consumed += 1
            if fact.peer != self.peer:
                # Mis-routed fact; ignore (the runtime should not let this happen).
                continue
            if self.state.is_local_intensional(fact):
                self.state.add_provided(fact)
            else:
                self.state.store.insert(fact)
        for _sender, fact in pending.deleted_facts:
            consumed += 1
            if fact.peer != self.peer:
                continue
            if self.state.is_local_intensional(fact):
                self.state.remove_provided(fact)
            else:
                self.state.store.delete(fact)
        for sender, delegation_id, rule in pending.delegations_to_install:
            consumed += 1
            self.state.install_delegation(delegation_id, sender, rule)
            self._invalidate_program_cache()
        for sender, delegation_id in pending.delegations_to_retract:
            installed = self.state.retract_delegation(delegation_id)
            if installed is None:
                # Unknown (or already-retracted) delegation: a duplicated
                # retraction delivery must be a strict no-op — in particular
                # it must not invalidate the program cache, whose resulting
                # recompute would touch provenance support counts twice.
                continue
            if installed.delegator != sender:
                # Only the original delegator may retract; re-install (the
                # rule set is net unchanged, so the cache stays valid too).
                self.state.install_delegation(
                    delegation_id, installed.delegator, installed.rule
                )
                continue
            consumed += 1
            self._invalidate_program_cache()
        pending.clear()
        return consumed

    def _provenance_incremental(self) -> bool:
        """``True`` when the attached tracker can ride the incremental paths.

        Requires the maintenance hooks (``on_base_deleted`` / ``on_rederive``
        / ``on_full_recompute``) and cumulative mode: a per-stage tracker
        expects every stage to re-record all derivations, which only the
        historical full recompute provides.
        """
        provenance = self.provenance
        if provenance is None or getattr(provenance, "per_stage", False):
            return False
        return all(hasattr(provenance, hook) for hook in
                   ("on_base_deleted", "on_rederive", "on_full_recompute"))

    def _run_fixpoint(self, result: StageResult) -> RuleOutcome:
        """Run the local fixpoint, choosing the cheapest sound strategy.

        * **full** — clear every local intensional relation and recompute
          (the seed engine's behaviour).  Used when the program or a schema
          changed, in ``"naive"`` mode, or when a legacy provenance recorder
          (no maintenance hooks, or per-stage mode) is attached.
        * **skip** — the input delta is empty: nothing can change, the
          memoised outcome is returned without evaluating anything.
        * **delta** — the input delta is insert-only and does not reach a
          negated literal: seminaive evaluation seeds from the delta and
          re-fires only the rules whose body reads a delta predicate.
        * **rederive** — the delta contains deletions (or reaches negation):
          the affected predicate closure is cleared and recomputed; rules and
          relations outside the closure are untouched.

        In every case the outcome handed to :meth:`_emit_outputs` is the
        union of the per-rule memo, so remote updates, delegations and
        deferred extensional writes diff against complete sets — exactly what
        a full recompute would have produced.
        """
        rules = self.state.all_rules()
        analysis = self._analysis
        program_changed = analysis is None or not analysis.matches(rules)
        if program_changed:
            analysis = self._analysis = _ProgramAnalysis(self.peer, rules)
            # Identity backstop: rule mutations that bypassed the engine API
            # still move the program version (and drop cached plans).
            self.program_version += 1
            if self._planner is not None:
                self._planner.sync(self.program_version)

        input_delta = (self._carryover_delta
                       .merge(self.state.store.peek_delta())
                       .merge(self.state.peek_provided_delta()))
        self._carryover_delta = Delta.empty()

        provenance_incremental = self._provenance_incremental()
        force_full = (self.evaluation_mode == "naive"
                      or (self.provenance is not None and not provenance_incremental)
                      or program_changed
                      or self._schema_changed)
        self._schema_changed = False

        # Deleted input facts die in the provenance graph regardless of the
        # evaluation path chosen below: their derivations (and transitive
        # dependents) are retracted, and the rederive/full pass re-records
        # whatever is still derivable.
        if provenance_incremental and input_delta.deleted:
            self.provenance.on_base_deleted(input_delta.deleted)

        delta_predicates = ({fact.qualified_relation for fact in input_delta.inserted}
                            | {fact.qualified_relation for fact in input_delta.deleted})
        if not force_full and not delta_predicates:
            result.evaluation_path = "skip"
            return self._memo_outcome(analysis)

        evaluator = RuleEvaluator(
            peer=self.peer,
            fact_source=self.state.fact_view,
            kind_resolver=self.state.kind_of,
            on_derivation=self.provenance.record if self.provenance is not None else None,
            use_indexes=self.use_indexes,
            # Whole-body SQL pushdown: only meaningful on SQL-capable
            # backends, and only when no provenance hook needs per-derivation
            # support tuples.  Disabled together with the indexes so the
            # scan-everything baseline stays a true baseline.
            pushdown=(self.state.pushdown
                      if self.use_indexes and self.provenance is None else None),
            planner=self._planner,
        )
        if force_full:
            result.evaluation_path = "full"
            outcome = self._fixpoint_rederive(analysis, evaluator, result,
                                              None, None)
            self._record_stage_plan(evaluator, analysis, result)
            return outcome

        # Negation makes insertions non-monotone: check the *derivation
        # closure* of the delta against the negated predicates — an insert
        # may only reach a negated occurrence through derived intermediates.
        reachable = analysis.derivation_closure(delta_predicates)
        if input_delta.deleted or reachable is None or analysis.touches_negation(reachable):
            affected_predicates, affected_rules, needs_full = (
                analysis.affected_closure(delta_predicates))
            if reachable is None or needs_full:
                result.evaluation_path = "full"
                outcome = self._fixpoint_rederive(analysis, evaluator, result,
                                                  None, None)
            else:
                result.evaluation_path = "rederive"
                outcome = self._fixpoint_rederive(analysis, evaluator, result,
                                                  affected_predicates,
                                                  affected_rules)
            self._record_stage_plan(evaluator, analysis, result)
            return outcome

        result.evaluation_path = "delta"
        outcome = self._fixpoint_seminaive(analysis, evaluator, result,
                                           input_delta.inserted)
        self._record_stage_plan(evaluator, analysis, result)
        return outcome

    def _record_stage_plan(self, evaluator: RuleEvaluator,
                           analysis: _ProgramAnalysis,
                           result: StageResult) -> None:
        """Surface the executed plans (and planner counters) on the stage."""
        planner = self._planner
        if planner is None:
            return
        magic = tuple(sorted({
            head for rule in analysis.rules
            if (head := rule.head.relation_constant()) is not None
            and head.startswith(MAGIC_PREFIX)}))
        plans = tuple(evaluator.plans_used.values())
        if plans or magic:
            result.plan = StagePlan(rule_plans=plans, magic_relations=magic)
        # Planner counters are lifetime totals, like the other eval counters.
        for key, value in planner.counters.items():
            self.eval_counters[key] = value

    def _fixpoint_seminaive(self, analysis: _ProgramAnalysis,
                            evaluator: RuleEvaluator, result: StageResult,
                            inserted: FrozenSet[Fact]) -> RuleOutcome:
        """Seminaive pass over an insert-only input delta.

        The derived store is *not* cleared: previous derivations stay valid
        under insertions (negation is excluded by the caller).  Each stratum
        drains a delta of facts new this stage; rules re-fire only when their
        body reads a delta predicate, restricted to the delta facts.
        """
        accumulated: Dict[str, Set[Fact]] = {}
        for fact in inserted:
            accumulated.setdefault(fact.qualified_relation, set()).add(fact)

        for stratum in analysis.strata:
            delta = {predicate: set(facts)
                     for predicate, facts in accumulated.items()}
            while delta:
                result.fixpoint_iterations += 1
                delta_predicates = set(delta)
                new_facts: Set[Fact] = set()
                for rule in stratum:
                    if not analysis.triggered(rule, delta_predicates):
                        continue
                    result.rules_evaluated += 1
                    outcome = evaluator.evaluate_rule_delta(rule, delta)
                    result.substitutions_explored += outcome.substitutions_explored
                    self._memo_merge(rule, outcome)
                    for fact in outcome.local_intensional:
                        insert_delta = self.state.derived.insert(fact)
                        if insert_delta.deleted:
                            # Primary-key replacement on a derived relation:
                            # the insertion displaced an existing fact, which
                            # is no longer monotone — fall back to a full
                            # recompute for this stage.
                            result.evaluation_path = "full"
                            return self._fixpoint_rederive(analysis, evaluator,
                                                           result, None, None)
                        if insert_delta:
                            result.derived_intensional += 1
                            new_facts.add(fact)
                delta = {}
                for fact in new_facts:
                    delta.setdefault(fact.qualified_relation, set()).add(fact)
                    accumulated.setdefault(fact.qualified_relation, set()).add(fact)
        return self._memo_outcome(analysis)

    def _fixpoint_rederive(self, analysis: _ProgramAnalysis,
                           evaluator: RuleEvaluator, result: StageResult,
                           affected_predicates: Optional[Set[str]],
                           affected_rules: Optional[Set[Rule]]) -> RuleOutcome:
        """Delete-and-rederive: clear the affected derived relations and
        recompute their defining rules stratum by stratum.

        ``affected_* = None`` means *everything* — the seed engine's
        clear-and-recompute.  The clear-deltas stay pending and net out
        against the re-derivations, so the delta taken at the end of the
        stage is still the true derived change.
        """
        full = affected_rules is None
        if self._provenance_incremental():
            # Mirror the store clears in the provenance graph: the cleared
            # predicates' derivations die here and are re-recorded by the
            # re-evaluation below, so the graph tracks exact derivability.
            if full:
                self.provenance.on_full_recompute()
            else:
                self.provenance.on_rederive(affected_predicates)
        for schema in list(self.state.schemas.intensional()):
            if schema.peer != self.peer:
                continue
            if full or f"{schema.name}@{schema.peer}" in affected_predicates:
                self.state.derived.clear_relation(schema.name, schema.peer)
        if full:
            self._rule_memo = {}
        else:
            for rule in affected_rules:
                self._rule_memo.pop(rule, None)

        for stratum in analysis.strata:
            selected = stratum if full else [r for r in stratum if r in affected_rules]
            if not selected:
                continue
            changed = True
            while changed:
                changed = False
                result.fixpoint_iterations += 1
                for rule in selected:
                    result.rules_evaluated += 1
                    outcome = evaluator.evaluate_rule(rule)
                    result.substitutions_explored += outcome.substitutions_explored
                    result.compiled_sql += outcome.compiled_sql
                    self._memo_merge(rule, outcome)
                    for fact in outcome.local_intensional:
                        if self.state.derived.insert(fact):
                            changed = True
                            result.derived_intensional += 1
        return self._memo_outcome(analysis)

    def _memo_merge(self, rule: Rule, outcome: RuleOutcome) -> None:
        """Fold one evaluation's non-intensional outputs into the rule's memo.

        Local intensional facts live in the derived store (which *is* their
        memo); only the outputs that :meth:`_emit_outputs` diffs are kept.
        """
        entry = self._rule_memo.get(rule)
        if entry is None:
            entry = self._rule_memo[rule] = RuleOutcome()
        entry.local_extensional |= outcome.local_extensional
        entry.remote_facts |= outcome.remote_facts
        entry.delegations |= outcome.delegations

    def _memo_outcome(self, analysis: _ProgramAnalysis) -> RuleOutcome:
        """The stage outcome: the union of every current rule's memo."""
        total = RuleOutcome()
        for rule in analysis.rules:
            entry = self._rule_memo.get(rule)
            if entry is not None:
                total.local_extensional |= entry.local_extensional
                total.remote_facts |= entry.remote_facts
                total.delegations |= entry.delegations
        return total

    def _emit_outputs(self, outcome: RuleOutcome, result: StageResult) -> None:
        # -- facts derived for remote peers ------------------------------ #
        current_by_target: Dict[str, Set[Fact]] = {}
        for fact in outcome.remote_facts:
            current_by_target.setdefault(fact.peer, set()).add(fact)

        targets = set(current_by_target) | set(self._sent_remote)
        derived_updates: Dict[str, Tuple[Set[Fact], Set[Fact]]] = {}
        for target in targets:
            current = current_by_target.get(target, set())
            previous = self._sent_remote.get(target, set())
            newly_derived = current - previous
            vanished = previous - current
            # Facts destined to relations known to be intensional at the
            # remote peer are view facts: retract them when no longer
            # derivable.  Unknown or extensional relations are insert-only
            # updates (the paper's semantics for updates to extensional
            # relations of other peers).
            to_delete = {
                fact for fact in vanished
                if self.state.kind_of(fact.relation, fact.peer) is RelationKind.INTENSIONAL
            }
            if newly_derived or to_delete:
                derived_updates[target] = (newly_derived, to_delete)
            self._sent_remote[target] = (previous - to_delete) | current

        # -- user-initiated updates to remote relations ------------------ #
        user_targets = set(self._pending_remote_inserts) | set(self._pending_remote_deletes)
        for target in sorted(targets | user_targets):
            derived_ins, derived_del = derived_updates.get(target, (set(), set()))
            user_ins = self._pending_remote_inserts.pop(target, set())
            user_del = self._pending_remote_deletes.pop(target, set())
            inserted = frozenset(derived_ins | user_ins)
            deleted = frozenset(derived_del | user_del)
            if inserted or deleted:
                result.outgoing_updates.append(
                    OutgoingUpdate(target=target, inserted=inserted, deleted=deleted)
                )

        # -- delegations -------------------------------------------------- #
        diff = self.state.delegation_tracker.diff(outcome.delegations)
        self.state.delegation_tracker.commit(diff)
        result.delegations_to_install = list(diff.to_install)
        result.delegations_to_retract = list(diff.to_retract)
