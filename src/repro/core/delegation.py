"""Delegation: the distinguishing feature of WebdamLog.

When a rule's body refers to relations that live on a remote peer, the local
peer evaluates the longest *local prefix* of the body (left to right) and,
for every satisfying assignment of that prefix, installs the partially
instantiated *remainder* of the rule at the peer owning the first non-local
atom.  Example from the paper — the rule at peer ``Jules``::

    attendeePictures@Jules($id, $name, $owner, $data) :-
        selectedAttendee@Jules($attendee),
        pictures@$attendee($id, $name, $owner, $data)

together with the fact ``selectedAttendee@Jules("Émilien")`` leads Jules to
delegate to ``Émilien`` the rule::

    attendeePictures@Jules($id, $name, $owner, $data) :-
        pictures@Émilien($id, $name, $owner, $data)

Delegations are *provisional*: they remain installed only as long as the
facts that justified them hold at the delegator.  The engine therefore
re-computes the set of required delegations at every stage and the
:class:`DelegationTracker` diffs it against what was previously sent,
emitting install and retract messages as needed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.errors import DelegationError
from repro.core.rules import Atom, Rule


@dataclass(frozen=True)
class Delegation:
    """A rule to be installed at a remote peer.

    Attributes
    ----------
    target:
        Peer at which the rule must be installed.
    rule:
        The delegated rule (already partially instantiated).
    delegator:
        Peer that sends the delegation.
    origin_rule_id:
        Identifier of the rule at the delegator from which this delegation
        was derived.
    delegation_id:
        Stable identifier: a hash of (delegator, target, canonical rule).
        Re-deriving the same delegation at a later stage yields the same id,
        which is what allows the tracker to avoid re-sending it.
    """

    target: str
    rule: Rule
    delegator: str
    origin_rule_id: str
    delegation_id: str = field(default="")

    def __post_init__(self):
        if not self.delegation_id:
            object.__setattr__(self, "delegation_id", self.compute_id())

    def compute_id(self) -> str:
        """Stable content-based identifier of the delegation."""
        canonical = repr((self.delegator, self.target, self.origin_rule_id,
                          self.rule.canonical_key()))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        return f"deleg-{digest}"

    def __str__(self) -> str:
        return f"[{self.delegator} -> {self.target}] {self.rule}"


@dataclass(frozen=True)
class InstalledDelegation:
    """A delegation as seen by the *receiving* peer."""

    delegation_id: str
    delegator: str
    rule: Rule

    def __str__(self) -> str:
        return f"[from {self.delegator}] {self.rule}"


@dataclass
class DelegationDiff:
    """Difference between the delegations required now and those already sent."""

    to_install: List[Delegation] = field(default_factory=list)
    to_retract: List[Delegation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.to_install) or bool(self.to_retract)

    def counts(self) -> Tuple[int, int]:
        """``(installs, retracts)``."""
        return len(self.to_install), len(self.to_retract)


class DelegationTracker:
    """Tracks, per target peer, which delegations this peer currently has outstanding.

    The engine computes the full set of delegations required by the current
    stage; :meth:`diff` compares it with the outstanding set and returns what
    must be newly installed and what must be retracted.  :meth:`commit`
    records the new outstanding set once the messages have actually been
    emitted.
    """

    def __init__(self, owner: str):
        self.owner = owner
        self._outstanding: Dict[str, Delegation] = {}

    def outstanding(self) -> Tuple[Delegation, ...]:
        """Every delegation currently believed to be installed remotely."""
        return tuple(self._outstanding.values())

    def outstanding_for(self, target: str) -> Tuple[Delegation, ...]:
        """Outstanding delegations for one target peer."""
        return tuple(d for d in self._outstanding.values() if d.target == target)

    def diff(self, required: Iterable[Delegation]) -> DelegationDiff:
        """Compare ``required`` with the outstanding set."""
        required_by_id: Dict[str, Delegation] = {}
        for delegation in required:
            if delegation.delegator != self.owner:
                raise DelegationError(
                    f"peer {self.owner} cannot send a delegation authored by "
                    f"{delegation.delegator}"
                )
            required_by_id[delegation.delegation_id] = delegation
        diff = DelegationDiff()
        for delegation_id, delegation in required_by_id.items():
            if delegation_id not in self._outstanding:
                diff.to_install.append(delegation)
        for delegation_id, delegation in self._outstanding.items():
            if delegation_id not in required_by_id:
                diff.to_retract.append(delegation)
        diff.to_install.sort(key=lambda d: d.delegation_id)
        diff.to_retract.sort(key=lambda d: d.delegation_id)
        return diff

    def commit(self, diff: DelegationDiff) -> None:
        """Record that the install/retract messages of ``diff`` have been sent."""
        for delegation in diff.to_retract:
            self._outstanding.pop(delegation.delegation_id, None)
        for delegation in diff.to_install:
            self._outstanding[delegation.delegation_id] = delegation

    def forget_target(self, target: str) -> List[Delegation]:
        """Drop every outstanding delegation towards ``target`` (e.g. peer left)."""
        dropped = [d for d in self._outstanding.values() if d.target == target]
        for delegation in dropped:
            self._outstanding.pop(delegation.delegation_id, None)
        return dropped


class DelegationStore:
    """Delegations installed *at* this peer by remote delegators."""

    def __init__(self, owner: str):
        self.owner = owner
        self._installed: Dict[str, InstalledDelegation] = {}

    def __len__(self) -> int:
        return len(self._installed)

    def __contains__(self, delegation_id: str) -> bool:
        return delegation_id in self._installed

    def install(self, delegation_id: str, delegator: str, rule: Rule) -> InstalledDelegation:
        """Install (or overwrite) a delegated rule."""
        installed = InstalledDelegation(delegation_id=delegation_id, delegator=delegator,
                                        rule=rule)
        self._installed[delegation_id] = installed
        return installed

    def retract(self, delegation_id: str) -> Optional[InstalledDelegation]:
        """Remove a delegated rule; returns it if it was installed."""
        return self._installed.pop(delegation_id, None)

    def retract_from(self, delegator: str) -> List[InstalledDelegation]:
        """Remove every delegation received from ``delegator``."""
        removed = [d for d in self._installed.values() if d.delegator == delegator]
        for delegation in removed:
            self._installed.pop(delegation.delegation_id, None)
        return removed

    def rules(self) -> Tuple[Rule, ...]:
        """The delegated rules, in a deterministic order."""
        ordered = sorted(self._installed.values(), key=lambda d: d.delegation_id)
        return tuple(d.rule for d in ordered)

    def all(self) -> Tuple[InstalledDelegation, ...]:
        """Every installed delegation, in a deterministic order."""
        return tuple(sorted(self._installed.values(), key=lambda d: d.delegation_id))

    def by_delegator(self) -> Dict[str, List[InstalledDelegation]]:
        """Installed delegations grouped by delegator."""
        grouped: Dict[str, List[InstalledDelegation]] = {}
        for delegation in self._installed.values():
            grouped.setdefault(delegation.delegator, []).append(delegation)
        return grouped
