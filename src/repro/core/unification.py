"""Substitutions and matching.

WebdamLog evaluation only ever needs *matching* (one-way unification of an
atom containing variables against a ground fact), not full unification of two
non-ground terms, but a general :func:`unify_terms` is provided because the
delegation machinery and the tests use it to compare rules.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core.facts import Fact
from repro.core.rules import Atom
from repro.core.terms import Constant, Term, Variable

#: A substitution maps variables to terms (constants during evaluation).
Substitution = Dict[Variable, Term]


def empty_substitution() -> Substitution:
    """Return a new empty substitution."""
    return {}


def apply_term(term: Term, substitution: Mapping[Variable, Term]) -> Term:
    """Apply ``substitution`` to a single term."""
    if isinstance(term, Variable):
        return substitution.get(term, term)
    return term


def compose(first: Mapping[Variable, Term], second: Mapping[Variable, Term]) -> Substitution:
    """Compose two substitutions: applying the result equals applying ``first`` then ``second``."""
    composed: Substitution = {}
    for var, term in first.items():
        composed[var] = apply_term(term, second)
    for var, term in second.items():
        composed.setdefault(var, term)
    return composed


def match_term(pattern: Term, value: Constant,
               substitution: Substitution) -> Optional[Substitution]:
    """Match a (possibly variable) pattern term against a ground constant.

    Returns an extended copy of ``substitution`` on success, ``None`` on
    failure.  The input substitution is never mutated.
    """
    if isinstance(pattern, Constant):
        if pattern == value:
            return dict(substitution)
        return None
    bound = substitution.get(pattern)
    if bound is None:
        extended = dict(substitution)
        extended[pattern] = value
        return extended
    if isinstance(bound, Constant) and bound == value:
        return dict(substitution)
    return None


def match_atom_fact(atom: Atom, fact: Fact,
                    substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Match a (positive) atom against a ground fact.

    The relation and peer positions participate in matching, so an atom
    ``pictures@$attendee($id, ...)`` binds ``$attendee`` to the peer of the
    fact.  Returns the extended substitution, or ``None`` when the match
    fails.  Negated atoms cannot be matched against facts directly; callers
    handle negation by checking for the *absence* of matches.
    """
    if atom.negated:
        raise ValueError("cannot match a negated atom against a fact")
    if atom.arity != fact.arity:
        return None
    current: Substitution = dict(substitution) if substitution else {}
    result = match_term(atom.relation, Constant(fact.relation), current)
    if result is None:
        return None
    result = match_term(atom.peer, Constant(fact.peer), result)
    if result is None:
        return None
    for pattern, value in zip(atom.args, fact.terms()):
        result = match_term(pattern, value, result)
        if result is None:
            return None
    return result


def unify_terms(left: Term, right: Term,
                substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """General (two-way) unification of two terms under an existing substitution."""
    current: Substitution = dict(substitution) if substitution else {}
    left = apply_term(left, current)
    right = apply_term(right, current)
    if isinstance(left, Constant) and isinstance(right, Constant):
        return current if left == right else None
    if isinstance(left, Variable):
        current[left] = right
        return current
    if isinstance(right, Variable):
        current[right] = left
        return current
    return None


def unify_atoms(left: Atom, right: Atom,
                substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two atoms position-wise (negation flags must agree)."""
    if left.negated != right.negated or left.arity != right.arity:
        return None
    current: Optional[Substitution] = dict(substitution) if substitution else {}
    pairs: Iterable[Tuple[Term, Term]] = (
        (left.relation, right.relation),
        (left.peer, right.peer),
        *zip(left.args, right.args),
    )
    for l, r in pairs:
        current = unify_terms(l, r, current)
        if current is None:
            return None
    return current


def ground_atom(atom: Atom, substitution: Mapping[Variable, Term]) -> Atom:
    """Apply a substitution and return the (hopefully ground) result."""
    return atom.substitute(dict(substitution))


def is_ground_substituted(atom: Atom, substitution: Mapping[Variable, Term]) -> bool:
    """``True`` when applying ``substitution`` to ``atom`` leaves no variables."""
    return atom.substitute(dict(substitution)).is_ground()
