"""Per-peer state of the WebdamLog engine.

A peer's state consists of

* the **schemas** it knows about,
* its **extensional store** (base facts of relations located at the peer),
* the **provided facts** received from remote peers for *intensional* local
  relations — they persist until the sender retracts them (or, in strict
  stage semantics, for a single stage),
* the **derived store** of intensional facts computed by the last stage,
* the peer's **own rules**, and
* the **delegations** installed at the peer by remote delegators.

The state also exposes the *fact view* used by the evaluator: the union of
extensional, ephemeral and derived facts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.delegation import DelegationStore, DelegationTracker, InstalledDelegation
from repro.core.errors import SchemaError
from repro.core.facts import Delta, Fact, FactStore, fact_matches_bindings
from repro.core.rules import Rule, ensure_rule_counter_above
from repro.core.schema import RelationKind, RelationSchema, SchemaRegistry
from repro.store import serialize
from repro.store.backend import DERIVED_NAMESPACE, STORE_NAMESPACE
from repro.store.memory import MemoryBackend


@dataclass
class PendingInput:
    """Inputs received since the previous stage, waiting to be consumed by the next one."""

    inserted_facts: List[Tuple[str, Fact]] = field(default_factory=list)
    deleted_facts: List[Tuple[str, Fact]] = field(default_factory=list)
    delegations_to_install: List[Tuple[str, str, Rule]] = field(default_factory=list)
    delegations_to_retract: List[Tuple[str, str]] = field(default_factory=list)

    def is_empty(self) -> bool:
        """``True`` when nothing is waiting."""
        return not (self.inserted_facts or self.deleted_facts
                    or self.delegations_to_install or self.delegations_to_retract)

    def clear(self) -> None:
        """Drop every pending input."""
        self.inserted_facts.clear()
        self.deleted_facts.clear()
        self.delegations_to_install.clear()
        self.delegations_to_retract.clear()

    def size(self) -> int:
        """Total number of pending items."""
        return (len(self.inserted_facts) + len(self.deleted_facts)
                + len(self.delegations_to_install) + len(self.delegations_to_retract))


class PeerState:
    """Mutable state of one WebdamLog peer.

    When constructed over a durable backend that already holds data (a
    database file from a previous run), the state **restores itself**:
    persisted schemas are re-declared, fact tables re-attached, own rules
    re-added and installed delegations re-installed — all before the first
    stage runs.  ``restored`` reports whether anything was recovered.
    """

    def __init__(self, peer: str, schemas: Optional[SchemaRegistry] = None,
                 backend=None):
        self.peer = peer
        self.schemas = schemas if schemas is not None else SchemaRegistry()
        self.backend = backend if backend is not None else MemoryBackend()
        # Schemas must be back before the fact stores attach their tables.
        persisted_schemas = self.backend.load_meta("schema")
        for _key, payload in persisted_schemas:
            self.schemas.declare(serialize.decode_schema(payload))
        self.store = FactStore(self.schemas, owner=peer, backend=self.backend,
                               namespace=STORE_NAMESPACE)
        self.derived = FactStore(self.schemas, owner=peer, backend=self.backend,
                                 namespace=DERIVED_NAMESPACE)
        self.provided: Set[Fact] = set()
        self._provided_by_relation: Dict[Tuple[str, str], Set[Fact]] = {}
        self._provided_inserted: Set[Fact] = set()
        self._provided_deleted: Set[Fact] = set()
        self.own_rules: List[Rule] = []
        self.delegations_in = DelegationStore(peer)
        persisted_rules = self.backend.load_meta("rule")
        for _key, payload in persisted_rules:
            self.own_rules.append(serialize.decode_rule(payload))
        persisted_delegations = self.backend.load_meta("delegation")
        for _key, payload in persisted_delegations:
            installed = serialize.decode_delegation(payload)
            self.delegations_in.install(installed.delegation_id, installed.delegator,
                                        installed.rule)
        self.restored = bool(persisted_schemas or persisted_rules
                             or persisted_delegations
                             or self.store.relations() or self.derived.relations())
        if self.restored:
            self._advance_rule_counter()
        self.delegation_tracker = DelegationTracker(peer)
        self.pending = PendingInput()
        self.deferred_updates: Delta = Delta.empty()
        self.stage_counter = 0
        # SQL-capable backends get a rule-body compiler; the engine hands it
        # to the evaluator as the whole-body fast path.
        if getattr(self.backend, "SUPPORTS_SQL", False):
            from repro.store.compiler import BodyPushdown

            self.pushdown = BodyPushdown(self)
        else:
            self.pushdown = None

    def _advance_rule_counter(self) -> None:
        """Keep fresh rule ids from colliding with restored ones.

        Restored rules keep their persisted ``rule-N`` identifiers (delegation
        ids are content-hashed over them, so identity must survive recovery);
        the global counter is bumped past every numeric suffix seen.
        """
        highest = 0
        for rule in self.own_rules:
            for match in re.findall(r"(\d+)", rule.rule_id):
                highest = max(highest, int(match))
        for installed in self.delegations_in.all():
            for match in re.findall(r"(\d+)", installed.rule.rule_id):
                highest = max(highest, int(match))
        if highest:
            ensure_rule_counter_above(highest)

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #

    def commit(self) -> None:
        """Make every change since the last commit durable (stage boundary)."""
        self.backend.commit()

    def close(self) -> None:
        """Commit and release the backend."""
        self.backend.close()

    # ------------------------------------------------------------------ #
    # schema helpers
    # ------------------------------------------------------------------ #

    def declare(self, schema: RelationSchema) -> RelationSchema:
        """Declare a relation schema (persisted on durable backends)."""
        declared = self.schemas.declare(schema)
        self.backend.save_meta("schema", f"{declared.name}@{declared.peer}",
                               serialize.encode_schema(declared))
        return declared

    def kind_of(self, relation: str, peer: str) -> Optional[RelationKind]:
        """Kind of ``relation@peer`` according to the known schemas."""
        schema = self.schemas.get(relation, peer)
        return schema.kind if schema is not None else None

    def is_local_intensional(self, fact: Fact) -> bool:
        """``True`` when ``fact`` belongs to a local intensional relation."""
        return (fact.peer == self.peer
                and self.kind_of(fact.relation, fact.peer) is RelationKind.INTENSIONAL)

    # ------------------------------------------------------------------ #
    # rules
    # ------------------------------------------------------------------ #

    def add_rule(self, rule: Rule) -> Rule:
        """Add one of the peer's own rules (validated for safety)."""
        rule.check_safety()
        if rule.author is None:
            rule = Rule(head=rule.head, body=rule.body, author=self.peer,
                        origin=rule.origin, rule_id=rule.rule_id)
        self.own_rules.append(rule)
        self.backend.save_meta("rule", rule.rule_id, serialize.encode_rule(rule))
        return rule

    def remove_rule(self, rule_id: str) -> Optional[Rule]:
        """Remove an own rule by identifier; returns it when found."""
        for index, rule in enumerate(self.own_rules):
            if rule.rule_id == rule_id:
                self.backend.delete_meta("rule", rule_id)
                return self.own_rules.pop(index)
        return None

    def replace_rule(self, rule_id: str, new_rule: Rule) -> Rule:
        """Replace an own rule in place (used by the Wepic "customize rules" feature)."""
        new_rule.check_safety()
        for index, rule in enumerate(self.own_rules):
            if rule.rule_id == rule_id:
                replacement = Rule(head=new_rule.head, body=new_rule.body,
                                   author=new_rule.author or self.peer,
                                   origin=new_rule.origin, rule_id=rule_id)
                self.own_rules[index] = replacement
                self.backend.save_meta("rule", rule_id, serialize.encode_rule(replacement))
                return replacement
        raise KeyError(f"no rule with id {rule_id!r} at peer {self.peer}")

    def all_rules(self) -> Tuple[Rule, ...]:
        """Own rules followed by installed delegated rules (deterministic order)."""
        return tuple(self.own_rules) + self.delegations_in.rules()

    def find_rules(self, head_relation: str) -> List[Rule]:
        """Own rules whose head relation name equals ``head_relation``."""
        return [r for r in self.own_rules if r.head.relation_constant() == head_relation]

    # ------------------------------------------------------------------ #
    # installed delegations (persisted on durable backends)
    # ------------------------------------------------------------------ #

    def install_delegation(self, delegation_id: str, delegator: str,
                           rule: Rule) -> InstalledDelegation:
        """Install a delegated rule and persist it.

        Content-hashed delegation ids make this idempotent: a delegator that
        re-sends an install after the receiving peer recovered simply
        overwrites the identical record.
        """
        installed = self.delegations_in.install(delegation_id, delegator, rule)
        self.backend.save_meta("delegation", delegation_id,
                               serialize.encode_delegation(installed))
        return installed

    def retract_delegation(self, delegation_id: str) -> Optional[InstalledDelegation]:
        """Retract a delegated rule and delete its persisted record."""
        installed = self.delegations_in.retract(delegation_id)
        if installed is not None:
            self.backend.delete_meta("delegation", delegation_id)
        return installed

    # ------------------------------------------------------------------ #
    # facts
    # ------------------------------------------------------------------ #

    def insert_fact(self, fact: Fact) -> Delta:
        """Insert a base fact into the local extensional store.

        Facts of relations located at other peers cannot be stored locally;
        the engine routes them through messages instead.
        """
        if fact.peer != self.peer:
            raise SchemaError(
                f"peer {self.peer} cannot store fact {fact} of a relation located at "
                f"{fact.peer}; send it as an update instead"
            )
        if self.is_local_intensional(fact):
            raise SchemaError(
                f"cannot insert base fact into intensional relation {fact.qualified_relation}"
            )
        return self.store.insert(fact)

    def insert_facts(self, facts: Iterable[Fact]) -> Delta:
        """Insert many base facts at once (bulk-load fast path).

        Same validation as :meth:`insert_fact` per fact, then one batched
        store insert, so SQL backends see a single ``executemany`` per
        relation instead of a statement per fact.
        """
        validated = []
        for fact in facts:
            if fact.peer != self.peer:
                raise SchemaError(
                    f"peer {self.peer} cannot store fact {fact} of a relation located "
                    f"at {fact.peer}; send it as an update instead"
                )
            if self.is_local_intensional(fact):
                raise SchemaError(
                    f"cannot insert base fact into intensional relation "
                    f"{fact.qualified_relation}"
                )
            validated.append(fact)
        return self.store.insert_many(validated)

    def delete_fact(self, fact: Fact) -> Delta:
        """Delete a base fact from the local extensional store."""
        if fact.peer != self.peer:
            raise SchemaError(
                f"peer {self.peer} cannot delete fact {fact} of a relation located at "
                f"{fact.peer}"
            )
        return self.store.delete(fact)

    def add_provided(self, fact: Fact) -> None:
        """Record a fact received from a remote peer for a local intensional relation."""
        if fact in self.provided:
            return
        self.provided.add(fact)
        self._provided_by_relation.setdefault((fact.relation, fact.peer), set()).add(fact)
        if fact in self._provided_deleted:
            self._provided_deleted.discard(fact)
        else:
            self._provided_inserted.add(fact)

    def remove_provided(self, fact: Fact) -> None:
        """Retract a previously provided fact (sender no longer derives it)."""
        if fact not in self.provided:
            return
        self.provided.discard(fact)
        bucket = self._provided_by_relation.get((fact.relation, fact.peer))
        if bucket is not None:
            bucket.discard(fact)
            if not bucket:
                del self._provided_by_relation[(fact.relation, fact.peer)]
        if fact in self._provided_inserted:
            self._provided_inserted.discard(fact)
        else:
            self._provided_deleted.add(fact)

    def clear_provided(self) -> Delta:
        """Drop every provided fact (strict per-stage input semantics).

        Returns the deletion delta of everything that was provided — even
        facts that only arrived this stage, because the fixpoint may already
        have derived from them (the incremental engine feeds this into the
        next stage's rederive pass).
        """
        removed = tuple(self.provided)
        for fact in removed:
            self.remove_provided(fact)
        return Delta.deletion(removed)

    def provided_count(self, relation: str, peer: str) -> int:
        """Number of provided facts currently held for ``relation@peer``.

        The SQL body compiler uses this to detect ephemeral facts that live
        outside the store tables (and therefore force a fallback).
        """
        bucket = self._provided_by_relation.get((relation, peer))
        return len(bucket) if bucket else 0

    def has_provided_changes(self) -> bool:
        """``True`` when the provided set changed since :meth:`take_provided_delta`."""
        return bool(self._provided_inserted or self._provided_deleted)

    def take_provided_delta(self) -> Delta:
        """Return and reset the net change of the provided set since the last call."""
        delta = Delta(frozenset(self._provided_inserted), frozenset(self._provided_deleted))
        self._provided_inserted = set()
        self._provided_deleted = set()
        return delta

    def peek_provided_delta(self) -> Delta:
        """The accumulated provided-set delta, without resetting it."""
        return Delta(frozenset(self._provided_inserted), frozenset(self._provided_deleted))

    # ------------------------------------------------------------------ #
    # the fact view used by the evaluator
    # ------------------------------------------------------------------ #

    def fact_view(self, relation: str, peer: str,
                  bindings: Optional[Dict[int, object]] = None) -> Iterator[Fact]:
        """Facts visible to rule evaluation for ``relation@peer``.

        The view is the union of the extensional store, the provided facts
        and the intensional facts derived so far in the current stage.  Facts
        of relations located at remote peers are never visible locally (they
        can only be reached through delegation).  ``bindings`` (a
        ``{position: value}`` map of argument positions already bound by the
        evaluator) routes the stored and derived facts through the incremental
        hash indexes instead of a relation scan.
        """
        if peer != self.peer:
            return
        yield from self.store.facts(relation, peer, bindings)
        yield from self.derived.facts(relation, peer, bindings)
        provided = self._provided_by_relation.get((relation, peer))
        if provided:
            if not bindings:
                yield from provided
            else:
                for fact in provided:
                    if fact_matches_bindings(fact, bindings):
                        yield fact

    def aggregate_view(self, relation: str, peer: str, width: int,
                       group_positions, specs) -> Optional[List[Tuple]]:
        """Push a grouped aggregate down into a SQL-capable backend.

        Returns output tuples of ``width`` values, or ``None`` when the
        backend cannot prove the pushdown bit-identical to the Python
        aggregation path (or is not SQL-capable at all).
        """
        if self.pushdown is None:
            return None
        return self.pushdown.aggregate(relation, peer, width, group_positions, specs)

    def query(self, relation: str, peer: Optional[str] = None) -> Tuple[Fact, ...]:
        """Facts of ``relation`` visible at this peer (stored, derived or provided)."""
        target_peer = peer or self.peer
        return tuple(sorted(self.fact_view(relation, target_peer), key=str))

    def snapshot(self) -> Dict[str, Tuple[Fact, ...]]:
        """Snapshot of every non-empty relation, keyed by qualified name."""
        result: Dict[str, List[Fact]] = {}
        for fact in self.store.all_facts():
            result.setdefault(fact.qualified_relation, []).append(fact)
        for fact in self.derived.all_facts():
            result.setdefault(fact.qualified_relation, []).append(fact)
        for fact in self.provided:
            result.setdefault(fact.qualified_relation, []).append(fact)
        return {name: tuple(sorted(facts, key=str)) for name, facts in sorted(result.items())}

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def counts(self) -> Dict[str, int]:
        """Basic size counters of the peer state."""
        return {
            "extensional_facts": self.store.total_facts(),
            "derived_facts": self.derived.total_facts(),
            "provided_facts": len(self.provided),
            "own_rules": len(self.own_rules),
            "installed_delegations": len(self.delegations_in),
            "outstanding_delegations": len(self.delegation_tracker.outstanding()),
            "stage": self.stage_counter,
        }
