"""Exception hierarchy for the WebdamLog reproduction.

All library errors derive from :class:`WebdamLogError` so callers can catch a
single exception type at API boundaries while still being able to
discriminate finer-grained failures.
"""


class WebdamLogError(Exception):
    """Base class for every error raised by the repro package."""


class ParseError(WebdamLogError):
    """Raised when a WebdamLog program, rule or fact cannot be parsed.

    Attributes
    ----------
    line:
        1-based line number of the offending token, when known.
    column:
        1-based column number of the offending token, when known.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" (line {line}"
            if column is not None:
                location += f", column {column}"
            location += ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SchemaError(WebdamLogError):
    """Raised on arity mismatches, unknown relations or duplicate declarations."""


class SafetyError(WebdamLogError):
    """Raised when a rule is unsafe.

    A WebdamLog rule is safe when every variable appearing in the head, in a
    negated literal, or in a relation/peer position is bound by a preceding
    positive literal (left-to-right evaluation order).
    """


class EvaluationError(WebdamLogError):
    """Raised when rule evaluation fails (e.g. unbound peer at delegation time)."""


class DelegationError(WebdamLogError):
    """Raised for invalid delegation operations (unknown peer, self-delegation loops)."""


class AccessControlError(WebdamLogError):
    """Raised when an operation violates an access-control policy."""


class TransportError(WebdamLogError):
    """Raised for message-delivery failures in the runtime transports."""


class WrapperError(WebdamLogError):
    """Raised by wrappers when the simulated external service rejects a request."""


class WorkloadError(WebdamLogError):
    """Raised by workload generators on inconsistent parameters."""
