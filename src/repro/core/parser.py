"""Parser for the WebdamLog surface syntax.

The concrete syntax follows the paper and the original Ruby prototype::

    // a comment (``#`` comments are accepted as well)
    collection extensional persistent pictures@alice(id, name, owner, data);
    collection intensional attendeePictures@alice(id, name, owner, data);
    fact pictures@alice(1, "sea.jpg", "alice", "100...");
    rule attendeePictures@alice($id, $n, $o, $d) :-
        selectedAttendee@alice($a),
        pictures@$a($id, $n, $o, $d);

Notes
-----
* The ``fact`` and ``rule`` keywords are optional: a statement containing
  ``:-`` is a rule, a bare ground atom is a fact.
* Relation and peer positions accept identifiers or variables (``$x``).
* Values are double-quoted strings, integers, floats, ``true``, ``false``
  and ``null``.
* Statements are terminated by ``;``.  :func:`parse_rule` and
  :func:`parse_fact` accept a single statement with or without the
  terminator.
* Negated body literals are written ``not rel@peer(...)`` (or ``!rel@peer``).

Ad-hoc queries
--------------
:func:`parse_query` parses the *question* shapes accepted by the declarative
query API (:meth:`repro.api.System.query`):

* a bare rule body — a comma-separated conjunction of (possibly negated)
  literals, e.g. ``pictures@alice($id, $n, $o, $d), not hidden@alice($id)``;
  the answer projects every non-anonymous variable in order of first
  occurrence;
* a full rule ``ans($id, $n) :- body`` whose head names the answer relation
  and chooses the projection; the head needs no ``@peer`` (the view is
  located at the peer the query is asked at);
* aggregate heads ``summary($id, avg($r), count($r)) :- body`` using
  ``count`` / ``sum`` / ``min`` / ``max`` / ``avg`` over a body variable,
  grouped by the remaining head arguments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.core.errors import ParseError
from repro.core.facts import Fact
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationKind, RelationSchema
from repro.core.terms import Constant, Term, Variable


# --------------------------------------------------------------------------- #
# tokenizer
# --------------------------------------------------------------------------- #

_TOKEN_SPEC = [
    ("WS", r"[ \t\r]+"),
    ("NEWLINE", r"\n"),
    ("COMMENT", r"(//|#)[^\n]*"),
    ("IMPLIES", r":-"),
    ("STRING", r'"(?:\\.|[^"\\])*"'),
    ("FLOAT", r"-?\d+\.\d+"),
    ("INT", r"-?\d+"),
    ("VARIABLE", r"\$[A-Za-z_][A-Za-z0-9_]*|\$_"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_\-]*"),
    ("AT", r"@"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("SEMICOLON", r";"),
    ("BANG", r"!"),
    ("STAR", r"\*"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {
    "collection", "fact", "rule", "peer", "extensional", "intensional",
    "ext", "int", "inter", "persistent", "per", "not", "true", "false", "null", "end",
}


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens, dropping whitespace and comments."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(f"unexpected character {source[position]!r}", line, column)
        kind = match.lastgroup
        text = match.group()
        column = position - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
        elif kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, text, line, column))
        position = match.end()
    return tokens


# --------------------------------------------------------------------------- #
# parsed program container
# --------------------------------------------------------------------------- #

#: Aggregate functions accepted in query heads (see :func:`parse_query`).
AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class QueryAggregate:
    """One aggregate term of a query head: ``function(variable)`` at ``position``."""

    position: int
    function: str
    variable: Variable

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.function}(${self.variable.name})"


@dataclass
class ParsedQuery:
    """Result of parsing an ad-hoc query (see :func:`parse_query`).

    ``head_name`` is ``None`` for body-only queries (the caller projects the
    body variables); ``head_args`` holds the head terms with each aggregate
    position replaced by its underlying :class:`~repro.core.terms.Variable`.
    """

    body: Tuple[Atom, ...]
    head_name: Optional[str] = None
    head_args: Tuple[Term, ...] = ()
    aggregates: Tuple[QueryAggregate, ...] = ()

    def is_aggregate(self) -> bool:
        """``True`` when the head computes at least one aggregate."""
        return bool(self.aggregates)


@dataclass
class ParsedQueryProgram:
    """Result of parsing a multi-clause query (see :func:`parse_query_program`).

    All clauses but the last define *view-scoped auxiliary relations* (they
    must carry explicit heads and no aggregates); the final clause is the
    answer.  A single-clause program is exactly a :func:`parse_query` query.
    """

    clauses: Tuple[ParsedQuery, ...]

    @property
    def answer(self) -> ParsedQuery:
        """The final clause — the one whose results the view shows."""
        return self.clauses[-1]

    @property
    def auxiliary(self) -> Tuple[ParsedQuery, ...]:
        """The clauses defining intermediate, view-scoped relations."""
        return self.clauses[:-1]


@dataclass
class ParsedProgram:
    """Result of parsing a WebdamLog program text."""

    schemas: List[RelationSchema] = field(default_factory=list)
    facts: List[Fact] = field(default_factory=list)
    rules: List[Rule] = field(default_factory=list)
    peers: List[Tuple[str, str]] = field(default_factory=list)

    def __iter__(self):
        yield from self.schemas
        yield from self.facts
        yield from self.rules

    def statement_count(self) -> int:
        """Total number of parsed statements."""
        return len(self.schemas) + len(self.facts) + len(self.rules) + len(self.peers)


# --------------------------------------------------------------------------- #
# recursive-descent parser
# --------------------------------------------------------------------------- #

class _Parser:
    """Recursive-descent parser over a token stream."""

    def __init__(self, tokens: List[Token], default_peer: Optional[str] = None,
                 author: Optional[str] = None):
        self._tokens = tokens
        self._index = 0
        self._default_peer = default_peer
        self._author = author
        self._anon_counter = 0

    # -- token helpers --------------------------------------------------- #

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {text or kind}, found end of input")
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(
                f"expected {text or kind}, found {token.text!r}", token.line, token.column
            )
        return self._next()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token is not None and token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "IDENT" and token.text in keywords

    def at_end(self) -> bool:
        """``True`` when every token has been consumed."""
        return self._index >= len(self._tokens)

    # -- grammar --------------------------------------------------------- #

    def parse_program(self) -> ParsedProgram:
        """Parse a full program (sequence of statements)."""
        program = ParsedProgram()
        while not self.at_end():
            if self._accept("SEMICOLON"):
                continue
            if self._at_keyword("end"):
                self._next()
                continue
            self._parse_statement(program)
        return program

    def _parse_statement(self, program: ParsedProgram) -> None:
        if self._at_keyword("collection"):
            program.schemas.append(self._parse_collection())
        elif self._at_keyword("peer"):
            program.peers.append(self._parse_peer())
        elif self._at_keyword("fact"):
            self._next()
            program.facts.append(self._parse_fact_body())
        elif self._at_keyword("rule"):
            self._next()
            program.rules.append(self._parse_rule_body())
        else:
            # Bare statement: decide between fact and rule by scanning for ':-'
            if self._statement_contains_implies():
                program.rules.append(self._parse_rule_body())
            else:
                program.facts.append(self._parse_fact_body())
        self._accept("SEMICOLON")

    def _statement_contains_implies(self) -> bool:
        offset = 0
        while True:
            token = self._peek(offset)
            if token is None or token.kind == "SEMICOLON":
                return False
            if token.kind == "IMPLIES":
                return True
            offset += 1

    # collection [extensional|intensional] [persistent] name@peer(col[, col]*);
    def _parse_collection(self) -> RelationSchema:
        self._expect("IDENT", "collection")
        kind = RelationKind.EXTENSIONAL
        persistent = True
        token = self._peek()
        if token is not None and token.kind == "IDENT" and token.text in (
                "extensional", "ext", "intensional", "int", "inter"):
            self._next()
            if token.text in ("intensional", "int", "inter"):
                kind = RelationKind.INTENSIONAL
        if self._at_keyword("persistent", "per"):
            self._next()
            persistent = True
        elif self._at_keyword("scratch"):
            self._next()
            persistent = False
        name_token = self._expect("IDENT")
        self._expect("AT")
        peer_token = self._expect("IDENT")
        self._expect("LPAREN")
        columns: List[str] = []
        keys: List[str] = []
        while not self._accept("RPAREN"):
            column = self._expect("IDENT").text
            is_key = self._accept("STAR") is not None
            columns.append(column)
            if is_key:
                keys.append(column)
            if not self._accept("COMMA"):
                self._expect("RPAREN")
                break
        return RelationSchema(
            name=name_token.text,
            peer=peer_token.text,
            columns=tuple(columns),
            kind=kind,
            persistent=persistent,
            key=tuple(keys),
        )

    # peer name "address";
    def _parse_peer(self) -> Tuple[str, str]:
        self._expect("IDENT", "peer")
        name = self._expect("IDENT").text
        address = name
        token = self._peek()
        if token is not None and token.kind == "STRING":
            address = self._parse_string(self._next())
        elif token is not None and token.kind == "IDENT" and token.text not in _KEYWORDS:
            address = self._next().text
        return (name, address)

    def _parse_fact_body(self) -> Fact:
        atom = self._parse_atom(allow_negation=False)
        if not atom.is_ground():
            token = self._peek(-1)
            raise ParseError(
                f"fact {atom} contains variables",
                token.line if token else None,
                token.column if token else None,
            )
        return atom.to_fact()

    def _parse_rule_body(self) -> Rule:
        head = self._parse_atom(allow_negation=False)
        self._expect("IMPLIES")
        body: List[Atom] = [self._parse_atom(allow_negation=True)]
        while self._accept("COMMA"):
            body.append(self._parse_atom(allow_negation=True))
        return Rule(head=head, body=tuple(body), author=self._author)

    # -- ad-hoc queries --------------------------------------------------- #

    def _parse_query(self) -> ParsedQuery:
        """Parse a query: a bare body, or ``head(args) :- body``."""
        if self._statement_contains_implies():
            name, args, aggregates = self._parse_query_head()
            self._expect("IMPLIES")
        else:
            name, args, aggregates = None, (), ()
        body: List[Atom] = [self._parse_atom(allow_negation=True)]
        while self._accept("COMMA"):
            body.append(self._parse_atom(allow_negation=True))
        return ParsedQuery(body=tuple(body), head_name=name, head_args=args,
                           aggregates=aggregates)

    def _parse_query_head(self) -> Tuple[str, Tuple[Term, ...],
                                         Tuple[QueryAggregate, ...]]:
        """``name[@peer](term | agg($var), ...)`` — the location is optional
        and ignored (an ad-hoc view always lives at the peer it is asked at)."""
        name_token = self._expect("IDENT")
        if self._accept("AT"):
            self._parse_location_term()
        self._expect("LPAREN")
        args: List[Term] = []
        aggregates: List[QueryAggregate] = []
        while not self._accept("RPAREN"):
            token = self._peek()
            following = self._peek(1)
            if (token is not None and token.kind == "IDENT"
                    and token.text in AGGREGATE_FUNCTIONS
                    and following is not None and following.kind == "LPAREN"):
                function = self._next().text
                self._expect("LPAREN")
                var_token = self._expect("VARIABLE")
                variable = self._make_variable(var_token)
                self._expect("RPAREN")
                aggregates.append(QueryAggregate(
                    position=len(args), function=function, variable=variable))
                args.append(variable)
            else:
                args.append(self._parse_value_term())
            if not self._accept("COMMA"):
                self._expect("RPAREN")
                break
        return name_token.text, tuple(args), tuple(aggregates)

    def _parse_atom(self, allow_negation: bool) -> Atom:
        negated = False
        if allow_negation and (self._at_keyword("not") or self._peek() is not None
                               and self._peek().kind == "BANG"):
            token = self._next()
            if token.kind == "IDENT" and token.text != "not":
                raise ParseError("expected 'not'", token.line, token.column)
            negated = True
        relation = self._parse_location_term()
        if self._accept("AT"):
            peer = self._parse_location_term()
        else:
            if self._default_peer is None:
                token = self._peek(-1)
                raise ParseError(
                    "atom without '@peer' and no default peer configured",
                    token.line if token else None,
                    token.column if token else None,
                )
            peer = Constant(self._default_peer)
        self._expect("LPAREN")
        args: List[Term] = []
        while not self._accept("RPAREN"):
            args.append(self._parse_value_term())
            if not self._accept("COMMA"):
                self._expect("RPAREN")
                break
        return Atom(relation=relation, peer=peer, args=tuple(args), negated=negated)

    def _parse_location_term(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("expected relation or peer name, found end of input")
        if token.kind == "VARIABLE":
            self._next()
            return self._make_variable(token)
        if token.kind == "IDENT":
            self._next()
            return Constant(token.text)
        if token.kind == "STRING":
            self._next()
            return Constant(self._parse_string(token))
        raise ParseError(
            f"expected relation or peer name, found {token.text!r}", token.line, token.column
        )

    def _parse_value_term(self) -> Term:
        token = self._next()
        if token.kind == "VARIABLE":
            return self._make_variable(token)
        if token.kind == "STRING":
            return Constant(self._parse_string(token))
        if token.kind == "INT":
            return Constant(int(token.text))
        if token.kind == "FLOAT":
            return Constant(float(token.text))
        if token.kind == "IDENT":
            if token.text == "true":
                return Constant(True)
            if token.text == "false":
                return Constant(False)
            if token.text == "null":
                return Constant(None)
            # Bare identifiers in argument positions are treated as string
            # constants, matching the loose style of the paper's examples
            # (e.g. selectedAttendee@Jules(Émilien)).
            return Constant(token.text)
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)

    def _make_variable(self, token: Token) -> Variable:
        name = token.text[1:]
        if name == "_":
            self._anon_counter += 1
            return Variable(f"_anon{self._anon_counter}")
        return Variable(name)

    @staticmethod
    def _parse_string(token: Token) -> str:
        body = token.text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #

def parse_program(source: str, default_peer: Optional[str] = None,
                  author: Optional[str] = None) -> ParsedProgram:
    """Parse a complete WebdamLog program.

    Parameters
    ----------
    source:
        The program text.
    default_peer:
        Peer name to assume for atoms written without ``@peer``.
    author:
        Peer recorded as the author of every parsed rule (used by the
        access-control layer to attribute delegations).
    """
    parser = _Parser(tokenize(source), default_peer=default_peer, author=author)
    return parser.parse_program()


def parse_rule(source: str, default_peer: Optional[str] = None,
               author: Optional[str] = None) -> Rule:
    """Parse a single rule, with or without the leading ``rule`` keyword."""
    parser = _Parser(tokenize(source), default_peer=default_peer, author=author)
    if parser._at_keyword("rule"):
        parser._next()
    rule = parser._parse_rule_body()
    parser._accept("SEMICOLON")
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(f"trailing input after rule: {token.text!r}", token.line, token.column)
    return rule


def parse_fact(source: str, default_peer: Optional[str] = None) -> Fact:
    """Parse a single fact, with or without the leading ``fact`` keyword."""
    parser = _Parser(tokenize(source), default_peer=default_peer)
    if parser._at_keyword("fact"):
        parser._next()
    fact = parser._parse_fact_body()
    parser._accept("SEMICOLON")
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(f"trailing input after fact: {token.text!r}", token.line, token.column)
    return fact


def parse_query(source: str, default_peer: Optional[str] = None) -> ParsedQuery:
    """Parse an ad-hoc query: a bare rule body or a full ``head :- body`` rule.

    ``default_peer`` qualifies body literals written without ``@peer`` (the
    peer the query is asked at).  Aggregate terms (``count``/``sum``/``min``/
    ``max``/``avg`` over a variable) are only recognised in the head of the
    explicit-head form; the head's optional ``@peer`` qualifier is accepted
    and ignored.
    """
    parser = _Parser(tokenize(source), default_peer=default_peer)
    query = parser._parse_query()
    parser._accept("SEMICOLON")
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(f"trailing input after query: {token.text!r}",
                         token.line, token.column)
    return query


def parse_query_program(source: str, default_peer: Optional[str] = None
                        ) -> ParsedQueryProgram:
    """Parse a ``;``-separated sequence of query clauses.

    Every clause but the last must be of the explicit-head form — its head
    names an auxiliary relation scoped to the view being compiled — and may
    not use aggregates.  The final clause is the answer and accepts every
    shape :func:`parse_query` accepts.  A source without ``;``-separated
    clauses parses to a one-clause program.
    """
    parser = _Parser(tokenize(source), default_peer=default_peer)
    clauses: List[ParsedQuery] = [parser._parse_query()]
    while parser._accept("SEMICOLON"):
        if parser.at_end():
            break
        clauses.append(parser._parse_query())
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(f"trailing input after query: {token.text!r}",
                         token.line, token.column)
    for clause in clauses[:-1]:
        if clause.head_name is None:
            raise ParseError(
                "every clause before the last must name an auxiliary relation "
                "with an explicit head (name(args) :- body)")
        if clause.aggregates:
            raise ParseError("aggregates are only allowed in the final clause")
    return ParsedQueryProgram(clauses=tuple(clauses))


def parse_atom(source: str, default_peer: Optional[str] = None,
               allow_negation: bool = True) -> Atom:
    """Parse a single (possibly negated, possibly non-ground) atom."""
    parser = _Parser(tokenize(source), default_peer=default_peer)
    atom = parser._parse_atom(allow_negation=allow_negation)
    parser._accept("SEMICOLON")
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(f"trailing input after atom: {token.text!r}", token.line, token.column)
    return atom
