"""Left-to-right evaluation of WebdamLog rules at one peer.

The evaluation of a rule at peer ``p`` proceeds literal by literal, left to
right, maintaining a set of candidate substitutions:

* a body literal located at ``p`` (after applying the current substitution)
  is matched against the peer's local facts, extending the substitutions;
* a *negated* local literal filters out substitutions for which a matching
  fact exists;
* the first literal located at a *remote* peer stops local evaluation for
  that substitution: the partially instantiated remainder of the rule becomes
  a :class:`~repro.core.delegation.Delegation` to that peer.

Substitutions that survive the whole body produce the head fact, which is
classified as a local intensional derivation, a (deferred) local extensional
update, or a fact destined for a remote peer.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.core.delegation import Delegation
from repro.core.errors import EvaluationError
from repro.core.facts import Fact, fact_matches_bindings
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationKind
from repro.core.terms import Constant, Term, Variable
from repro.core.unification import Substitution, match_atom_fact

#: Callable giving the evaluator access to local facts:
#: ``fact_source(relation_name, peer_name, bindings)`` returns an iterable of
#: facts; ``bindings`` is an optional ``{argument position: value}`` map the
#: source may use to answer from a hash index instead of a scan.  Legacy
#: two-argument sources are adapted transparently (the evaluator filters the
#: bindings itself).
FactSource = Callable[..., Iterable[Fact]]

#: Callable classifying a relation: returns a :class:`RelationKind` (or None if unknown).
KindResolver = Callable[[str, str], Optional[RelationKind]]


def _adapt_fact_source(source: FactSource) -> FactSource:
    """Wrap a legacy two-argument fact source into the bindings-aware protocol.

    Sources that already accept ``(relation, peer, bindings)`` are returned
    unchanged; two-argument sources are wrapped so the bindings filter is
    applied on the evaluator side, keeping indexed and legacy sources
    observationally identical.
    """
    try:
        parameters = inspect.signature(source).parameters.values()
    except (TypeError, ValueError):  # builtins / exotic callables
        parameters = ()
    accepts_bindings = sum(
        1 for p in parameters
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ) >= 3 or any(p.kind == p.VAR_POSITIONAL for p in parameters)
    if accepts_bindings:
        return source

    def adapted(relation: str, peer: str,
                bindings: Optional[Dict[int, object]] = None) -> Iterator[Fact]:
        facts = source(relation, peer)
        if not bindings:
            yield from facts
            return
        for fact in facts:
            if fact_matches_bindings(fact, bindings):
                yield fact

    return adapted


@dataclass
class RuleOutcome:
    """Everything produced by evaluating one rule once."""

    local_intensional: Set[Fact] = field(default_factory=set)
    local_extensional: Set[Fact] = field(default_factory=set)
    remote_facts: Set[Fact] = field(default_factory=set)
    delegations: Set[Delegation] = field(default_factory=set)
    substitutions_explored: int = 0
    compiled_sql: int = 0

    def merge(self, other: "RuleOutcome") -> "RuleOutcome":
        """Accumulate another outcome into this one."""
        self.local_intensional |= other.local_intensional
        self.local_extensional |= other.local_extensional
        self.remote_facts |= other.remote_facts
        self.delegations |= other.delegations
        self.substitutions_explored += other.substitutions_explored
        self.compiled_sql += other.compiled_sql
        return self

    def is_empty(self) -> bool:
        """``True`` when nothing at all was produced."""
        return not (self.local_intensional or self.local_extensional
                    or self.remote_facts or self.delegations)

    def total_derivations(self) -> int:
        """Number of facts and delegations produced."""
        return (len(self.local_intensional) + len(self.local_extensional)
                + len(self.remote_facts) + len(self.delegations))


class RuleEvaluator:
    """Evaluates WebdamLog rules at a single peer.

    Parameters
    ----------
    peer:
        Name of the local peer.
    fact_source:
        Access to the local facts (extensional, ephemeral and intensional
        facts derived so far in the current fixpoint).
    kind_resolver:
        Maps ``(relation, peer)`` to a :class:`RelationKind`.  Unknown local
        relations in head position default to extensional (the engine
        declares them implicitly), matching the run-time relation discovery
        described in the paper.
    allow_delegation:
        When ``False`` (used to evaluate *delegated* rules whose remainder
        must not be re-delegated in a loop, or to emulate a purely local
        engine), a remote body literal simply produces no results instead of
        a delegation.
    """

    def __init__(self, peer: str, fact_source: FactSource,
                 kind_resolver: Optional[KindResolver] = None,
                 allow_delegation: bool = True,
                 on_derivation: Optional[Callable[[Fact, Rule, Tuple[Fact, ...]], None]] = None,
                 use_indexes: bool = True,
                 pushdown=None,
                 planner=None):
        self.peer = peer
        self.fact_source = _adapt_fact_source(fact_source)
        self.kind_resolver = kind_resolver or (lambda relation, peer_name: None)
        self.allow_delegation = allow_delegation
        # Optional provenance hook: called with (derived fact, rule, supporting facts)
        # for every head emitted locally or for a remote peer.
        self.on_derivation = on_derivation
        # When False the evaluator never passes bindings to the fact source —
        # every literal match is a full relation scan, reproducing the seed
        # engine's behaviour exactly (used as the benchmark baseline).
        self.use_indexes = use_indexes
        # Optional whole-body SQL fast path (repro.store.compiler.BodyPushdown).
        # Provenance needs per-derivation support tuples, which the set-at-a-
        # time SQL path cannot produce — the engine only wires the pushdown in
        # when no derivation hook is attached.
        self.pushdown = pushdown
        # Optional cost-based body planner (repro.planner.BodyPlanner): rules
        # are then walked in the planned literal order instead of the written
        # one.  Only the local prefix of a body is ever permuted, so the
        # delegation and negation semantics are order-identical; provenance
        # support tuples are normalised back to written order on emission.
        self.planner = planner
        # Plans executed since construction, for StagePlan observability.
        self.plans_used: Dict[Tuple[str, Optional[int]], object] = {}

    def _plan_of(self, rule: Rule, delta_index: Optional[int] = None):
        if self.planner is None:
            return None
        if delta_index is None:
            plan = self.planner.plan_rule(rule)
        else:
            plan = self.planner.plan_rule_delta(rule, delta_index)
        if plan is not None:
            self.plans_used[plan.key()] = plan
        return plan

    # ------------------------------------------------------------------ #

    def evaluate_rule(self, rule: Rule) -> RuleOutcome:
        """Evaluate one rule and return everything it produces."""
        outcome = RuleOutcome()
        plan = self._plan_of(rule)
        if (self.pushdown is not None and self.on_derivation is None
                and self.use_indexes):
            substitutions = self.pushdown.run(
                rule, order=plan.order if plan is not None else None)
            if substitutions is not None:
                outcome.compiled_sql += 1
                outcome.substitutions_explored += len(substitutions)
                for substitution in substitutions:
                    self._emit_head(rule, substitution, outcome, ())
                return outcome
        self._evaluate_from(rule, 0, {}, outcome, (), plan=plan)
        return outcome

    def evaluate_rules(self, rules: Iterable[Rule]) -> RuleOutcome:
        """Evaluate several rules, merging their outcomes."""
        outcome = RuleOutcome()
        for rule in rules:
            outcome.merge(self.evaluate_rule(rule))
        return outcome

    def evaluate_rule_delta(self, rule: Rule,
                            delta: Mapping[str, Set[Fact]]) -> RuleOutcome:
        """Seminaive evaluation of one rule against a delta.

        ``delta`` maps qualified relation names (``"rel@peer"``) to the facts
        that became visible since the rule last fired.  The rule is evaluated
        once per positive body occurrence of a delta predicate, with that
        occurrence restricted to the delta facts — every derivation that uses
        at least one delta fact is found, old derivations using only
        pre-existing facts are not re-explored.  Body literals whose relation
        or peer position is still a variable match any delta predicate and
        are restricted to the union of all delta facts.
        """
        outcome = RuleOutcome()
        union: Optional[Set[Fact]] = None
        for index, literal in enumerate(rule.body):
            if literal.negated:
                continue
            relation = literal.relation_constant()
            peer_name = literal.peer_constant()
            if relation is None or peer_name is None:
                if union is None:
                    union = set()
                    for facts in delta.values():
                        union |= facts
                restricted: Set[Fact] = union
            else:
                restricted = delta.get(f"{relation}@{peer_name}", set())
            if not restricted:
                continue
            self._evaluate_from(rule, 0, {}, outcome, (),
                                restrict=(index, restricted),
                                plan=self._plan_of(rule, delta_index=index))
        return outcome

    # ------------------------------------------------------------------ #

    def _evaluate_from(self, rule: Rule, step: int, substitution: Substitution,
                       outcome: RuleOutcome,
                       support: Tuple[Tuple[int, Fact], ...],
                       restrict: Optional[Tuple[int, Set[Fact]]] = None,
                       plan=None) -> None:
        outcome.substitutions_explored += 1
        if step == len(rule.body):
            self._emit_head(rule, substitution, outcome, support)
            return

        # ``step`` counts walked literals; ``index`` is the original body
        # position of the literal walked at this step.  Without a plan the
        # two coincide (written order).  Plans only permute the local prefix,
        # so when a remote literal is reached every earlier original position
        # is already consumed and ``rule.body[index:]`` is a valid remainder.
        index = plan.order[step] if plan is not None else step
        literal = rule.body[index].substitute(substitution)
        peer_name = self._resolve_peer(literal, rule)
        relation_name = literal.relation_constant()

        if peer_name != self.peer:
            # Remote literal: delegate the remainder of the rule.
            if not self.allow_delegation:
                return
            self._emit_delegation(rule, index, substitution, peer_name, outcome)
            return

        if relation_name is None:
            raise EvaluationError(
                f"rule {rule.rule_id}: relation position of literal #{index + 1} "
                f"({rule.body[index]}) is still a variable after substitution"
            )

        if literal.negated:
            if not self._has_match(literal):
                self._evaluate_from(rule, step + 1, substitution, outcome, support,
                                    restrict, plan)
            return

        positive = literal.positive()
        if restrict is not None and index == restrict[0]:
            candidates: Iterable[Fact] = restrict[1]
        else:
            candidates = self.fact_source(relation_name, peer_name,
                                          self._bindings_of(positive))
        track = plan.steps[step] if plan is not None else None
        for fact in candidates:
            extended = match_atom_fact(positive, fact, substitution)
            if extended is not None:
                if track is not None:
                    track.actual += 1
                self._evaluate_from(rule, step + 1, extended, outcome,
                                    support + ((index, fact),), restrict, plan)

    def _bindings_of(self, literal: Atom) -> Optional[Dict[int, object]]:
        """Bound argument positions of an already-substituted literal."""
        if not self.use_indexes:
            return None
        bindings: Optional[Dict[int, object]] = None
        for position, term in enumerate(literal.args):
            if isinstance(term, Constant):
                if bindings is None:
                    bindings = {}
                bindings[position] = term.value
        return bindings

    def _resolve_peer(self, literal: Atom, rule: Rule) -> str:
        peer_name = literal.peer_constant()
        if peer_name is None:
            raise EvaluationError(
                f"rule {rule.rule_id}: peer position of literal {literal} is unbound "
                "at evaluation time (unsafe rule?)"
            )
        return peer_name

    def _has_match(self, literal: Atom) -> bool:
        relation_name = literal.relation_constant()
        peer_name = literal.peer_constant()
        assert relation_name is not None and peer_name is not None
        positive = literal.positive()
        bindings = self._bindings_of(positive)
        candidates = self.fact_source(relation_name, peer_name, bindings)
        if bindings is not None and len(bindings) == positive.arity:
            # Fully ground literal: every candidate from the indexed source
            # already matches all argument positions, so existence reduces to
            # a non-empty probe with an arity check — no substitution is built.
            return any(fact.arity == positive.arity for fact in candidates)
        for fact in candidates:
            if match_atom_fact(positive, fact, {}) is not None:
                return True
        return False

    # ------------------------------------------------------------------ #

    def _emit_delegation(self, rule: Rule, index: int, substitution: Substitution,
                         target: str, outcome: RuleOutcome) -> None:
        head = rule.head.substitute(substitution)
        remainder = tuple(atom.substitute(substitution) for atom in rule.body[index:])
        delegated_rule = Rule(
            head=head,
            body=remainder,
            author=self.peer,
            origin=rule.origin or rule.rule_id,
            rule_id=f"{rule.rule_id}@{target}",
        )
        outcome.delegations.add(
            Delegation(
                target=target,
                rule=delegated_rule,
                delegator=self.peer,
                origin_rule_id=rule.origin or rule.rule_id,
            )
        )

    def _emit_head(self, rule: Rule, substitution: Substitution,
                   outcome: RuleOutcome,
                   support: Tuple[Tuple[int, Fact], ...]) -> None:
        head = rule.head.substitute(substitution)
        if not head.is_ground():
            raise EvaluationError(
                f"rule {rule.rule_id}: head {head} is not ground after evaluating the body"
            )
        fact = head.to_fact()
        if self.on_derivation is not None:
            # Support facts are tagged with their original body position and
            # sorted back to written order, so provenance (and explain())
            # records identical derivations whatever order the planner chose.
            self.on_derivation(
                fact, rule,
                tuple(entry[1] for entry in sorted(support, key=lambda e: e[0])))
        if fact.peer != self.peer:
            outcome.remote_facts.add(fact)
            return
        kind = self.kind_resolver(fact.relation, fact.peer)
        if kind is RelationKind.INTENSIONAL:
            outcome.local_intensional.add(fact)
        else:
            outcome.local_extensional.add(fact)


# --------------------------------------------------------------------------- #
# stratification of a peer's local program
# --------------------------------------------------------------------------- #

def stratify_local_rules(peer: str, rules: List[Rule]) -> List[List[Rule]]:
    """Group a peer's rules into strata for negation-safe fixpoint evaluation.

    The predicate dependency graph is built over qualified relation names.
    Atoms whose relation or peer position is a variable are approximated by a
    wildcard node that depends on every head (and every head depends on it),
    which is conservative.  When the resulting graph has a cycle through
    negation the rules are returned as a single stratum: the engine still
    evaluates them, but negation-as-failure is then only a best-effort
    semantics, mirroring the original system where negation was not supported
    at all.
    """
    from repro.datalog.program import DatalogAtom, DatalogProgram, DatalogRule, Var
    from repro.datalog.stratification import StratificationError, stratify as datalog_stratify

    wildcard = "*any*"

    def predicate_of(atom: Atom) -> str:
        relation = atom.relation_constant()
        peer_name = atom.peer_constant()
        if relation is None or peer_name is None:
            return wildcard
        return f"{relation}@{peer_name}"

    program = DatalogProgram()
    index_of: Dict[int, Rule] = {}
    for position, rule in enumerate(rules):
        marker = Var("x")
        head = DatalogAtom(predicate_of(rule.head), (marker,))
        body = [DatalogAtom(predicate_of(atom), (marker,), atom.negated) for atom in rule.body]
        # Keep a positional marker predicate so that each WebdamLog rule maps
        # to a distinguishable datalog rule even when predicates collide.
        program.rules.append(DatalogRule(head, tuple(body)))
        index_of[position] = rule

    try:
        strata = datalog_stratify(program)
    except StratificationError:
        return [list(rules)]

    # Map the datalog strata back onto the original rules, preserving order.
    rule_to_stratum: Dict[int, int] = {}
    for stratum_index, stratum_rules in enumerate(strata):
        for datalog_rule in stratum_rules:
            for position, original in enumerate(program.rules):
                if original is datalog_rule:
                    rule_to_stratum[position] = stratum_index
    grouped: Dict[int, List[Rule]] = {}
    for position, rule in index_of.items():
        grouped.setdefault(rule_to_stratum.get(position, 0), []).append(rule)
    return [grouped[s] for s in sorted(grouped)]
