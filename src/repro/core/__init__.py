"""The WebdamLog language and per-peer engine.

The sub-modules are layered roughly as follows::

    terms  ->  schema  ->  facts  ->  rules  ->  parser
                                  \\->  unification
    evaluation  ->  delegation  ->  state  ->  engine

``engine.WebdamLogEngine`` is the public entry point used by the runtime; the
lower layers are exported for library users who want to build programs
programmatically rather than through the parser.
"""

from repro.core.terms import Constant, Variable, Term
from repro.core.schema import RelationKind, RelationSchema, SchemaRegistry
from repro.core.facts import Fact, FactStore, Delta
from repro.core.rules import Atom, Rule
from repro.core.parser import parse_program, parse_rule, parse_fact, ParseError
from repro.core.engine import WebdamLogEngine, StageResult

__all__ = [
    "Constant",
    "Variable",
    "Term",
    "RelationKind",
    "RelationSchema",
    "SchemaRegistry",
    "Fact",
    "FactStore",
    "Delta",
    "Atom",
    "Rule",
    "parse_program",
    "parse_rule",
    "parse_fact",
    "ParseError",
    "WebdamLogEngine",
    "StageResult",
]
