"""Relation schemas and the per-peer schema registry.

WebdamLog distinguishes two kinds of relations:

* **extensional** relations hold base facts; they are updated by explicit
  insertions/deletions and by facts received from other peers;
* **intensional** relations are defined by rules; their contents are
  recomputed at every stage of the engine and never stored durably.

The original Ruby prototype further distinguishes *persistent* extensional
relations (facts survive across stages) from *non-persistent* ones (facts are
consumed by the stage that reads them, like Bud scratch collections).  Both
flavours are supported here through :attr:`RelationSchema.persistent`.

A relation is identified by the pair ``(name, peer)`` — ``pictures@alice``
and ``pictures@bob`` are unrelated relations that merely share a name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.core.errors import SchemaError


class RelationKind(enum.Enum):
    """Kind of a WebdamLog relation."""

    EXTENSIONAL = "extensional"
    INTENSIONAL = "intensional"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RelationName:
    """Fully-qualified relation identifier ``name@peer``."""

    name: str
    peer: str

    def __post_init__(self):
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.peer:
            raise SchemaError("peer name must be non-empty")

    def __str__(self) -> str:
        return f"{self.name}@{self.peer}"

    @classmethod
    def parse(cls, qualified: str) -> "RelationName":
        """Parse ``"pictures@alice"`` into a :class:`RelationName`."""
        if "@" not in qualified:
            raise SchemaError(f"relation identifier {qualified!r} must contain '@'")
        name, _, peer = qualified.partition("@")
        return cls(name=name, peer=peer)


@dataclass(frozen=True)
class RelationSchema:
    """Declaration of a relation: identity, arity, kind and column names.

    Parameters
    ----------
    name:
        Local relation name, e.g. ``"pictures"``.
    peer:
        Name of the peer that manages the relation, e.g. ``"alice"``.
    columns:
        Column names.  The arity of the relation is ``len(columns)``.
        Column names are only used for documentation and for the key
        declaration; positional access is the norm in rules.
    kind:
        :class:`RelationKind.EXTENSIONAL` or :class:`RelationKind.INTENSIONAL`.
    persistent:
        Whether extensional facts survive across engine stages.  Ignored for
        intensional relations (which are always recomputed).
    key:
        Optional tuple of column names forming a primary key; insertions that
        collide on the key replace the previous fact (last-writer-wins), which
        is how the Ruby prototype models updatable collections.
    """

    name: str
    peer: str
    columns: Tuple[str, ...]
    kind: RelationKind = RelationKind.EXTENSIONAL
    persistent: bool = True
    key: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.peer:
            raise SchemaError("peer name must be non-empty")
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(
                f"duplicate column names in declaration of {self.name}@{self.peer}"
            )
        for k in self.key:
            if k not in self.columns:
                raise SchemaError(
                    f"key column {k!r} of {self.name}@{self.peer} is not a declared column"
                )

    @property
    def arity(self) -> int:
        """Number of columns of the relation."""
        return len(self.columns)

    @property
    def relation_name(self) -> RelationName:
        """Fully-qualified ``name@peer`` identifier."""
        return RelationName(self.name, self.peer)

    @property
    def qualified_name(self) -> str:
        """The string ``"name@peer"``."""
        return f"{self.name}@{self.peer}"

    def key_indexes(self) -> Tuple[int, ...]:
        """Positional indexes of the key columns (empty when no key declared)."""
        return tuple(self.columns.index(k) for k in self.key)

    def is_extensional(self) -> bool:
        """Return ``True`` for extensional (base-fact) relations."""
        return self.kind is RelationKind.EXTENSIONAL

    def is_intensional(self) -> bool:
        """Return ``True`` for intensional (derived) relations."""
        return self.kind is RelationKind.INTENSIONAL

    def __str__(self) -> str:
        kind = "extensional" if self.is_extensional() else "intensional"
        persistence = " persistent" if (self.is_extensional() and self.persistent) else ""
        cols = ", ".join(self.columns)
        return f"collection {kind}{persistence} {self.qualified_name}({cols})"


class SchemaRegistry:
    """Registry of the relation schemas known to one peer.

    A peer knows the schemas of its own relations (declared locally or created
    implicitly when facts/delegations arrive) and may cache schemas of remote
    relations it has heard about.  The registry enforces arity consistency:
    re-declaring a relation with a different arity or kind raises
    :class:`~repro.core.errors.SchemaError`.
    """

    def __init__(self, schemas: Optional[Iterable[RelationSchema]] = None):
        self._schemas: Dict[RelationName, RelationSchema] = {}
        if schemas:
            for schema in schemas:
                self.declare(schema)

    def __len__(self) -> int:
        return len(self._schemas)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._schemas.values())

    def __contains__(self, key) -> bool:
        return self._coerce_key(key) in self._schemas

    @staticmethod
    def _coerce_key(key) -> RelationName:
        if isinstance(key, RelationName):
            return key
        if isinstance(key, RelationSchema):
            return key.relation_name
        if isinstance(key, str):
            return RelationName.parse(key)
        if isinstance(key, tuple) and len(key) == 2:
            return RelationName(key[0], key[1])
        raise SchemaError(f"cannot interpret {key!r} as a relation identifier")

    def declare(self, schema: RelationSchema, replace: bool = False) -> RelationSchema:
        """Register ``schema``.

        Re-declaring an identical schema is a no-op.  Re-declaring with a
        different arity or kind raises :class:`SchemaError` unless
        ``replace=True`` is passed.
        """
        existing = self._schemas.get(schema.relation_name)
        if existing is not None and not replace:
            if existing == schema:
                return existing
            if existing.arity != schema.arity or existing.kind != schema.kind:
                raise SchemaError(
                    f"conflicting re-declaration of {schema.qualified_name}: "
                    f"existing {existing.arity}-ary {existing.kind.value}, "
                    f"new {schema.arity}-ary {schema.kind.value}"
                )
            # Same arity/kind but e.g. different column names: keep the first.
            return existing
        self._schemas[schema.relation_name] = schema
        return schema

    def declare_implicit(self, name: str, peer: str, arity: int,
                         kind: RelationKind = RelationKind.EXTENSIONAL) -> RelationSchema:
        """Declare a relation whose schema was not given explicitly.

        Used when a fact or delegation mentions a relation the peer has never
        heard of: WebdamLog peers "discover new relations" at run time, so the
        engine synthesises a schema with positional column names ``c0..cN``.
        """
        existing = self.get(name, peer)
        if existing is not None:
            if existing.arity != arity:
                raise SchemaError(
                    f"relation {name}@{peer} used with arity {arity} but declared "
                    f"with arity {existing.arity}"
                )
            return existing
        columns = tuple(f"c{i}" for i in range(arity))
        schema = RelationSchema(name=name, peer=peer, columns=columns, kind=kind)
        return self.declare(schema)

    def get(self, name: str, peer: str) -> Optional[RelationSchema]:
        """Return the schema of ``name@peer`` or ``None`` if unknown."""
        return self._schemas.get(RelationName(name, peer))

    def lookup(self, key) -> RelationSchema:
        """Return the schema for ``key`` (string, tuple or RelationName); raise if unknown."""
        rel = self._coerce_key(key)
        schema = self._schemas.get(rel)
        if schema is None:
            raise SchemaError(f"unknown relation {rel}")
        return schema

    def relations_of_peer(self, peer: str) -> Tuple[RelationSchema, ...]:
        """All schemas managed by ``peer``, sorted by relation name."""
        found = [s for s in self._schemas.values() if s.peer == peer]
        return tuple(sorted(found, key=lambda s: s.name))

    def extensional(self) -> Tuple[RelationSchema, ...]:
        """All extensional schemas, sorted by qualified name."""
        found = [s for s in self._schemas.values() if s.is_extensional()]
        return tuple(sorted(found, key=lambda s: s.qualified_name))

    def intensional(self) -> Tuple[RelationSchema, ...]:
        """All intensional schemas, sorted by qualified name."""
        found = [s for s in self._schemas.values() if s.is_intensional()]
        return tuple(sorted(found, key=lambda s: s.qualified_name))

    def check_arity(self, name: str, peer: str, arity: int) -> None:
        """Raise :class:`SchemaError` if ``name@peer`` is declared with a different arity."""
        schema = self.get(name, peer)
        if schema is not None and schema.arity != arity:
            raise SchemaError(
                f"relation {name}@{peer} has arity {schema.arity}, got {arity} arguments"
            )

    def copy(self) -> "SchemaRegistry":
        """Return a shallow copy of the registry (schemas are immutable)."""
        clone = SchemaRegistry()
        clone._schemas = dict(self._schemas)
        return clone


def declare(qualified: str, columns: Sequence[str], kind: str = "extensional",
            persistent: bool = True, key: Sequence[str] = ()) -> RelationSchema:
    """Convenience constructor: ``declare("pictures@alice", ["id", "name"])``."""
    rel = RelationName.parse(qualified)
    kind_enum = RelationKind(kind) if not isinstance(kind, RelationKind) else kind
    return RelationSchema(
        name=rel.name,
        peer=rel.peer,
        columns=tuple(columns),
        kind=kind_enum,
        persistent=persistent,
        key=tuple(key),
    )
