"""Facts, fact stores and deltas.

A WebdamLog *fact* is an expression ``m@p(a1, ..., an)`` where ``m@p`` names
a relation managed at peer ``p`` and ``a1..an`` are data values.  Facts are
immutable and hashable so that sets of facts can be manipulated cheaply.

:class:`FactStore` is the per-peer storage layer: one table per relation,
with support for insertions, deletions, primary-key replacement and delta
tracking (the engine's seminaive evaluation and the runtime's message
accounting both consume deltas).  The tables themselves live in a pluggable
:class:`~repro.store.backend.StorageBackend` — hash-indexed Python sets by
default (:mod:`repro.store.memory`), or durable SQLite tables
(:mod:`repro.store.sqlite`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.errors import SchemaError
from repro.core.schema import RelationKind, RelationName, RelationSchema, SchemaRegistry
from repro.core.terms import Constant, ConstantValue, Term
from repro.store.memory import MemoryBackend, MemoryTable


@dataclass(frozen=True, eq=False)
class Fact:
    """A ground fact ``relation@peer(values...)``.

    ``values`` holds plain Python values (not :class:`Constant` wrappers) so
    that facts are cheap to build from wrappers, workload generators and the
    storage layer.  Use :meth:`terms` to obtain the :class:`Constant` view
    needed by unification.

    Equality and hashing are *type-strict*, matching :class:`Constant` and
    the storage row keys: ``r@p(1)``, ``r@p(True)`` and ``r@p(1.0)`` are
    three different facts even though the payloads compare ``==`` in Python
    — otherwise they would collide in delta sets while the stores keep them
    distinct.
    """

    relation: str
    peer: str
    values: Tuple[ConstantValue, ...]

    def __post_init__(self):
        if not self.relation or not self.peer:
            raise SchemaError("fact must name a relation and a peer")
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "_key", (
            self.relation, self.peer,
            tuple((type(v), v) for v in self.values)))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    @property
    def arity(self) -> int:
        """Number of values in the fact."""
        return len(self.values)

    @property
    def relation_name(self) -> RelationName:
        """Fully-qualified relation identifier of the fact."""
        return RelationName(self.relation, self.peer)

    @property
    def qualified_relation(self) -> str:
        """The string ``"relation@peer"``."""
        return f"{self.relation}@{self.peer}"

    def terms(self) -> Tuple[Constant, ...]:
        """The values of the fact wrapped as :class:`Constant` terms."""
        return tuple(Constant(v) for v in self.values)

    def at_peer(self, peer: str) -> "Fact":
        """Return a copy of this fact relocated to ``peer``.

        Used when a rule head names a remote peer: the derived tuple becomes a
        fact of the remote relation.
        """
        return Fact(self.relation, peer, self.values)

    def rename(self, relation: str) -> "Fact":
        """Return a copy of this fact with a different relation name."""
        return Fact(relation, self.peer, self.values)

    def __str__(self) -> str:
        rendered = ", ".join(str(Constant(v)) for v in self.values)
        return f"{self.relation}@{self.peer}({rendered})"

    @classmethod
    def of(cls, qualified: str, *values: ConstantValue) -> "Fact":
        """Build a fact from a qualified relation name: ``Fact.of("r@p", 1, "x")``."""
        rel = RelationName.parse(qualified)
        return cls(rel.name, rel.peer, tuple(values))


def fact_matches_bindings(fact: Fact, bindings: Dict[int, ConstantValue]) -> bool:
    """``True`` when every bound position matches the fact's value exactly.

    Type-strict, mirroring :class:`~repro.core.terms.Constant` equality and
    the hash-index keys (``True`` stays distinct from ``1``); a bound
    position beyond the fact's arity never matches.  This is the one
    definition of positional matching shared by the indexed stores, the
    provided-fact filter and the legacy fact-source adapter.
    """
    values = fact.values
    return all(position < len(values)
               and type(values[position]) is type(value)
               and values[position] == value
               for position, value in bindings.items())


@dataclass(frozen=True)
class Delta:
    """A set of insertions and deletions produced by one operation or one stage."""

    inserted: FrozenSet[Fact] = frozenset()
    deleted: FrozenSet[Fact] = frozenset()

    def __bool__(self) -> bool:
        return bool(self.inserted) or bool(self.deleted)

    def __len__(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def merge(self, other: "Delta") -> "Delta":
        """Combine two deltas; an insert followed by a delete of the same fact cancels out."""
        inserted = (set(self.inserted) | set(other.inserted)) - set(other.deleted)
        deleted = (set(self.deleted) | set(other.deleted)) - set(other.inserted)
        return Delta(frozenset(inserted), frozenset(deleted))

    @classmethod
    def insertion(cls, facts: Iterable[Fact]) -> "Delta":
        """Delta consisting only of insertions."""
        return cls(inserted=frozenset(facts))

    @classmethod
    def deletion(cls, facts: Iterable[Fact]) -> "Delta":
        """Delta consisting only of deletions."""
        return cls(deleted=frozenset(facts))

    @classmethod
    def empty(cls) -> "Delta":
        """The empty delta."""
        return cls()


#: Backwards-compatible alias: the hash-indexed table moved to
#: :mod:`repro.store.memory` when the storage backend seam was introduced.
_RelationTable = MemoryTable


class FactStore:
    """Per-peer fact storage: one backend table per relation.

    The store tracks a *pending delta* accumulating every change since the
    last call to :meth:`take_delta`; the engine uses this to compute which
    updates must be pushed to remote peers and to drive seminaive evaluation.

    ``backend``/``namespace`` select where the tables physically live: each
    peer uses one backend with two namespaces (``"store"`` for extensional
    facts, ``"derived"`` for intensional ones).  Without an explicit backend
    a private in-memory one is created, preserving the historical behaviour.
    On a durable backend that already holds tables for this namespace (a
    reopened peer), the tables are re-attached — and their facts become
    visible — before any new write happens.
    """

    def __init__(self, schemas: Optional[SchemaRegistry] = None, owner: Optional[str] = None,
                 backend=None, namespace: str = "store"):
        self.schemas = schemas if schemas is not None else SchemaRegistry()
        self.owner = owner
        self.backend = backend if backend is not None else MemoryBackend()
        self.namespace = namespace
        self._tables: Dict[RelationName, MemoryTable] = {}
        self._pending_inserted: Set[Fact] = set()
        self._pending_deleted: Set[Fact] = set()
        default_kind = (RelationKind.INTENSIONAL if namespace == "derived"
                        else RelationKind.EXTENSIONAL)
        for relation, peer, arity in self.backend.stored_relations(namespace):
            schema = self.schemas.get(relation, peer)
            if schema is None:
                schema = self.schemas.declare_implicit(relation, peer, arity,
                                                       kind=default_kind)
            self._tables[RelationName(relation, peer)] = self.backend.table(
                namespace, schema)

    # ------------------------------------------------------------------ #
    # table management
    # ------------------------------------------------------------------ #

    def _table(self, relation: str, peer: str, arity: Optional[int] = None,
               create: bool = True):
        key = RelationName(relation, peer)
        table = self._tables.get(key)
        if table is not None:
            return table
        schema = self.schemas.get(relation, peer)
        if schema is None:
            if not create or arity is None:
                return None
            schema = self.schemas.declare_implicit(relation, peer, arity)
        table = self.backend.table(self.namespace, schema)
        self._tables[key] = table
        return table

    def relations(self) -> Tuple[RelationName, ...]:
        """Identifiers of every relation that has a table (possibly empty)."""
        return tuple(sorted(self._tables, key=str))

    def schema_of(self, relation: str, peer: str) -> Optional[RelationSchema]:
        """Schema of ``relation@peer`` or ``None``."""
        return self.schemas.get(relation, peer)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def insert(self, fact: Fact) -> Delta:
        """Insert ``fact``; returns the resulting delta (empty if already present)."""
        table = self._table(fact.relation, fact.peer, fact.arity)
        inserted_rows, deleted_rows = table.insert(fact.values)
        delta_inserted = {Fact(fact.relation, fact.peer, row) for row in inserted_rows}
        delta_deleted = {Fact(fact.relation, fact.peer, row) for row in deleted_rows}
        self._record(delta_inserted, delta_deleted)
        return Delta(frozenset(delta_inserted), frozenset(delta_deleted))

    def insert_many(self, facts: Iterable[Fact]) -> Delta:
        """Insert several facts; returns the merged delta.

        Facts are grouped per relation and handed to the table's batched
        insert path when the relation has no primary key (the common bulk-load
        shape), so SQL backends run one ``executemany`` per relation instead
        of one statement per fact.  Keyed relations keep the per-fact path:
        last-writer-wins replacement makes intra-batch order observable, and
        the delta/pending bookkeeping must see each step.  Semantics are
        identical to a sequence of :meth:`insert` calls either way.
        """
        inserted: Set[Fact] = set()
        deleted: Set[Fact] = set()
        grouped: Dict[RelationName, List[Fact]] = {}
        for fact in facts:
            grouped.setdefault(fact.relation_name, []).append(fact)
        for key, group in grouped.items():
            table = self._table(key.name, key.peer, group[0].arity)
            if not table.schema.key_indexes() and hasattr(table, "insert_many"):
                rows, _ = table.insert_many([fact.values for fact in group])
                batch = {Fact(key.name, key.peer, row) for row in rows}
                self._record(batch, set())
                inserted |= batch
                continue
            for fact in group:
                step = self.insert(fact)
                inserted |= step.inserted
                inserted -= step.deleted
                deleted |= step.deleted
                deleted -= step.inserted
        return Delta(frozenset(inserted), frozenset(deleted))

    def delete(self, fact: Fact) -> Delta:
        """Delete ``fact``; returns the resulting delta (empty if absent)."""
        table = self._table(fact.relation, fact.peer, fact.arity, create=False)
        if table is None or not table.delete(fact.values):
            return Delta.empty()
        self._record(set(), {fact})
        return Delta.deletion([fact])

    def delete_many(self, facts: Iterable[Fact]) -> Delta:
        """Delete several facts; returns the merged delta."""
        total = Delta.empty()
        for fact in facts:
            total = total.merge(self.delete(fact))
        return total

    def apply(self, delta: Delta) -> Delta:
        """Apply a delta (deletions first, then insertions); returns the effective delta."""
        effective = Delta.empty()
        for fact in delta.deleted:
            effective = effective.merge(self.delete(fact))
        for fact in delta.inserted:
            effective = effective.merge(self.insert(fact))
        return effective

    def clear_relation(self, relation: str, peer: str) -> Delta:
        """Remove every fact of ``relation@peer``."""
        table = self._table(relation, peer, create=False)
        if table is None:
            return Delta.empty()
        removed = {Fact(relation, peer, row) for row in table.clear()}
        self._record(set(), removed)
        return Delta.deletion(removed)

    def clear_nonpersistent(self) -> Delta:
        """Remove facts of non-persistent extensional relations (end-of-stage semantics)."""
        total = Delta.empty()
        for key, table in self._tables.items():
            schema = table.schema
            if schema.is_extensional() and not schema.persistent and len(table):
                total = total.merge(self.clear_relation(key.name, key.peer))
        return total

    def _record(self, inserted: Set[Fact], deleted: Set[Fact]) -> None:
        for fact in deleted:
            if fact in self._pending_inserted:
                self._pending_inserted.discard(fact)
            else:
                self._pending_deleted.add(fact)
        for fact in inserted:
            if fact in self._pending_deleted:
                self._pending_deleted.discard(fact)
            else:
                self._pending_inserted.add(fact)

    def take_delta(self) -> Delta:
        """Return and reset the delta accumulated since the previous call."""
        delta = Delta(frozenset(self._pending_inserted), frozenset(self._pending_deleted))
        self._pending_inserted = set()
        self._pending_deleted = set()
        return delta

    def peek_delta(self) -> Delta:
        """Return the accumulated delta without resetting it."""
        return Delta(frozenset(self._pending_inserted), frozenset(self._pending_deleted))

    def has_pending_changes(self) -> bool:
        """``True`` when changes accumulated since the last :meth:`take_delta`."""
        return bool(self._pending_inserted or self._pending_deleted)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def contains(self, fact: Fact) -> bool:
        """Return ``True`` if ``fact`` is currently stored."""
        table = self._table(fact.relation, fact.peer, create=False)
        return table is not None and fact.values in table

    def count(self, relation: str, peer: str) -> int:
        """Number of facts currently stored in ``relation@peer``."""
        table = self._table(relation, peer, create=False)
        return len(table) if table is not None else 0

    def total_facts(self) -> int:
        """Total number of facts across all relations."""
        return sum(len(table) for table in self._tables.values())

    def facts(self, relation: str, peer: str,
              bindings: Optional[Dict[int, ConstantValue]] = None) -> Iterator[Fact]:
        """Iterate over the facts of ``relation@peer`` matching positional ``bindings``."""
        table = self._table(relation, peer, create=False)
        if table is None:
            return iter(())
        return (Fact(relation, peer, row) for row in table.scan(bindings))

    def all_facts(self) -> Iterator[Fact]:
        """Iterate over every stored fact."""
        for key, table in self._tables.items():
            for row in table:
                yield Fact(key.name, key.peer, row)

    def relation_snapshot(self, relation: str, peer: str) -> FrozenSet[Fact]:
        """Frozen snapshot of ``relation@peer``."""
        return frozenset(self.facts(relation, peer))

    def snapshot(self) -> FrozenSet[Fact]:
        """Frozen snapshot of the whole store."""
        return frozenset(self.all_facts())

    def copy(self) -> "FactStore":
        """Deep copy of the store (used by the deterministic simulator for checkpoints).

        The copy always lives in a fresh private in-memory backend, whatever
        backend the source uses — checkpoints must not share (or write to)
        the original's storage.
        """
        clone = FactStore(self.schemas.copy(), owner=self.owner)
        for fact in self.all_facts():
            clone.insert(fact)
        clone.take_delta()
        return clone
