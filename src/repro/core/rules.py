"""Atoms and rules of the WebdamLog language.

A rule at peer ``p`` has the form::

    $R@$P($U) :- [not] $R1@$P1($U1), ..., [not] $Rn@$Pn($Un)

where the relation and peer positions of every atom may be constants *or
variables*.  Rule bodies are evaluated **left to right** — unlike classical
datalog the order of body literals matters, because a variable used in a
relation/peer position or inside a negated literal must already be bound by
the time the literal is reached.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.errors import SafetyError, SchemaError
from repro.core.terms import Constant, Term, Variable, make_term


_rule_counter = itertools.count(1)


def ensure_rule_counter_above(value: int) -> None:
    """Advance the global rule counter past ``value``.

    Used after restoring persisted rules so that freshly generated
    ``rule-N`` identifiers never collide with restored ones.
    """
    global _rule_counter
    current = next(_rule_counter)
    _rule_counter = itertools.count(max(current, value) + 1)


@dataclass(frozen=True)
class Atom:
    """An atom ``relation@peer(args...)``, possibly negated.

    ``relation`` and ``peer`` are :class:`~repro.core.terms.Term` instances —
    a :class:`Constant` wrapping a string for ordinary atoms, or a
    :class:`Variable` for the WebdamLog-specific "open" atoms whose relation
    or peer is only discovered at run time.
    """

    relation: Term
    peer: Term
    args: Tuple[Term, ...]
    negated: bool = False

    def __post_init__(self):
        if not isinstance(self.relation, Term):
            object.__setattr__(self, "relation", make_term(self.relation))
        if not isinstance(self.peer, Term):
            object.__setattr__(self, "peer", make_term(self.peer))
        coerced = tuple(make_term(a) for a in self.args)
        object.__setattr__(self, "args", coerced)
        for term, position in ((self.relation, "relation"), (self.peer, "peer")):
            if isinstance(term, Constant) and not isinstance(term.value, str):
                raise SchemaError(
                    f"{position} position of an atom must be a string constant or a "
                    f"variable, got {term!r}"
                )

    # -- constructors ---------------------------------------------------- #

    @classmethod
    def of(cls, relation, peer, *args, negated: bool = False) -> "Atom":
        """Convenience constructor coercing plain Python values into terms.

        Strings starting with ``$`` become variables::

            Atom.of("pictures", "$attendee", "$id", "$name")
        """
        return cls(make_term(relation), make_term(peer), tuple(make_term(a) for a in args),
                   negated=negated)

    @classmethod
    def parse_head(cls, qualified: str, *args) -> "Atom":
        """Build an atom from ``"rel@peer"`` plus arguments."""
        name, _, peer = qualified.partition("@")
        if not peer:
            raise SchemaError(f"atom identifier {qualified!r} must contain '@'")
        return cls.of(name, peer, *args)

    # -- inspection ------------------------------------------------------ #

    @property
    def arity(self) -> int:
        """Number of argument terms."""
        return len(self.args)

    def relation_constant(self) -> Optional[str]:
        """The relation name if it is a constant, else ``None``."""
        return self.relation.value if isinstance(self.relation, Constant) else None

    def peer_constant(self) -> Optional[str]:
        """The peer name if it is a constant, else ``None``."""
        return self.peer.value if isinstance(self.peer, Constant) else None

    def is_ground_location(self) -> bool:
        """``True`` when both the relation and the peer positions are constants."""
        return isinstance(self.relation, Constant) and isinstance(self.peer, Constant)

    def is_ground(self) -> bool:
        """``True`` when the atom contains no variables at all."""
        return self.is_ground_location() and all(isinstance(a, Constant) for a in self.args)

    def variables(self) -> Tuple[Variable, ...]:
        """Every variable occurring in the atom, in order of first occurrence."""
        seen: List[Variable] = []
        for term in (self.relation, self.peer, *self.args):
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def argument_variables(self) -> Tuple[Variable, ...]:
        """Variables occurring in argument positions only."""
        seen: List[Variable] = []
        for term in self.args:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def location_variables(self) -> Tuple[Variable, ...]:
        """Variables occurring in the relation or peer position."""
        seen: List[Variable] = []
        for term in (self.relation, self.peer):
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    # -- transformation -------------------------------------------------- #

    def negate(self) -> "Atom":
        """Return the negated version of this atom."""
        return replace(self, negated=True)

    def positive(self) -> "Atom":
        """Return the positive (non-negated) version of this atom."""
        return replace(self, negated=False)

    def substitute(self, substitution: Dict[Variable, Term]) -> "Atom":
        """Apply a substitution to every position of the atom."""

        def apply(term: Term) -> Term:
            if isinstance(term, Variable):
                return substitution.get(term, term)
            return term

        return Atom(
            relation=apply(self.relation),
            peer=apply(self.peer),
            args=tuple(apply(a) for a in self.args),
            negated=self.negated,
        )

    def to_fact(self):
        """Convert a fully ground atom into a :class:`~repro.core.facts.Fact`."""
        from repro.core.facts import Fact

        if not self.is_ground():
            raise SchemaError(f"cannot convert non-ground atom {self} to a fact")
        return Fact(
            relation=self.relation.value,
            peer=self.peer.value,
            values=tuple(a.value for a in self.args),
        )

    def __str__(self) -> str:
        rel = self.relation.value if isinstance(self.relation, Constant) else str(self.relation)
        peer = self.peer.value if isinstance(self.peer, Constant) else str(self.peer)
        rendered_args = ", ".join(str(a) for a in self.args)
        prefix = "not " if self.negated else ""
        return f"{prefix}{rel}@{peer}({rendered_args})"


@dataclass(frozen=True)
class Rule:
    """A WebdamLog rule ``head :- body`` together with bookkeeping metadata.

    Parameters
    ----------
    head:
        The head atom.  Its relation/peer may be variables, in which case they
        must be bound by the body.
    body:
        Ordered tuple of body atoms, evaluated left to right.
    author:
        Name of the peer that wrote the rule.  For delegated rules this is the
        *delegator*, which the access-control layer uses to decide trust.
    origin:
        Identifier of the original rule this rule derives from (delegations
        carry the id of the rule they were split from); ``None`` for rules
        written directly by a user.
    rule_id:
        Unique identifier.  Automatically assigned when omitted.
    """

    head: Atom
    body: Tuple[Atom, ...]
    author: Optional[str] = None
    origin: Optional[str] = None
    rule_id: str = field(default_factory=lambda: f"rule-{next(_rule_counter)}")

    def __post_init__(self):
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise SafetyError(f"rule head must not be negated: {self.head}")
        if not self.body:
            raise SafetyError(f"rule {self.rule_id} has an empty body")

    # -- inspection ------------------------------------------------------ #

    def variables(self) -> Tuple[Variable, ...]:
        """Every variable of the rule, in order of first occurrence."""
        seen: List[Variable] = []
        for atom in (*self.body, self.head):
            for var in atom.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def is_local(self, peer: str) -> bool:
        """``True`` when every body atom is (syntactically) located at ``peer``."""
        return all(atom.peer_constant() == peer for atom in self.body)

    def body_peers(self) -> Set[str]:
        """The set of constant peer names mentioned in the body."""
        return {p for atom in self.body if (p := atom.peer_constant()) is not None}

    def check_safety(self) -> None:
        """Validate the left-to-right safety conditions of WebdamLog.

        Raises
        ------
        SafetyError
            * if a relation/peer variable of a body atom is not bound by an
              earlier positive literal;
            * if a variable of a negated literal is not bound by an earlier
              positive literal;
            * if a head variable (argument, relation or peer position) is not
              bound by some positive body literal.
        """
        bound: Set[Variable] = set()
        for index, atom in enumerate(self.body):
            for var in atom.location_variables():
                if var not in bound:
                    raise SafetyError(
                        f"rule {self.rule_id}: variable ${var.name} used as a "
                        f"relation/peer name in body atom #{index + 1} is not bound by "
                        "an earlier positive literal"
                    )
            if atom.negated:
                for var in atom.argument_variables():
                    if var not in bound and not var.is_anonymous():
                        raise SafetyError(
                            f"rule {self.rule_id}: variable ${var.name} of negated literal "
                            f"#{index + 1} is not bound by an earlier positive literal"
                        )
            else:
                bound.update(atom.argument_variables())
                bound.update(atom.location_variables())
        for var in self.head.variables():
            if var not in bound:
                raise SafetyError(
                    f"rule {self.rule_id}: head variable ${var.name} is not bound by the body"
                )

    def is_safe(self) -> bool:
        """Return ``True`` when :meth:`check_safety` succeeds."""
        try:
            self.check_safety()
        except SafetyError:
            return False
        return True

    # -- transformation -------------------------------------------------- #

    def substitute(self, substitution: Dict[Variable, Term]) -> "Rule":
        """Apply a substitution to the head and every body atom, keeping metadata."""
        return Rule(
            head=self.head.substitute(substitution),
            body=tuple(atom.substitute(substitution) for atom in self.body),
            author=self.author,
            origin=self.origin,
            rule_id=self.rule_id,
        )

    def with_body(self, body: Sequence[Atom], rule_id: Optional[str] = None,
                  origin: Optional[str] = None, author: Optional[str] = None) -> "Rule":
        """Return a copy of the rule with a different body (used by delegation)."""
        return Rule(
            head=self.head,
            body=tuple(body),
            author=author if author is not None else self.author,
            origin=origin if origin is not None else (self.origin or self.rule_id),
            rule_id=rule_id if rule_id is not None else f"{self.rule_id}-d{next(_rule_counter)}",
        )

    def rename_apart(self, suffix: str) -> "Rule":
        """Rename every variable by appending ``suffix`` (used to avoid capture)."""
        mapping: Dict[Variable, Term] = {
            var: Variable(f"{var.name}{suffix}") for var in self.variables()
        }
        renamed = self.substitute(mapping)
        return Rule(
            head=renamed.head,
            body=renamed.body,
            author=self.author,
            origin=self.origin,
            rule_id=self.rule_id,
        )

    def canonical_key(self) -> Tuple:
        """A key identifying the rule up to variable renaming and metadata.

        Two rules with the same canonical key have identical heads and bodies
        after normalising variable names to their order of first occurrence.
        Used to deduplicate delegations that would otherwise be re-installed
        at every stage.
        """
        order: Dict[Variable, str] = {}

        def canon(term: Term):
            if isinstance(term, Variable):
                if term not in order:
                    order[term] = f"v{len(order)}"
                return ("var", order[term])
            return ("const", type(term.value).__name__, term.value)

        def canon_atom(atom: Atom):
            return (
                canon(atom.relation),
                canon(atom.peer),
                tuple(canon(a) for a in atom.args),
                atom.negated,
            )

        return (canon_atom(self.head), tuple(canon_atom(a) for a in self.body))

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.head} :- {body}"


def fresh_rule_id(prefix: str = "rule") -> str:
    """Return a new globally-unique rule identifier."""
    return f"{prefix}-{next(_rule_counter)}"
