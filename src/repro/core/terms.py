"""Terms of the WebdamLog language.

A *term* is either a :class:`Constant` (a data value such as ``"sea.jpg"`` or
``42``) or a :class:`Variable` (written ``$x`` in the surface syntax).  Terms
appear in three positions inside atoms:

* ordinary argument positions (``pictures@alice($id, $name)``),
* the *relation* position (``$R@alice(...)``), and
* the *peer* position (``pictures@$P(...)``).

Allowing variables in the relation and peer positions is one of the two main
novelties of WebdamLog compared with classical datalog (the other being
delegation), so the term model is deliberately uniform: the same
:class:`Variable` class is used in all three positions.
"""

from __future__ import annotations

from typing import Union

#: Python types allowed as constant payloads.  ``bytes`` is included because
#: the Wepic application stores picture contents as binary blobs.
ConstantValue = Union[str, int, float, bool, bytes, None]

_ALLOWED_CONSTANT_TYPES = (str, int, float, bool, bytes, type(None))


class Term:
    """Abstract base class of :class:`Constant` and :class:`Variable`."""

    __slots__ = ()

    def is_constant(self) -> bool:
        """Return ``True`` if this term is a :class:`Constant`."""
        return isinstance(self, Constant)

    def is_variable(self) -> bool:
        """Return ``True`` if this term is a :class:`Variable`."""
        return isinstance(self, Variable)


class Constant(Term):
    """A ground data value.

    Constants wrap a plain Python value (``str``, ``int``, ``float``,
    ``bool``, ``bytes`` or ``None``).  Two constants are equal when their
    wrapped values are equal *and* of the same type, so ``Constant(1)`` and
    ``Constant(True)`` are distinct even though ``1 == True`` in Python.
    """

    __slots__ = ("value",)

    def __init__(self, value: ConstantValue):
        if not isinstance(value, _ALLOWED_CONSTANT_TYPES):
            raise TypeError(
                f"unsupported constant type {type(value).__name__!r}; "
                "expected str, int, float, bool, bytes or None"
            )
        self.value = value

    def __eq__(self, other) -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return type(self.value) is type(other.value) and self.value == other.value

    def __hash__(self) -> int:
        return hash((Constant, type(self.value).__name__, self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if isinstance(self.value, bytes):
            return f'b"{self.value.hex()}"'
        return repr(self.value)


class Variable(Term):
    """A logical variable, written ``$name`` in the surface syntax.

    The leading ``$`` is *not* part of the stored name: ``Variable("x")``
    prints as ``$x``.  Variable names are case-sensitive.

    The special name ``_`` denotes an anonymous ("don't care") variable;
    every occurrence of ``$_`` is distinct for the purposes of safety
    analysis, which is handled by the parser assigning fresh names.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("variable name must be a non-empty string")
        if name.startswith("$"):
            name = name[1:]
        if not name:
            raise ValueError("variable name must not be just '$'")
        self.name = name

    def is_anonymous(self) -> bool:
        """Return ``True`` for the anonymous variable ``$_`` (or parser-generated ``$_N``)."""
        return self.name == "_" or self.name.startswith("_anon")

    def __eq__(self, other) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash((Variable, self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"${self.name}"


def make_term(value) -> Term:
    """Coerce a Python value into a :class:`Term`.

    * existing :class:`Term` instances are returned unchanged;
    * strings starting with ``$`` become :class:`Variable`;
    * everything else becomes :class:`Constant`.

    This is a convenience for building programs programmatically, e.g.
    ``Atom.of("pictures", "alice", "$id", "$name")``.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value.startswith("$"):
        return Variable(value)
    return Constant(value)


def term_sort_key(term: Term):
    """A total order over terms, used to produce deterministic output.

    Variables sort before constants; constants sort by type name then value
    (``bytes`` and ``None`` are compared through their ``repr``).
    """
    if isinstance(term, Variable):
        return (0, "", term.name)
    value = term.value
    type_name = type(value).__name__
    if isinstance(value, (bytes, type(None), bool)):
        return (1, type_name, repr(value))
    return (1, type_name, value)
