"""Annotations: ratings, comments and name tags on pictures.

Wepic lets attendees "annotate pictures with ratings, comments or name tags
(names of attendees appearing in the picture)".  Each annotation is stored as
a fact in a relation located at the *annotating* peer:

* ``rate@<peer>(pictureId, rating)`` with ratings between 1 and 5,
* ``comment@<peer>(pictureId, text)``,
* ``tag@<peer>(pictureId, attendee)``.

The paper's customised rule ``rate@$owner($id, 5)`` reads ratings at the
picture *owner's* peer; the :class:`~repro.wepic.app.WepicApp` therefore also
pushes a copy of each rating to the owner, so both conventions work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from repro.core.errors import WorkloadError
from repro.core.facts import Fact

#: Valid rating values (the demo uses a 1-5 star scale).
MIN_RATING = 1
MAX_RATING = 5


@dataclass(frozen=True)
class Annotation:
    """Base class of the three annotation kinds."""

    picture_id: int
    author: str

    relation_name = "annotation"

    def to_fact(self, peer: Optional[str] = None) -> Fact:
        """Render the annotation as a fact located at ``peer`` (default: the author)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Rating(Annotation):
    """A star rating of a picture."""

    value: int = MAX_RATING

    relation_name = "rate"

    def __post_init__(self):
        if not MIN_RATING <= self.value <= MAX_RATING:
            raise WorkloadError(
                f"rating must be between {MIN_RATING} and {MAX_RATING}, got {self.value}"
            )

    def to_fact(self, peer: Optional[str] = None) -> Fact:
        return Fact(self.relation_name, peer or self.author, (self.picture_id, self.value))


@dataclass(frozen=True)
class Comment(Annotation):
    """A free-text comment on a picture."""

    text: str = ""

    relation_name = "comment"

    def to_fact(self, peer: Optional[str] = None) -> Fact:
        return Fact(self.relation_name, peer or self.author,
                    (self.picture_id, self.author, self.text))


@dataclass(frozen=True)
class NameTag(Annotation):
    """A name tag: an attendee appearing in the picture."""

    attendee: str = ""

    relation_name = "tag"

    def to_fact(self, peer: Optional[str] = None) -> Fact:
        return Fact(self.relation_name, peer or self.author,
                    (self.picture_id, self.attendee))


def rating_from_fact(fact: Fact) -> Rating:
    """Rebuild a :class:`Rating` from a ``rate@peer(id, value)`` fact."""
    if len(fact.values) != 2:
        raise WorkloadError(f"rating facts have 2 values, got {fact}")
    picture_id, value = fact.values
    return Rating(picture_id=int(picture_id), author=fact.peer, value=int(value))


def comment_from_fact(fact: Fact) -> Comment:
    """Rebuild a :class:`Comment` from a ``comment@peer(id, author, text)`` fact."""
    if len(fact.values) != 3:
        raise WorkloadError(f"comment facts have 3 values, got {fact}")
    picture_id, author, text = fact.values
    return Comment(picture_id=int(picture_id), author=str(author), text=str(text))


def tag_from_fact(fact: Fact) -> NameTag:
    """Rebuild a :class:`NameTag` from a ``tag@peer(id, attendee)`` fact."""
    if len(fact.values) != 2:
        raise WorkloadError(f"tag facts have 2 values, got {fact}")
    picture_id, attendee = fact.values
    return NameTag(picture_id=int(picture_id), author=fact.peer, attendee=str(attendee))
