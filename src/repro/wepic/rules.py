"""The canonical Wepic rule set.

Wepic "consists of a small set of rules".  This module holds those rules as
templates instantiated per peer, exactly as written in the paper (modulo
peer-name substitution):

* the **attendee pictures** rule (Figure 1's bottom frame), which uses
  delegation to gather the pictures of every selected attendee::

      attendeePictures@Jules($id, $name, $owner, $data) :-
          selectedAttendee@Jules($attendee),
          pictures@$attendee($id, $name, $owner, $data)

* the **transfer** rule, which routes selected pictures to each selected
  attendee over that attendee's preferred protocol::

      $protocol@$attendee($attendee, $name, $id, $owner) :-
          selectedAttendee@Jules($attendee),
          communicate@$attendee($protocol),
          selectedPictures@Jules($name, $id, $owner)

* the **publication to sigmod** rule, by which a photo uploaded at an
  attendee's peer is "instantly published to pictures@sigmod";

* the sigmod peer's **Facebook publication** rule, restricted to authorised
  owners::

      pictures@SigmodFB($id, $name, $owner, $data) :-
          pictures@sigmod($id, $name, $owner, $data),
          authorized@$owner("Facebook", $id, $owner)

* the sigmod peer's **Facebook retrieval** rules (pictures, comments, tags);

* the **customised** attendee-pictures rule that keeps only pictures rated 5
  by their owner, and further variants (by owner, by tagged attendee) that
  the demo invites the audience to write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.parser import parse_rule
from repro.core.rules import Rule
from repro.core.schema import RelationKind, RelationSchema


#: Name of the central conference peer in the demo.
SIGMOD_PEER = "sigmod"
#: Name of the Facebook-group pseudo-peer in the demo.
SIGMOD_FB_PEER = "SigmodFB"


def attendee_schemas(peer: str) -> Tuple[RelationSchema, ...]:
    """The relations every Wepic attendee peer manages."""
    return (
        RelationSchema("pictures", peer, ("id", "name", "owner", "data")),
        RelationSchema("selectedAttendee", peer, ("attendee",)),
        RelationSchema("selectedPictures", peer, ("name", "id", "owner")),
        RelationSchema("communicate", peer, ("protocol",)),
        RelationSchema("rate", peer, ("id", "rating")),
        RelationSchema("comment", peer, ("id", "author", "text")),
        RelationSchema("tag", peer, ("id", "attendee")),
        RelationSchema("authorized", peer, ("service", "id", "owner")),
        RelationSchema("wepic", peer, ("attendee", "name", "id", "owner")),
        RelationSchema("email", peer, ("recipient", "name", "id", "owner")),
        RelationSchema("attendeePictures", peer, ("id", "name", "owner", "data"),
                       kind=RelationKind.INTENSIONAL),
        RelationSchema("attendeeRatings", peer, ("id", "rating"),
                       kind=RelationKind.INTENSIONAL),
    )


def sigmod_schemas(sigmod_peer: str = SIGMOD_PEER,
                   group_peer: str = SIGMOD_FB_PEER) -> Tuple[RelationSchema, ...]:
    """The relations of the central ``sigmod`` peer."""
    return (
        RelationSchema("pictures", sigmod_peer, ("id", "name", "owner", "data")),
        RelationSchema("attendees", sigmod_peer, ("attendee",)),
        RelationSchema("comments", sigmod_peer, ("id", "author", "text")),
        RelationSchema("tags", sigmod_peer, ("id", "attendee")),
        RelationSchema("pictures", group_peer, ("id", "name", "owner", "data")),
        RelationSchema("comments", group_peer, ("id", "author", "text")),
        RelationSchema("tags", group_peer, ("id", "attendee")),
    )


@dataclass
class WepicRules:
    """Factory of the Wepic rules for a given peer topology.

    Parameters
    ----------
    sigmod_peer:
        Name of the central conference peer (``"sigmod"`` in the demo).
    group_peer:
        Name of the Facebook-group pseudo-peer (``"SigmodFB"``).
    """

    sigmod_peer: str = SIGMOD_PEER
    group_peer: str = SIGMOD_FB_PEER

    # ------------------------------------------------------------------ #
    # attendee-side rules
    # ------------------------------------------------------------------ #

    def attendee_pictures_rule(self, peer: str) -> Rule:
        """The delegation rule filling the *Attendee pictures* frame of Figure 1."""
        text = (
            f"attendeePictures@{peer}($id, $name, $owner, $data) :- "
            f"selectedAttendee@{peer}($attendee), "
            f"pictures@$attendee($id, $name, $owner, $data)"
        )
        return parse_rule(text, author=peer)

    def attendee_ratings_rule(self, peer: str) -> Rule:
        """Gather the ratings published by the selected attendees (used for ranking)."""
        text = (
            f"attendeeRatings@{peer}($id, $rating) :- "
            f"selectedAttendee@{peer}($attendee), "
            f"rate@$attendee($id, $rating)"
        )
        return parse_rule(text, author=peer)

    def transfer_rule(self, peer: str) -> Rule:
        """The protocol-dispatch transfer rule of Section 3."""
        text = (
            f"$protocol@$attendee($attendee, $name, $id, $owner) :- "
            f"selectedAttendee@{peer}($attendee), "
            f"communicate@$attendee($protocol), "
            f"selectedPictures@{peer}($name, $id, $owner)"
        )
        return parse_rule(text, author=peer)

    def publish_to_sigmod_rule(self, peer: str) -> Rule:
        """Publish every locally stored picture to ``pictures@sigmod``."""
        text = (
            f"pictures@{self.sigmod_peer}($id, $name, $owner, $data) :- "
            f"pictures@{peer}($id, $name, $owner, $data)"
        )
        return parse_rule(text, author=peer)

    def rating_filtered_rule(self, peer: str, rating: int = 5) -> Rule:
        """The paper's customised rule: only pictures the owner rated ``rating``."""
        text = (
            f"attendeePictures@{peer}($id, $name, $owner, $data) :- "
            f"selectedAttendee@{peer}($attendee), "
            f"pictures@$attendee($id, $name, $owner, $data), "
            f"rate@$owner($id, {rating})"
        )
        return parse_rule(text, author=peer)

    def owner_filtered_rule(self, peer: str, owner: str) -> Rule:
        """Further customisation: only pictures taken by a particular attendee."""
        text = (
            f"attendeePictures@{peer}($id, $name, \"{owner}\", $data) :- "
            f"selectedAttendee@{peer}($attendee), "
            f"pictures@$attendee($id, $name, \"{owner}\", $data)"
        )
        return parse_rule(text, author=peer)

    def tagged_attendee_rule(self, peer: str, attendee: str) -> Rule:
        """Further customisation: only pictures in which ``attendee`` appears."""
        text = (
            f"attendeePictures@{peer}($id, $name, $owner, $data) :- "
            f"selectedAttendee@{peer}($a), "
            f"pictures@$a($id, $name, $owner, $data), "
            f"tag@$owner($id, \"{attendee}\")"
        )
        return parse_rule(text, author=peer)

    def attendee_rules(self, peer: str, publish_to_sigmod: bool = True) -> List[Rule]:
        """The default rule set installed at an attendee peer."""
        rules = [
            self.attendee_pictures_rule(peer),
            self.attendee_ratings_rule(peer),
            self.transfer_rule(peer),
        ]
        if publish_to_sigmod:
            rules.append(self.publish_to_sigmod_rule(peer))
        return rules

    # ------------------------------------------------------------------ #
    # sigmod-side rules
    # ------------------------------------------------------------------ #

    def facebook_publication_rule(self) -> Rule:
        """Publish authorised pictures from ``sigmod`` to the Facebook group."""
        text = (
            f"pictures@{self.group_peer}($id, $name, $owner, $data) :- "
            f"pictures@{self.sigmod_peer}($id, $name, $owner, $data), "
            f"authorized@$owner(\"Facebook\", $id, $owner)"
        )
        return parse_rule(text, author=self.sigmod_peer)

    def facebook_retrieval_rules(self) -> List[Rule]:
        """Retrieve pictures, comments and tags from the Facebook group into sigmod."""
        pictures = (
            f"pictures@{self.sigmod_peer}($id, $name, $owner, $data) :- "
            f"pictures@{self.group_peer}($id, $name, $owner, $data)"
        )
        comments = (
            f"comments@{self.sigmod_peer}($id, $author, $text) :- "
            f"comments@{self.group_peer}($id, $author, $text)"
        )
        tags = (
            f"tags@{self.sigmod_peer}($id, $attendee) :- "
            f"tags@{self.group_peer}($id, $attendee)"
        )
        return [parse_rule(text, author=self.sigmod_peer)
                for text in (pictures, comments, tags)]

    def sigmod_rules(self, publish_to_facebook: bool = True,
                     retrieve_from_facebook: bool = True) -> List[Rule]:
        """The default rule set of the central ``sigmod`` peer."""
        rules: List[Rule] = []
        if publish_to_facebook:
            rules.append(self.facebook_publication_rule())
        if retrieve_from_facebook:
            rules.extend(self.facebook_retrieval_rules())
        return rules
