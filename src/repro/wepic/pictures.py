"""Pictures: the data Wepic manages.

A picture fact, as in the paper::

    pictures@sigmod(32, "sea.jpg", "Émilien", "100...")

has an id, a file name, an owner, and the (binary) content plus meta-data.
The reproduction synthesises contents as deterministic pseudo-random bit
strings of configurable size — the engine treats them as opaque values, so
only their size matters for the experiments.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.facts import Fact

_picture_counter = itertools.count(1)

#: Common photo subjects used to produce plausible file names.
_SUBJECTS = (
    "sea", "boat", "keynote", "poster", "banquet", "sunset", "panel",
    "demo", "coffee", "skyline", "bridge", "beach", "reception", "badge",
)


@dataclass(frozen=True)
class Picture:
    """One picture with its meta-data."""

    picture_id: int
    name: str
    owner: str
    data: str

    def size(self) -> int:
        """Size of the picture content (in characters of the bit string)."""
        return len(self.data)

    def to_fact(self, relation: str = "pictures", peer: Optional[str] = None) -> Fact:
        """Render the picture as a WebdamLog fact of ``relation@peer``.

        The default peer is the owner, matching the demo setup where every
        attendee stores their own photos in ``pictures@<attendee>``.
        """
        return Fact(relation, peer or self.owner,
                    (self.picture_id, self.name, self.owner, self.data))

    @classmethod
    def from_fact(cls, fact: Fact) -> "Picture":
        """Rebuild a picture from a 4-ary ``pictures``-style fact."""
        if len(fact.values) != 4:
            raise ValueError(f"picture facts have 4 values, got {fact}")
        picture_id, name, owner, data = fact.values
        return cls(picture_id=int(picture_id), name=str(name), owner=str(owner),
                   data=str(data))


def generate_picture(owner: str, index: Optional[int] = None, size: int = 64,
                     rng: Optional[random.Random] = None,
                     subject: Optional[str] = None) -> Picture:
    """Create one synthetic picture.

    The content is a deterministic pseudo-random bit string derived from the
    owner and index (so repeated generation with the same arguments yields
    the same picture), unless an explicit ``rng`` is given.
    """
    if index is None:
        index = next(_picture_counter)
    if subject is None:
        subject = _SUBJECTS[index % len(_SUBJECTS)]
    name = f"{subject}-{index}.jpg"
    if rng is not None:
        data = "".join(rng.choice("01") for _ in range(size))
    else:
        seed_material = f"{owner}/{index}/{size}".encode("utf-8")
        digest = hashlib.sha256(seed_material).digest()
        bits: List[str] = []
        while len(bits) < size:
            for byte in digest:
                bits.extend(format(byte, "08b"))
                if len(bits) >= size:
                    break
            digest = hashlib.sha256(digest).digest()
        data = "".join(bits[:size])
    return Picture(picture_id=index, name=name, owner=owner, data=data)


def generate_library(owner: str, count: int, size: int = 64,
                     start_id: int = 1) -> "PictureLibrary":
    """Generate a library of ``count`` pictures owned by ``owner``."""
    pictures = [
        generate_picture(owner, index=start_id + offset, size=size)
        for offset in range(count)
    ]
    return PictureLibrary(owner=owner, pictures=pictures)


@dataclass
class PictureLibrary:
    """A collection of pictures belonging to one owner."""

    owner: str
    pictures: List[Picture] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pictures)

    def __iter__(self) -> Iterator[Picture]:
        return iter(self.pictures)

    def add(self, picture: Picture) -> Picture:
        """Add a picture to the library."""
        self.pictures.append(picture)
        return picture

    def by_id(self, picture_id: int) -> Optional[Picture]:
        """Look up a picture by id."""
        for picture in self.pictures:
            if picture.picture_id == picture_id:
                return picture
        return None

    def facts(self, relation: str = "pictures", peer: Optional[str] = None) -> List[Fact]:
        """Render every picture as a fact of ``relation@peer``."""
        return [picture.to_fact(relation, peer) for picture in self.pictures]

    def ids(self) -> Tuple[int, ...]:
        """The picture ids, in insertion order."""
        return tuple(picture.picture_id for picture in self.pictures)

    def total_size(self) -> int:
        """Total content size across the library."""
        return sum(picture.size() for picture in self.pictures)
