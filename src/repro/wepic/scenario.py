"""The demonstration scenario of the paper (Figure 2).

"In the beginning of the demo, three peers are established: one on each of
the laptops of Émilien and Jules, connected via a local network, and a third,
the sigmod peer, hosted on Webdam cloud. [...] Both have Facebook accounts
and are members of the SigmodFB group, the official Facebook group of the
conference.  Finally, both users are subscribed to the sigmod peer, which
stores the list of registered Wepic users."

:func:`build_demo_scenario` reproduces exactly that topology — attendee peers
(Émilien and Jules by default, more on request), the central ``sigmod`` peer,
the ``SigmodFB`` Facebook-group pseudo-peer backed by the simulated Facebook
service, and an email wrapper per attendee — and returns a
:class:`DemoScenario` handle that tests, examples and benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import Subscription, System, Transport
from repro.api import system as api_system
from repro.core.facts import Fact
from repro.runtime.inmemory import NetworkStats
from repro.runtime.peer import Peer
from repro.runtime.system import RunSummary, WebdamLogSystem
from repro.wepic.app import WepicApp
from repro.wepic.pictures import PictureLibrary, generate_library
from repro.wepic.rules import SIGMOD_FB_PEER, SIGMOD_PEER, WepicRules, sigmod_schemas
from repro.wepic.ui import WepicUI
from repro.wrappers.email import EmailService, EmailWrapper
from repro.wrappers.facebook import FacebookGroupWrapper, FacebookService
from repro.wrappers.registry import WrapperRegistry

#: Default attendee names of the demo (ASCII spelling of Émilien to keep
#: relation syntax simple; the engine itself accepts any identifier).
DEFAULT_ATTENDEES = ("Emilien", "Jules")


@dataclass
class DemoScenario:
    """Handle over a fully built Wepic demo deployment.

    ``api`` is the :class:`repro.api.System` facade the deployment was built
    through (queries, subscriptions, transport stats); ``system`` is the
    underlying runtime orchestrator, kept for existing callers.
    """

    system: WebdamLogSystem
    api: System
    apps: Dict[str, WepicApp]
    sigmod_peer: Peer
    group_peer: Peer
    facebook: FacebookService
    email: EmailService
    wrappers: WrapperRegistry
    rules: WepicRules
    libraries: Dict[str, PictureLibrary] = field(default_factory=dict)

    def app(self, attendee: str) -> WepicApp:
        """The Wepic application of one attendee."""
        return self.apps[attendee]

    def ui(self, attendee: str) -> WepicUI:
        """A headless UI over one attendee's application."""
        return WepicUI(self.apps[attendee])

    def attendees(self) -> Tuple[str, ...]:
        """The attendee names, sorted."""
        return tuple(sorted(self.apps))

    def run(self, max_rounds: int = 60) -> RunSummary:
        """Run the system until it converges (with its configured scheduler)."""
        return self.api.converge(max_steps=max_rounds)

    def converge(self, max_steps: Optional[int] = None) -> RunSummary:
        """Scheduler-API name for :meth:`run`."""
        return self.api.converge(max_steps=max_steps)

    def stats(self) -> NetworkStats:
        """The transport's accumulated counters."""
        return self.api.stats

    def reset_stats(self) -> NetworkStats:
        """Return the transport counters so far and start fresh ones."""
        return self.api.reset_stats()

    def subscribe(self, relation: str, callback: Callable[[Fact], None],
                  peer: Optional[str] = None) -> Subscription:
        """Watch a relation of the deployment (see :meth:`repro.api.System.subscribe`)."""
        return self.api.subscribe(relation, callback, peer=peer)

    def sigmod_pictures(self) -> Tuple[Fact, ...]:
        """The pictures currently stored at the sigmod peer."""
        return self.sigmod_peer.query("pictures")

    def facebook_group_pictures(self) -> Tuple[Fact, ...]:
        """The pictures currently visible in the SigmodFB group relations."""
        return self.group_peer.query("pictures")

    def add_attendee(self, name: str, pictures: int = 0, picture_size: int = 64,
                     announce: bool = True) -> WepicApp:
        """Add a new attendee peer at run time (the "Interaction via the Web" scenario)."""
        peer = self.api.add_peer(name, announce=announce)
        app = WepicApp(peer, rules=self.rules)
        self.apps[name] = app
        email_wrapper = EmailWrapper(self.email)
        peer.attach_wrapper(email_wrapper)
        self.wrappers.register(name, email_wrapper)
        self.sigmod_peer.insert_fact(Fact("attendees", self.sigmod_peer.name, (name,)))
        if pictures:
            library = generate_library(name, pictures, size=picture_size,
                                       start_id=self._next_picture_id())
            self.libraries[name] = library
            app.upload_library(library)
        return app

    def _next_picture_id(self) -> int:
        highest = 0
        for library in self.libraries.values():
            if len(library):
                highest = max(highest, max(library.ids()))
        return highest + 1


def build_demo_scenario(attendees: Sequence[str] = DEFAULT_ATTENDEES,
                        pictures_per_attendee: int = 3,
                        picture_size: int = 64,
                        control_delegation: bool = False,
                        latency: int = 1,
                        publish_to_sigmod: bool = True,
                        with_facebook: bool = True,
                        seed: Optional[int] = 0,
                        transport: Optional[Transport] = None,
                        scheduler: Optional[object] = None,
                        provenance: bool = False) -> DemoScenario:
    """Build the Figure-2 deployment through :mod:`repro.api`.

    Parameters
    ----------
    attendees:
        Names of the attendee peers (the demo uses Émilien and Jules).
    pictures_per_attendee:
        How many synthetic pictures each attendee starts with.
    picture_size:
        Size of each synthetic picture's content.
    control_delegation:
        When ``True``, peers do *not* auto-accept delegations: delegations
        from untrusted peers (everybody except ``sigmod``) go to the pending
        queue, as in the demo's control-of-delegation scenario.
    latency:
        Network latency in rounds.
    publish_to_sigmod:
        Whether attendees install the rule publishing their pictures to the
        sigmod peer.
    with_facebook:
        Whether the SigmodFB group pseudo-peer (and the sigmod peer's
        publication/retrieval rules) are created.
    seed:
        Seed for the network's loss model (unused unless loss is configured).
    transport:
        An explicit :class:`repro.api.Transport`; overrides ``latency`` and
        ``seed`` (e.g. a :class:`repro.api.RecordingTransport` for tracing).
    scheduler:
        Execution driver of the deployment: ``"lockstep"`` (default),
        ``"reactive"``, ``"async"`` or a
        :class:`~repro.runtime.scheduler.Scheduler` instance.
    provenance:
        When ``True`` every peer tracks why-provenance incrementally;
        ``scenario.api.explain(peer, fact)`` then answers why/lineage
        queries (e.g. why a picture appeared on an attendee's wall) and the
        access-control view policies can filter by lineage.
    """
    rules = WepicRules(sigmod_peer=SIGMOD_PEER, group_peer=SIGMOD_FB_PEER)
    facebook = FacebookService()
    email = EmailService()
    registry = WrapperRegistry()

    builder = (api_system()
               .default_trusted(SIGMOD_PEER)
               .auto_accept_delegations(not control_delegation))
    if provenance:
        builder.provenance()
    if transport is not None:
        builder.transport(transport)
    else:
        builder.latency(latency).seed(seed)
    if scheduler is not None:
        builder.scheduler(scheduler)

    # --- the sigmod cloud peer ---------------------------------------- #
    sigmod_builder = builder.peer(SIGMOD_PEER).auto_accept_delegations(True)
    for schema in sigmod_schemas(SIGMOD_PEER, SIGMOD_FB_PEER):
        sigmod_builder.schema(schema)
    for rule in rules.sigmod_rules(publish_to_facebook=with_facebook,
                                   retrieve_from_facebook=with_facebook):
        sigmod_builder.rule(rule)

    # --- the SigmodFB group pseudo-peer -------------------------------- #
    group_wrapper = None
    if with_facebook:
        group_wrapper = FacebookGroupWrapper(facebook, group="sigmod",
                                             peer_name=SIGMOD_FB_PEER)
        (builder.peer(SIGMOD_FB_PEER)
                .auto_accept_delegations(True)
                .wrapper(group_wrapper))
        registry.register(SIGMOD_FB_PEER, group_wrapper)

    # --- the attendee peers (rules are installed per-app below) --------- #
    for attendee in attendees:
        builder.peer(attendee)

    deployment = builder.build()
    sigmod = deployment.peer(SIGMOD_PEER).unwrap()
    group_peer = (deployment.peer(SIGMOD_FB_PEER).unwrap()
                  if with_facebook else sigmod)

    apps: Dict[str, WepicApp] = {}
    libraries: Dict[str, PictureLibrary] = {}
    next_picture_id = 1
    for attendee in attendees:
        handle = deployment.peer(attendee)
        app = WepicApp(handle, rules=rules, publish_to_sigmod=publish_to_sigmod)
        apps[attendee] = app
        email_wrapper = EmailWrapper(email)
        handle.attach_wrapper(email_wrapper)
        registry.register(attendee, email_wrapper)
        # Facebook accounts and SigmodFB membership for every attendee.
        if with_facebook:
            facebook.add_user(attendee)
            facebook.join_group("sigmod", attendee)
        # Subscription to the sigmod peer (list of registered Wepic users).
        sigmod.insert_fact(Fact("attendees", SIGMOD_PEER, (attendee,)))
        # Starting picture library.
        if pictures_per_attendee:
            library = generate_library(attendee, pictures_per_attendee,
                                       size=picture_size, start_id=next_picture_id)
            next_picture_id += pictures_per_attendee
            libraries[attendee] = library
            app.upload_library(library)

    scenario = DemoScenario(
        system=deployment.runtime,
        api=deployment,
        apps=apps,
        sigmod_peer=sigmod,
        group_peer=group_peer,
        facebook=facebook,
        email=email,
        wrappers=registry,
        rules=rules,
        libraries=libraries,
    )
    return scenario
