"""Selecting and ranking pictures by their annotations.

Functionality 5 of the Wepic feature list: "Select and rank photos based on
their annotations."  Ranking combines the pictures visible in the *Attendee
pictures* frame with the ratings gathered from the selected attendees (the
``attendeeRatings`` view) and the user's own ratings, and orders pictures by
average rating (ties broken by number of ratings, then by id).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.facts import Fact
from repro.datalog.aggregation import Aggregate, aggregate_relation
from repro.wepic.pictures import Picture


@dataclass(frozen=True)
class PictureRanking:
    """One entry of the ranked picture list."""

    picture: Picture
    average_rating: float
    rating_count: int

    def __str__(self) -> str:
        return (f"{self.picture.name} by {self.picture.owner}: "
                f"{self.average_rating:.2f} stars ({self.rating_count} ratings)")


def collect_ratings(rating_facts: Iterable[Fact]) -> Dict[int, List[int]]:
    """Group rating values by picture id from ``rate``-style facts."""
    by_picture: Dict[int, List[int]] = {}
    for fact in rating_facts:
        if len(fact.values) < 2:
            continue
        picture_id, value = fact.values[0], fact.values[1]
        try:
            by_picture.setdefault(int(picture_id), []).append(int(value))
        except (TypeError, ValueError):
            continue
    return by_picture


def rank_pictures(pictures: Sequence[Picture], rating_facts: Iterable[Fact],
                  min_rating: float = 0.0,
                  include_unrated: bool = True) -> Tuple[PictureRanking, ...]:
    """Rank ``pictures`` by average rating.

    Parameters
    ----------
    pictures:
        The candidate pictures (typically the attendee-pictures view).
    rating_facts:
        ``rate``-style facts (picture id, rating value) from any peer.
    min_rating:
        Pictures whose average rating is below this threshold are dropped
        (unrated pictures are kept only when ``include_unrated`` is true and
        the threshold is 0).
    include_unrated:
        Whether pictures without any rating appear at the bottom of the list.
    """
    ratings = collect_ratings(rating_facts)
    ranked: List[PictureRanking] = []
    for picture in pictures:
        values = ratings.get(picture.picture_id, [])
        if values:
            average = sum(values) / len(values)
        else:
            if not include_unrated or min_rating > 0.0:
                continue
            average = 0.0
        if average < min_rating:
            continue
        ranked.append(PictureRanking(picture=picture, average_rating=average,
                                     rating_count=len(values)))
    ranked.sort(key=lambda r: (-r.average_rating, -r.rating_count,
                               r.picture.owner, r.picture.picture_id))
    return tuple(ranked)


def rating_summary(rating_facts: Iterable[Fact]) -> Tuple[Tuple[int, float, int], ...]:
    """Per-picture rating summary ``(picture_id, average, count)``.

    Implemented with the datalog substrate's group-by aggregation so the same
    code path the benchmarks exercise serves the application feature.
    """
    rows = []
    for fact in rating_facts:
        if len(fact.values) >= 2:
            try:
                rows.append((int(fact.values[0]), int(fact.values[1])))
            except (TypeError, ValueError):
                continue
    aggregated = aggregate_relation(
        rows, group_by=[0],
        aggregates=[(1, Aggregate.AVG), (1, Aggregate.COUNT)],
    )
    summary = tuple(sorted(
        (int(picture_id), float(average), int(count))
        for picture_id, average, count in aggregated
    ))
    return summary


def top_pictures(pictures: Sequence[Picture], rating_facts: Iterable[Fact],
                 count: int = 5) -> Tuple[PictureRanking, ...]:
    """The ``count`` best-rated pictures."""
    return rank_pictures(pictures, rating_facts)[:count]
