"""The per-attendee Wepic application object.

:class:`WepicApp` wraps one runtime :class:`~repro.runtime.peer.Peer` and
exposes the five units of functionality listed in Section 3 of the paper:

1. upload a picture from a file or a URL;
2. view pictures provided by a particular attendee;
3. transfer pictures (by email, to the Facebook group, or to another peer);
4. annotate pictures with ratings, comments or name tags;
5. select and rank photos based on their annotations.

plus the rule inspection / customisation operations that the demo walks the
audience through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.facts import Fact
from repro.core.rules import Rule
from repro.runtime.peer import Peer
from repro.wepic.annotations import Comment, NameTag, Rating
from repro.wepic.pictures import Picture, PictureLibrary, generate_picture
from repro.wepic.rules import WepicRules


class WepicApp:
    """The Wepic application running at one attendee's peer.

    Parameters
    ----------
    peer:
        The runtime peer that hosts the application.
    rules:
        The rule factory (shared across the scenario so every app agrees on
        the names of the sigmod and Facebook-group peers).
    install_rules:
        Whether to install the default attendee rule set immediately.
    publish_to_sigmod:
        Whether the default rule set includes the rule that publishes every
        local picture to ``pictures@sigmod``.
    """

    def __init__(self, peer: Peer, rules: Optional[WepicRules] = None,
                 install_rules: bool = True, publish_to_sigmod: bool = True):
        # Accept either a raw runtime Peer or a repro.api PeerHandle; the app
        # always works on the underlying peer so both construction paths
        # behave identically.  A PeerHandle is kept around: it is what powers
        # the live-view pages (declarative queries need the System facade).
        self.handle = None
        unwrap = getattr(peer, "unwrap", None)
        if unwrap is not None:
            self.handle = peer
            peer = unwrap()
        self.peer = peer
        self._views: Dict[str, object] = {}
        self.rules = rules or WepicRules()
        self._rule_ids: Dict[str, str] = {}
        for schema in self._schemas():
            peer.declare(schema)
        if install_rules:
            self.install_default_rules(publish_to_sigmod=publish_to_sigmod)

    def _schemas(self):
        from repro.wepic.rules import attendee_schemas

        return attendee_schemas(self.peer.name)

    @property
    def name(self) -> str:
        """The attendee (peer) name."""
        return self.peer.name

    # ------------------------------------------------------------------ #
    # rules
    # ------------------------------------------------------------------ #

    def install_default_rules(self, publish_to_sigmod: bool = True) -> Dict[str, str]:
        """Install the canonical attendee rule set; returns ``{logical name: rule id}``."""
        named_rules = {
            "attendee_pictures": self.rules.attendee_pictures_rule(self.name),
            "attendee_ratings": self.rules.attendee_ratings_rule(self.name),
            "transfer": self.rules.transfer_rule(self.name),
        }
        if publish_to_sigmod:
            named_rules["publish_to_sigmod"] = self.rules.publish_to_sigmod_rule(self.name)
        for logical_name, rule in named_rules.items():
            installed = self.peer.add_rule(rule)
            self._rule_ids[logical_name] = installed.rule_id
        return dict(self._rule_ids)

    def rule_id(self, logical_name: str) -> str:
        """The rule id behind a logical rule name (e.g. ``"attendee_pictures"``)."""
        return self._rule_ids[logical_name]

    def installed_rules(self) -> Tuple[Rule, ...]:
        """The peer's own rules (for the *Rules* tab of the UI)."""
        return self.peer.rules()

    def customize_attendee_pictures(self, new_rule: Union[str, Rule]) -> Rule:
        """Replace the attendee-pictures rule (the demo's "customizing rules" step)."""
        replaced = self.peer.replace_rule(self._rule_ids["attendee_pictures"], new_rule)
        return replaced

    def restrict_to_rating(self, rating: int = 5) -> Rule:
        """Customise the attendee-pictures rule to keep only pictures rated ``rating``."""
        return self.customize_attendee_pictures(
            self.rules.rating_filtered_rule(self.name, rating)
        )

    def restrict_to_owner(self, owner: str) -> Rule:
        """Customise the attendee-pictures rule to keep only pictures taken by ``owner``."""
        return self.customize_attendee_pictures(
            self.rules.owner_filtered_rule(self.name, owner)
        )

    def restrict_to_tagged(self, attendee: str) -> Rule:
        """Customise the attendee-pictures rule to pictures in which ``attendee`` appears."""
        return self.customize_attendee_pictures(
            self.rules.tagged_attendee_rule(self.name, attendee)
        )

    def reset_attendee_pictures_rule(self) -> Rule:
        """Restore the original (unfiltered) attendee-pictures rule."""
        return self.customize_attendee_pictures(
            self.rules.attendee_pictures_rule(self.name)
        )

    def add_rule(self, rule: Union[str, Rule]) -> Rule:
        """Add a brand new rule written by the user (the *Query* tab)."""
        return self.peer.add_rule(rule)

    # ------------------------------------------------------------------ #
    # 1. uploading pictures
    # ------------------------------------------------------------------ #

    def upload_picture(self, picture: Optional[Picture] = None, name: Optional[str] = None,
                       data: Optional[str] = None, picture_id: Optional[int] = None,
                       size: int = 64) -> Picture:
        """Upload a picture to the local ``pictures`` relation.

        Either pass a ready-made :class:`Picture` (e.g. from a library) or
        let the method synthesise one ("from a file or a URL" in the demo).
        """
        if picture is None:
            picture = generate_picture(self.name, index=picture_id, size=size)
            if name is not None:
                picture = Picture(picture_id=picture.picture_id, name=name,
                                  owner=self.name, data=data or picture.data)
        self.peer.insert_fact(picture.to_fact(peer=self.name))
        return picture

    def upload_library(self, library: PictureLibrary) -> int:
        """Upload every picture of a library; returns how many were inserted."""
        for picture in library:
            self.peer.insert_fact(picture.to_fact(peer=self.name))
        return len(library)

    def local_pictures(self) -> Tuple[Picture, ...]:
        """The pictures stored at this peer."""
        return tuple(Picture.from_fact(f) for f in self.peer.query("pictures"))

    def remove_picture(self, picture_id: int) -> int:
        """Delete a local picture by id; returns how many facts were removed."""
        removed = 0
        for fact in list(self.peer.query("pictures")):
            if fact.values and fact.values[0] == picture_id:
                self.peer.delete_fact(fact)
                removed += 1
        return removed

    # ------------------------------------------------------------------ #
    # 2. viewing pictures of attendees
    # ------------------------------------------------------------------ #

    def select_attendee(self, attendee: str) -> None:
        """Highlight an attendee (right-hand column of Figure 1)."""
        self.peer.insert_fact(Fact("selectedAttendee", self.name, (attendee,)))

    def deselect_attendee(self, attendee: str) -> None:
        """Remove an attendee from the selection."""
        self.peer.delete_fact(Fact("selectedAttendee", self.name, (attendee,)))

    def selected_attendees(self) -> Tuple[str, ...]:
        """The currently selected attendees, sorted."""
        return tuple(sorted(str(f.values[0]) for f in self.peer.query("selectedAttendee")))

    def attendee_pictures(self) -> Tuple[Picture, ...]:
        """The contents of the *Attendee pictures* frame (Figure 1, bottom)."""
        return tuple(sorted(
            (Picture.from_fact(f) for f in self.peer.query("attendeePictures")),
            key=lambda p: (p.owner, p.picture_id),
        ))

    # ------------------------------------------------------------------ #
    # 3. transferring pictures
    # ------------------------------------------------------------------ #

    def set_protocol(self, protocol: str) -> None:
        """Declare this attendee's preferred communication protocol."""
        self.peer.insert_fact(Fact("communicate", self.name, (protocol,)))

    def protocols(self) -> Tuple[str, ...]:
        """The protocols this attendee accepts."""
        return tuple(sorted(str(f.values[0]) for f in self.peer.query("communicate")))

    def select_picture_for_transfer(self, picture: Picture) -> None:
        """Mark one picture for transfer (``selectedPictures`` relation)."""
        self.peer.insert_fact(Fact("selectedPictures", self.name,
                                   (picture.name, picture.picture_id, picture.owner)))

    def clear_transfer_selection(self) -> None:
        """Unselect every picture marked for transfer."""
        for fact in list(self.peer.query("selectedPictures")):
            self.peer.delete_fact(fact)

    def received_transfers(self) -> Tuple[Fact, ...]:
        """Pictures received directly in this Wepic peer (``wepic`` relation)."""
        return self.peer.query("wepic")

    def authorize_facebook(self, picture: Picture) -> None:
        """Authorise the publication of one picture to the Facebook group."""
        self.peer.insert_fact(Fact("authorized", self.name,
                                   ("Facebook", picture.picture_id, picture.owner)))

    def authorize_all_facebook(self) -> int:
        """Authorise every local picture for Facebook publication."""
        count = 0
        for picture in self.local_pictures():
            self.authorize_facebook(picture)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # 4. annotations
    # ------------------------------------------------------------------ #

    def rate_picture(self, picture_id: int, rating: int,
                     owner: Optional[str] = None) -> Rating:
        """Rate a picture.  The rating is stored locally and pushed to the owner's peer."""
        annotation = Rating(picture_id=picture_id, author=self.name, value=rating)
        self.peer.insert_fact(annotation.to_fact(peer=self.name))
        if owner is not None and owner != self.name:
            self.peer.insert_fact(annotation.to_fact(peer=owner))
        return annotation

    def comment_picture(self, picture_id: int, text: str,
                        owner: Optional[str] = None) -> Comment:
        """Comment on a picture (stored locally, optionally pushed to the owner)."""
        annotation = Comment(picture_id=picture_id, author=self.name, text=text)
        self.peer.insert_fact(annotation.to_fact(peer=self.name))
        if owner is not None and owner != self.name:
            self.peer.insert_fact(annotation.to_fact(peer=owner))
        return annotation

    def tag_picture(self, picture_id: int, attendee: str,
                    owner: Optional[str] = None) -> NameTag:
        """Tag an attendee on a picture (stored locally, optionally pushed to the owner)."""
        annotation = NameTag(picture_id=picture_id, author=self.name, attendee=attendee)
        self.peer.insert_fact(annotation.to_fact(peer=self.name))
        if owner is not None and owner != self.name:
            self.peer.insert_fact(annotation.to_fact(peer=owner))
        return annotation

    def ratings(self) -> Tuple[Rating, ...]:
        """The ratings stored at this peer (its own plus those pushed by others)."""
        from repro.wepic.annotations import rating_from_fact

        return tuple(rating_from_fact(f) for f in self.peer.query("rate"))

    def gathered_ratings(self) -> Tuple[Fact, ...]:
        """Ratings gathered from the selected attendees (``attendeeRatings`` view)."""
        return self.peer.query("attendeeRatings")

    # ------------------------------------------------------------------ #
    # 5. selection and ranking
    # ------------------------------------------------------------------ #

    def ranked_attendee_pictures(self, min_rating: float = 0.0):
        """Rank the attendee pictures by their average gathered rating."""
        from repro.wepic.ranking import rank_pictures

        rating_facts = self.gathered_ratings() + tuple(
            Fact("rate", self.name, (r.picture_id, r.value)) for r in self.ratings()
        )
        return rank_pictures(self.attendee_pictures(), rating_facts, min_rating=min_rating)

    # ------------------------------------------------------------------ #
    # live-view pages (declarative query API; requires a PeerHandle)
    # ------------------------------------------------------------------ #

    def _require_handle(self):
        if self.handle is None:
            raise RuntimeError(
                f"WepicApp({self.name}) was built from a raw Peer; the live-"
                "view pages need the repro.api facade — construct the app "
                "with a PeerHandle (e.g. via build_demo_scenario)"
            )
        return self.handle

    def _standing_view(self, key: str, factory, install: bool = True):
        view = self._views.get(key)
        if view is not None and view.closed:
            view = None
        if view is None and install:
            view = self._views[key] = factory()
        return view

    def rating_summary_view(self, viewer: Optional[str] = None,
                            install: bool = True):
        """The ranking page as a standing aggregate live view.

        One maintained view ``ratingSummary($id, avg($rating),
        count($rating))`` over the gathered ``attendeeRatings`` — churn in
        the selected attendees' ratings is absorbed incrementally instead of
        re-running the ranking query per refresh.  ``install=False`` only
        returns an already-open view (``None`` otherwise) — the read-only UI
        renders through that, so drawing a frame never mutates the program.
        """
        handle = self._require_handle()
        return self._standing_view(f"rating_summary:{viewer}", lambda: handle.query(
            f"ratingSummary($id, avg($rating), count($rating)) :- "
            f"attendeeRatings@{self.name}($id, $rating)",
            viewer=viewer,
            name=f"ratingSummary_{self.name}",
        ), install=install)

    def wall_view(self, owner: Optional[str] = None, rating: Optional[int] = None,
                  viewer: Optional[str] = None, install: bool = True):
        """The *Attendee pictures* filter page as a standing live view.

        ``owner`` restricts the wall to one attendee's pictures (a bound
        argument, answered from the hash indexes); ``rating`` additionally
        keeps only pictures the owner rated with that value, mirroring the
        demo's "customizing rules" filters — but as an ad-hoc view, without
        touching the user-visible program.  ``install=False`` only returns
        an already-open matching view (``None`` otherwise).
        """
        handle = self._require_handle()
        me = self.name
        owner_term = f'"{owner}"' if owner is not None else "$owner"
        body = f"attendeePictures@{me}($id, $name, {owner_term}, $data)"
        head_owner = "" if owner is not None else ", $owner"
        if rating is not None:
            body += f", rate@{me}($id, {int(rating)})"
        query = (f"wall($id, $name{head_owner}) :- {body}")
        return self._standing_view(
            f"wall:{owner}:{rating}:{viewer}",
            lambda: handle.query(query, viewer=viewer), install=install)

    def close_views(self, settle: bool = True) -> int:
        """Close every standing live view opened by this app; returns how many."""
        closed = 0
        for view in self._views.values():
            if not view.closed:
                view.close(settle=settle)
                closed += 1
        self._views.clear()
        return closed

    # ------------------------------------------------------------------ #
    # delegation control (Section 3 / Figure 3)
    # ------------------------------------------------------------------ #

    def pending_delegations(self):
        """Delegations from untrusted peers awaiting this user's approval."""
        return self.peer.pending_delegations()

    def approve_delegation(self, delegation_id: str):
        """Approve one pending delegation."""
        return self.peer.approve_delegation(delegation_id)

    def reject_delegation(self, delegation_id: str):
        """Reject one pending delegation."""
        return self.peer.reject_delegation(delegation_id)
