"""Wepic: the conference picture-sharing application of the paper.

Wepic lets SIGMOD attendees share, download, rate and annotate pictures in a
highly decentralised manner.  The application is "a small set of rules"
running on the WebdamLog system, plus two wrappers (Facebook and email) and a
user interface.  This package reproduces all of it:

* :mod:`repro.wepic.pictures` — the picture data model and synthetic picture
  generation;
* :mod:`repro.wepic.annotations` — ratings, comments and name tags;
* :mod:`repro.wepic.rules` — the canonical Wepic rule set (as rule templates
  instantiated per peer) and the customised variants shown in the paper;
* :mod:`repro.wepic.app` — :class:`WepicApp`, the per-attendee application
  object (upload, select, transfer, annotate, customise rules);
* :mod:`repro.wepic.ranking` — "select and rank photos based on their
  annotations";
* :mod:`repro.wepic.ui` — a headless model of the Web GUI's frames
  (Figures 1 and 3);
* :mod:`repro.wepic.scenario` — the three-peer demo setup of Figure 2
  (Émilien, Jules, the sigmod cloud peer, the SigmodFB group wrapper).
"""

from repro.wepic.pictures import Picture, PictureLibrary, generate_picture, generate_library
from repro.wepic.annotations import Annotation, Rating, Comment, NameTag
from repro.wepic.rules import WepicRules
from repro.wepic.app import WepicApp
from repro.wepic.ranking import PictureRanking, rank_pictures
from repro.wepic.ui import WepicUI
from repro.wepic.scenario import DemoScenario, build_demo_scenario

__all__ = [
    "Picture",
    "PictureLibrary",
    "generate_picture",
    "generate_library",
    "Annotation",
    "Rating",
    "Comment",
    "NameTag",
    "WepicRules",
    "WepicApp",
    "PictureRanking",
    "rank_pictures",
    "WepicUI",
    "DemoScenario",
    "build_demo_scenario",
]
