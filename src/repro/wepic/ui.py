"""A headless model of the Wepic user interface.

The real system exposes a Web GUI (Figures 1 and 3 of the paper).  The
reproduction models the GUI's frames as plain Python objects so scripts,
tests and benchmarks can drive exactly the interactions the demo walks the
audience through:

* Figure 1 — the *Wepic* tab: my pictures, the selected-attendees column and
  the *Attendee pictures* frame;
* Figure 3 — the *Rules* tab: the peer's installed program, the delegations
  received from other peers, and the banner notifying of pending delegations
  ("Julia is sending a rule to Jules").

:meth:`WepicUI.render` produces a textual rendering of the whole screen,
which the quickstart example prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.wepic.app import WepicApp
from repro.wepic.pictures import Picture


@dataclass(frozen=True)
class PictureCard:
    """One thumbnail of the picture grid."""

    picture_id: int
    name: str
    owner: str

    def __str__(self) -> str:
        return f"[{self.picture_id}] {self.name} ({self.owner})"


@dataclass
class WepicFrame:
    """A titled frame of the UI containing a list of text lines."""

    title: str
    lines: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Textual rendering of the frame."""
        body = "\n".join(f"  {line}" for line in self.lines) or "  (empty)"
        return f"--- {self.title} ---\n{body}"


class WepicUI:
    """Headless view over one attendee's :class:`~repro.wepic.app.WepicApp`."""

    def __init__(self, app: WepicApp):
        self.app = app

    # -- Figure 1: the Wepic tab ----------------------------------------- #

    def my_pictures_frame(self) -> WepicFrame:
        """The attendee's own pictures."""
        cards = [PictureCard(p.picture_id, p.name, p.owner)
                 for p in self.app.local_pictures()]
        return WepicFrame(title=f"My pictures ({self.app.name})",
                          lines=[str(card) for card in sorted(cards, key=lambda c: c.picture_id)])

    def selected_attendees_frame(self) -> WepicFrame:
        """The right-hand column listing the highlighted attendees."""
        return WepicFrame(title="Selected attendees",
                          lines=list(self.app.selected_attendees()))

    def attendee_pictures_frame(self) -> WepicFrame:
        """The *Attendee pictures* frame at the bottom of Figure 1."""
        cards = [PictureCard(p.picture_id, p.name, p.owner)
                 for p in self.app.attendee_pictures()]
        return WepicFrame(title="Attendee pictures",
                          lines=[str(card) for card in cards])

    def ranked_pictures_frame(self) -> WepicFrame:
        """The ranked view (feature 5 of the application)."""
        return WepicFrame(title="Ranked pictures",
                          lines=[str(entry) for entry in self.app.ranked_attendee_pictures()])

    def rating_summary_frame(self) -> WepicFrame:
        """The ranking page backed by the standing aggregate live view.

        Unlike :meth:`ranked_pictures_frame` (which recomputes the ranking in
        Python per render) this frame reads the incrementally-maintained
        ``ratingSummary`` view — refreshing it costs a relation read, and the
        maintenance cost was paid as deltas when the ratings arrived.
        Rendering is **read-only**: the frame shows the view the application
        opened with :meth:`~repro.wepic.app.WepicApp.rating_summary_view`
        and renders empty when no view is open (or the app was built from a
        raw peer, without the facade).
        """
        view = (self.app.rating_summary_view(install=False)
                if self.app.handle is not None else None)
        if view is None:
            return WepicFrame(title="Rating summary (live view)")
        rows = sorted(view.rows(), key=lambda row: (-(row[1] or 0), row[0]))
        return WepicFrame(
            title="Rating summary (live view)",
            lines=[f"picture {picture_id}: {average:.2f} stars ({count} ratings)"
                   for picture_id, average, count in rows],
        )

    def filtered_wall_frame(self, owner: str) -> WepicFrame:
        """A per-owner filter page over the attendee-pictures wall.

        Read-only like :meth:`rating_summary_frame`: renders the live view
        previously opened with :meth:`~repro.wepic.app.WepicApp.wall_view`,
        or an empty frame when none is open.
        """
        view = (self.app.wall_view(owner=owner, install=False)
                if self.app.handle is not None else None)
        if view is None:
            return WepicFrame(title=f"Wall of {owner} (live view)")
        return WepicFrame(
            title=f"Wall of {owner} (live view)",
            lines=[f"[{picture_id}] {name}" for picture_id, name in sorted(view.rows())],
        )

    # -- Figure 3: the Rules tab ------------------------------------------ #

    def rules_frame(self) -> WepicFrame:
        """The peer's installed program (its own rules)."""
        return WepicFrame(title=f"Program of {self.app.name}",
                          lines=[f"{rule.rule_id}: {rule}" for rule in self.app.installed_rules()])

    def delegations_frame(self) -> WepicFrame:
        """Rules installed at this peer by remote delegators."""
        installed = self.app.peer.installed_delegations()
        return WepicFrame(title="Delegated rules",
                          lines=[f"from {d.delegator}: {d.rule}" for d in installed])

    def pending_delegations_frame(self) -> WepicFrame:
        """The pending-delegation banner of Figure 3."""
        pending = self.app.pending_delegations()
        return WepicFrame(title="Pending delegations",
                          lines=[p.describe() for p in pending])

    # -- whole screen ------------------------------------------------------- #

    def frames(self) -> Tuple[WepicFrame, ...]:
        """Every frame of the UI, in display order."""
        return (
            self.my_pictures_frame(),
            self.selected_attendees_frame(),
            self.attendee_pictures_frame(),
            self.ranked_pictures_frame(),
            self.rating_summary_frame(),
            self.rules_frame(),
            self.delegations_frame(),
            self.pending_delegations_frame(),
        )

    def render(self) -> str:
        """Textual rendering of the whole Wepic screen."""
        header = f"=== Wepic — peer {self.app.name} ==="
        return "\n".join([header] + [frame.render() for frame in self.frames()])

    def summary(self) -> Dict[str, int]:
        """Counters per frame (used by tests and the Figure-1 benchmark)."""
        return {
            "my_pictures": len(self.my_pictures_frame().lines),
            "selected_attendees": len(self.selected_attendees_frame().lines),
            "attendee_pictures": len(self.attendee_pictures_frame().lines),
            "rating_summary": len(self.rating_summary_frame().lines),
            "rules": len(self.rules_frame().lines),
            "delegated_rules": len(self.delegations_frame().lines),
            "pending_delegations": len(self.pending_delegations_frame().lines),
        }
