"""Dots, compact causal contexts and replicated operations.

A **dot** identifies one operation ever emitted on one replication channel:
the pair ``(origin peer, sequence number)``.  Because each channel has a
single writer (the sending peer), sequence numbers are contiguous per
channel, which makes the receiver's **causal context** — the set of dots it
has already joined — compressible to a contiguous watermark plus a small set
of out-of-order extras, exactly the representation delta-state CRDTs use.

An :class:`Op` is the unit of replication: one dotted operation carrying a
fact insertion, a fact deletion (with the dots it removes — observed-remove
semantics), a delegation install/retract, or a provenance derivation.  Ops
are immutable and JSON-encodable (:mod:`repro.runtime.wire`), and joining
the same op twice is a no-op by construction: the causal context filters
duplicate sequence numbers before any effect is applied.

This module depends only on :mod:`repro.core` and :mod:`repro.provenance`,
so the wire codec and the message layer can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.core.facts import Fact
from repro.core.rules import Rule
from repro.core.schema import RelationSchema
from repro.provenance.graph import Derivation

#: The operation kinds a channel replicates.  ``insert``/``delete`` carry
#: extensional (or provided-intensional) fact updates, ``delegate`` /
#: ``undelegate`` carry the delegation remainders of distributed rules, and
#: ``derivation`` carries one provenance closure entry.
OP_KINDS = ("insert", "delete", "delegate", "undelegate", "derivation")


class Dot(NamedTuple):
    """One operation's identity: ``(origin peer, per-channel sequence number)``."""

    origin: str
    seq: int


@dataclass(frozen=True)
class Op:
    """One dotted, replicated operation.

    ``seq`` is the dot's sequence number (the origin is implied by the
    channel the op travels on).  Exactly the fields of the op's ``kind`` are
    meaningful:

    * ``insert`` — ``fact``;
    * ``delete`` — ``fact`` plus ``removed``, the sequence numbers of the
      insert dots this deletion observed (empty for an out-of-band deletion
      of a fact this channel never inserted);
    * ``delegate`` — ``delegation_id``, ``rule``, ``schemas``;
    * ``undelegate`` — ``delegation_id``;
    * ``derivation`` — ``derivation`` and ``anchor``.
    """

    seq: int
    kind: str
    fact: Optional[Fact] = None
    removed: Tuple[int, ...] = ()
    delegation_id: str = ""
    rule: Optional[Rule] = None
    schemas: Tuple[RelationSchema, ...] = ()
    derivation: Optional[Derivation] = None
    anchor: bool = True

    def dot(self, origin: str) -> Dot:
        """This op's dot on the channel from ``origin``."""
        return Dot(origin, self.seq)


@dataclass
class CausalContext:
    """The compact set of sequence numbers a channel endpoint has seen.

    ``base`` is the contiguous watermark: every sequence number in
    ``1..base`` is contained.  ``extras`` holds the numbers seen out of
    order beyond the watermark; :meth:`add` drains them back into ``base``
    as gaps fill, so the representation stays small under any reordering.
    """

    base: int = 0
    extras: set = field(default_factory=set)

    def __contains__(self, seq: int) -> bool:
        return seq <= self.base or seq in self.extras

    def add(self, seq: int) -> bool:
        """Join one sequence number; ``False`` when it was already contained."""
        if seq in self:
            return False
        if seq == self.base + 1:
            self.base += 1
            while self.base + 1 in self.extras:
                self.base += 1
                self.extras.discard(self.base)
        else:
            self.extras.add(seq)
        return True

    def missing(self, upto: int) -> List[int]:
        """The sequence numbers up to ``upto`` this context has not seen."""
        return [seq for seq in range(self.base + 1, upto + 1)
                if seq not in self.extras]

    def is_complete(self, upto: int) -> bool:
        """``True`` when every sequence number in ``1..upto`` is contained."""
        return self.base >= upto or not self.missing(upto)

    def max_seen(self) -> int:
        """The highest sequence number contained (0 when empty)."""
        return max(self.extras) if self.extras else self.base

    def encode(self) -> Dict[str, object]:
        """JSON-compatible representation (see :func:`CausalContext.decode`)."""
        return {"base": self.base, "extras": sorted(self.extras)}

    @classmethod
    def decode(cls, encoded: Dict[str, object]) -> "CausalContext":
        """Inverse of :meth:`encode`."""
        return cls(base=int(encoded.get("base", 0)),
                   extras=set(int(s) for s in encoded.get("extras", [])))
