"""Delta-state replication of extensional updates (dots + causal contexts).

The reliable in-memory transport delivers every :class:`FactMessage` exactly
once and in order, so the engine's diff-based update protocol (PR 3) never
sees a gap.  A real transport (``repro.net``) breaks all three assumptions:
messages arrive late, duplicated and out of order, and some never arrive at
all.  This package re-ships every cross-peer update as a **join-able delta**
in the style of delta-state CRDTs (Almeida et al.; see SNIPPETS.md's
``DeltaCRDT.py``):

* every operation a peer sends over one channel gets a **dot** — the pair
  ``(origin peer, sequence number)``, contiguous per channel
  (:mod:`repro.replication.dots`);
* the receiver tracks which dots it has seen in a **compact causal context**
  and joins each :class:`~repro.replication.dots.Op` at most once, so
  applying an envelope is idempotent, commutative and order-insensitive
  (:mod:`repro.replication.channel`);
* lost envelopes are repaired by periodic **anti-entropy**: the producer
  advertises its frontier in a digest, the consumer pulls the missing
  sequence numbers, and acknowledges the contiguous frontier so the producer
  can prune its op log (:mod:`repro.replication.state`).

Fact updates, provenance closures and delegation install/retract remainders
all ride the same mechanism, so any interleaving of drop, duplication and
reordering converges to the fixpoint of a reliable run (pinned by
``tests/properties/test_confluence_replication.py``).

Select the mode per deployment with ``system().replication("causal")``; the
``REPRO_REPLICATION`` environment variable picks the default (that is how CI
runs the whole suite once per mode), falling back to ``reliable``.

Only :mod:`~repro.replication.dots` and :mod:`~repro.replication.channel`
are imported here: :mod:`~repro.replication.state` depends on
:mod:`repro.runtime.messages`, which itself imports this package for the op
codec — importing it at package level would cycle.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable selecting the replication mode when the builder does not.
REPLICATION_ENV = "REPRO_REPLICATION"

#: Accepted replication modes: ``reliable`` ships raw FactMessages and trusts
#: the transport; ``causal`` ships dotted delta envelopes with anti-entropy.
REPLICATION_MODES = ("reliable", "causal")

#: Mode used when neither the builder nor the environment chose one.
DEFAULT_REPLICATION_MODE = "reliable"


def resolve_replication_mode(mode: Optional[str] = None) -> str:
    """Resolve the effective replication mode.

    Explicit ``mode`` wins, then the ``REPRO_REPLICATION`` environment
    variable, then :data:`DEFAULT_REPLICATION_MODE`.  Unknown names raise
    ``ValueError``.
    """
    chosen = mode or os.environ.get(REPLICATION_ENV) or DEFAULT_REPLICATION_MODE
    chosen = chosen.strip().lower()
    if chosen not in REPLICATION_MODES:
        raise ValueError(
            f"unknown replication mode {chosen!r}; expected one of "
            f"{', '.join(REPLICATION_MODES)}"
        )
    return chosen


from repro.replication.dots import CausalContext, Dot, Op  # noqa: E402
from repro.replication.channel import ChannelInbox, ChannelOutbox  # noqa: E402

__all__ = [
    "REPLICATION_ENV",
    "REPLICATION_MODES",
    "DEFAULT_REPLICATION_MODE",
    "resolve_replication_mode",
    "CausalContext",
    "Dot",
    "Op",
    "ChannelInbox",
    "ChannelOutbox",
]
