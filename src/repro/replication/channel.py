"""One replicated channel: sender-side outbox, receiver-side inbox.

A **channel** is the directed pair ``origin -> target``.  The origin is the
channel's single writer: every operation it emits gets the next contiguous
sequence number, is appended to a retransmission log, and — for fact
insertions — is remembered as a *live dot* of its fact.  A deletion pops the
fact's live dots and carries them in the op (observed-remove semantics): the
deletion removes exactly the insertions the sender had observed, never a
concurrent re-insertion it had not.

The receiver joins ops through a :class:`~repro.replication.dots.CausalContext`:
a sequence number already contained is a duplicate and has no effect at all,
which is what makes applying an envelope idempotent.  Visibility of a fact is
the non-emptiness of its surviving dot set, so insertions and deletions
commute regardless of arrival order — a deletion whose insert has not arrived
yet leaves a tombstone that silently consumes the insert when it shows up.
The inbox reports only **visibility transitions** (fact appeared / fact
vanished, delegation installed / retracted) as effects, which the runtime
feeds to the engine's ordinary input paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.facts import Fact
from repro.core.rules import Rule
from repro.core.schema import RelationSchema
from repro.provenance.graph import Derivation
from repro.replication.dots import CausalContext, Op

#: Effect tuples an inbox emits, consumed by the runtime:
#: ``("insert", fact)``, ``("delete", fact)``,
#: ``("delegate", delegation_id, rule, schemas)``,
#: ``("undelegate", delegation_id)``, ``("derivation", derivation, anchor)``.
Effect = Tuple


class ChannelOutbox:
    """The sending half of one channel (this peer -> ``target``)."""

    def __init__(self, target: str):
        self.target = target
        #: Highest sequence number assigned so far (the channel's frontier).
        self.seq = 0
        #: Retransmission log: ops not yet acknowledged by the receiver.
        self.log: Dict[int, Op] = {}
        #: Live insert dots per fact (popped by :meth:`delete`).
        self.live: Dict[Fact, Set[int]] = {}
        #: Contiguous prefix the receiver has acknowledged (log pruned to it).
        self.acked = 0
        #: Highest sequence number already handed out for first transmission.
        self.last_sent = 0
        #: Channel state changed since the last persistence snapshot.
        self.dirty = False
        #: The target raised a transport error (unknown peer): stop trying.
        self.unreachable = False

    # -- emitting ops --------------------------------------------------- #

    def _append(self, op: Op) -> Op:
        self.log[op.seq] = op
        self.dirty = True
        return op

    def _next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def insert(self, fact: Fact) -> Optional[Op]:
        """Emit an insert op, or ``None`` when ``fact`` is already live.

        The suppression makes re-sends idempotent at the source: a fact the
        channel already carries (and has not deleted) needs no new dot.
        """
        if fact in self.live:
            return None
        seq = self._next_seq()
        self.live[fact] = {seq}
        return self._append(Op(seq=seq, kind="insert", fact=fact))

    def delete(self, fact: Fact) -> Op:
        """Emit a delete op removing the fact's observed live dots.

        With no live dots the op is an *out-of-band* deletion (empty
        ``removed``): the receiver applies it directly, covering deletions of
        facts that reached it through other means (e.g. its own base facts).
        """
        removed = tuple(sorted(self.live.pop(fact, ())))
        return self._append(Op(seq=self._next_seq(), kind="delete",
                               fact=fact, removed=removed))

    def delegate(self, delegation_id: str, rule: Rule,
                 schemas: Tuple[RelationSchema, ...]) -> Op:
        """Emit a delegation-install op."""
        return self._append(Op(seq=self._next_seq(), kind="delegate",
                               delegation_id=delegation_id, rule=rule,
                               schemas=tuple(schemas)))

    def undelegate(self, delegation_id: str) -> Op:
        """Emit a delegation-retract op."""
        return self._append(Op(seq=self._next_seq(), kind="undelegate",
                               delegation_id=delegation_id))

    def derivation(self, derivation: Derivation, anchor: bool) -> Op:
        """Emit a provenance-derivation op."""
        return self._append(Op(seq=self._next_seq(), kind="derivation",
                               derivation=derivation, anchor=anchor))

    # -- transmission and anti-entropy ---------------------------------- #

    @property
    def frontier(self) -> int:
        """The highest sequence number this channel has assigned."""
        return self.seq

    def take_unsent(self) -> List[Op]:
        """Ops awaiting first transmission (advances the sent watermark)."""
        if self.last_sent >= self.seq:
            return []
        ops = [self.log[s] for s in range(self.last_sent + 1, self.seq + 1)
               if s in self.log]
        self.last_sent = self.seq
        return ops

    def ops_for(self, want: Iterable[int]) -> List[Op]:
        """Answer a pull: the requested ops still in the log, by sequence.

        Sequence numbers the log no longer holds were acknowledged by this
        very receiver and pruned — a stale duplicate pull — and are skipped.
        """
        return [self.log[s] for s in sorted(set(want)) if s in self.log]

    def ack(self, acked: int) -> None:
        """Record the receiver's contiguous frontier; prune the log to it."""
        if acked <= self.acked:
            return
        self.acked = min(acked, self.seq)
        for seq in [s for s in self.log if s <= self.acked]:
            del self.log[seq]
        self.dirty = True

    @property
    def unacked(self) -> bool:
        """``True`` while the receiver has not acknowledged the frontier."""
        return not self.unreachable and self.acked < self.seq


class ChannelInbox:
    """The receiving half of one channel (``origin`` -> this peer)."""

    def __init__(self, origin: str):
        self.origin = origin
        #: Sequence numbers already joined (duplicates have no effect).
        self.cc = CausalContext()
        #: Surviving insert dots per visible fact.
        self.visible: Dict[Fact, Set[int]] = {}
        #: Dots removed by a deletion whose insert op has not arrived yet.
        self.tombstoned: Set[int] = set()
        #: Last-writer-wins watermark per delegation id (sender order = seq).
        self.delegation_seq: Dict[str, int] = {}
        #: Highest frontier the origin has advertised (envelope or digest).
        self.advertised = 0
        #: Contiguous frontier last acknowledged back to the origin.
        self.acked = 0
        #: Inbox state changed since the last persistence snapshot.
        self.dirty = False

    def apply(self, op: Op) -> List[Effect]:
        """Join one op; returns the visibility-transition effects (if any)."""
        if not self.cc.add(op.seq):
            return []
        self.dirty = True
        if op.kind == "insert":
            if op.seq in self.tombstoned:
                self.tombstoned.discard(op.seq)
                return []
            dots = self.visible.setdefault(op.fact, set())
            dots.add(op.seq)
            return [("insert", op.fact)] if len(dots) == 1 else []
        if op.kind == "delete":
            if not op.removed:
                # Out-of-band deletion: no dot of this channel to remove.
                return [("delete", op.fact)]
            dots = self.visible.get(op.fact)
            for seq in op.removed:
                if dots is not None and seq in dots:
                    dots.discard(seq)
                else:
                    self.tombstoned.add(seq)
            if dots is not None and not dots:
                del self.visible[op.fact]
                return [("delete", op.fact)]
            return []
        if op.kind == "delegate":
            if op.seq > self.delegation_seq.get(op.delegation_id, 0):
                self.delegation_seq[op.delegation_id] = op.seq
                return [("delegate", op.delegation_id, op.rule, op.schemas)]
            return []
        if op.kind == "undelegate":
            if op.seq > self.delegation_seq.get(op.delegation_id, 0):
                self.delegation_seq[op.delegation_id] = op.seq
                return [("undelegate", op.delegation_id)]
            return []
        if op.kind == "derivation":
            return [("derivation", op.derivation, op.anchor)]
        raise ValueError(f"unknown op kind {op.kind!r}")

    def apply_all(self, ops: Iterable[Op]) -> List[Effect]:
        """Join a batch in sequence order (deterministic effect order)."""
        effects: List[Effect] = []
        for op in sorted(ops, key=lambda o: o.seq):
            effects.extend(self.apply(op))
        return effects

    def observe_frontier(self, frontier: int) -> None:
        """Record the origin's advertised frontier (envelope or digest)."""
        if frontier > self.advertised:
            self.advertised = frontier
            self.dirty = True

    def missing(self) -> List[int]:
        """Sequence numbers missing up to the advertised frontier."""
        return self.cc.missing(self.advertised)

    def is_complete(self) -> bool:
        """``True`` when every advertised sequence number was joined."""
        return self.cc.is_complete(self.advertised)
