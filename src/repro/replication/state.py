"""Per-peer replication state: channels, anti-entropy, persistence.

:class:`ReplicationState` is what a causal-mode peer owns.  It sits between
the peer's engine and the transport:

* **outbound** — the fact/delegation/provenance messages a stage produces are
  converted into dotted ops on per-target :class:`ChannelOutbox`\\ es
  (:meth:`encode_outgoing`), and :meth:`flush` turns the unsent ops into
  :class:`~repro.runtime.messages.DeltaEnvelopeMessage`\\ s — plus the
  anti-entropy control traffic: a digest when a channel stays unacknowledged,
  answers to pulls, and the acks/pulls queued by the inbound side;
* **inbound** — envelopes are joined through per-origin
  :class:`ChannelInbox`\\ es (:meth:`apply_envelope`); the resulting
  visibility transitions are returned for the peer to feed into the engine's
  ordinary input paths.  Gaps trigger a pull (with backoff — the op may still
  be in flight), completeness triggers an ack so the producer can prune.

The protocol terminates: once every channel is acknowledged up to its
frontier nobody sends anything, so the schedulers' quiescence detection (and
``converge()``) keeps working — a causal system simply refuses to settle
while any channel still has unacknowledged ops.

State is persisted at stage boundaries through the storage backend's meta
API (kind ``"replication"``, keys ``out:<target>`` / ``in:<origin>``) inside
the same transaction as the engine's stage commit, so a crashed peer reopens
with its dots intact: it neither reuses sequence numbers nor re-applies ops
it already joined, and whatever the crash lost in flight is repaired by
anti-entropy.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.facts import Fact
from repro.replication.channel import ChannelInbox, ChannelOutbox, Effect
from repro.replication.dots import CausalContext
from repro.runtime import wire
from repro.runtime.messages import (
    DelegationInstallMessage,
    DelegationRetractMessage,
    DeltaEnvelopeMessage,
    FactMessage,
    Message,
    ReplicationAckMessage,
    ReplicationDigestMessage,
    ReplicationPullMessage,
)

#: Meta kind under which channel state is persisted (see ``repro.store``).
META_KIND = "replication"

#: Stages between digests of an unacknowledged channel.
DEFAULT_DIGEST_INTERVAL = 4

#: Stages to wait before re-pulling the same gap (the op may be in flight).
DEFAULT_PULL_PATIENCE = 2


class ReplicationState:
    """The causal-replication side of one peer."""

    def __init__(self, peer: str,
                 digest_interval: int = DEFAULT_DIGEST_INTERVAL,
                 pull_patience: int = DEFAULT_PULL_PATIENCE,
                 event_log=None):
        self.peer = peer
        self.digest_interval = digest_interval
        self.pull_patience = pull_patience
        #: Optional :class:`repro.net.events.NetEventLog`-compatible sink
        #: (anything with ``emit(action, node, ts, **fields)``): joins,
        #: digests, pulls and acks are recorded for replayable schedules.
        self.event_log = event_log
        self.outboxes: Dict[str, ChannelOutbox] = {}
        self.inboxes: Dict[str, ChannelInbox] = {}
        #: Control messages (acks, pulls, pull answers) queued for the next flush.
        self._queued: List[Message] = []
        #: Replication ticks: one per local stage (drives digests and backoff).
        self.tick = 0
        self._last_digest: Dict[str, int] = {}
        self._pull_after: Dict[str, int] = {}
        #: Persisted channel keys to delete at the next persistence point.
        self._dropped_keys: List[str] = []
        self.counters: Dict[str, int] = {
            "envelopes_sent": 0,
            "envelopes_applied": 0,
            "ops_sent": 0,
            "ops_applied": 0,
            "digests_sent": 0,
            "pulls_sent": 0,
            "acks_sent": 0,
        }

    # ------------------------------------------------------------------ #
    # channel accessors
    # ------------------------------------------------------------------ #

    def outbox(self, target: str) -> ChannelOutbox:
        """The outbox of the channel to ``target`` (created on first use)."""
        box = self.outboxes.get(target)
        if box is None:
            box = self.outboxes[target] = ChannelOutbox(target)
        return box

    def inbox(self, origin: str) -> ChannelInbox:
        """The inbox of the channel from ``origin`` (created on first use)."""
        box = self.inboxes.get(origin)
        if box is None:
            box = self.inboxes[origin] = ChannelInbox(origin)
        return box

    def drop_channel(self, peer: str) -> None:
        """Forget both channel halves shared with a removed peer."""
        if self.outboxes.pop(peer, None) is not None:
            self._dropped_keys.append(f"out:{peer}")
        if self.inboxes.pop(peer, None) is not None:
            self._dropped_keys.append(f"in:{peer}")
        self._last_digest.pop(peer, None)
        self._pull_after.pop(peer, None)
        self._queued = [m for m in self._queued if m.recipient != peer]

    def mark_unreachable(self, target: str) -> None:
        """Stop replicating to a target the transport cannot deliver to.

        Mirrors the reliable-mode behaviour for wrapper-only pseudo-peers
        (their messages are counted but silently undeliverable): without
        this, an outbox to such a target would stay unacknowledged forever
        and the peer would never look quiescent.
        """
        box = self.outboxes.get(target)
        if box is not None:
            box.unreachable = True
        self._queued = [m for m in self._queued if m.recipient != target]

    # ------------------------------------------------------------------ #
    # outbound: stage outputs -> ops -> envelopes
    # ------------------------------------------------------------------ #

    def encode_outgoing(self, messages: Iterable[Message]) -> List[Message]:
        """Absorb a stage's messages into channel ops.

        Fact updates, delegation installs and retractions become dotted ops
        on the target's outbox (shipped by the next :meth:`flush`); message
        kinds replication does not manage (e.g. peer-join announcements) are
        returned for direct transmission.
        """
        passthrough: List[Message] = []
        for message in messages:
            if isinstance(message, FactMessage):
                box = self.outbox(message.recipient)
                for fact in sorted(message.inserted, key=str):
                    box.insert(fact)
                for fact in sorted(message.deleted, key=str):
                    box.delete(fact)
                for derivation in message.derivations:
                    box.derivation(derivation,
                                   anchor=derivation.fact in message.inserted)
            elif isinstance(message, DelegationInstallMessage):
                self.outbox(message.recipient).delegate(
                    message.delegation_id, message.rule, message.schemas)
            elif isinstance(message, DelegationRetractMessage):
                self.outbox(message.recipient).undelegate(message.delegation_id)
            else:
                passthrough.append(message)
        return passthrough

    def flush(self) -> List[Message]:
        """One replication tick: envelopes for new ops, digests, queued control."""
        self.tick += 1
        outgoing: List[Message] = []
        for target in sorted(self.outboxes):
            box = self.outboxes[target]
            if box.unreachable:
                continue
            ops = box.take_unsent()
            if ops:
                outgoing.append(DeltaEnvelopeMessage(
                    sender=self.peer, recipient=target,
                    ops=tuple(ops), frontier=box.frontier,
                ))
                # An envelope advertises the frontier, so it paces as a digest.
                self._last_digest[target] = self.tick
                self.counters["envelopes_sent"] += 1
                self.counters["ops_sent"] += len(ops)
            elif box.unacked and (self.tick - self._last_digest.get(target, 0)
                                  >= self.digest_interval):
                outgoing.append(ReplicationDigestMessage(
                    sender=self.peer, recipient=target, frontier=box.frontier,
                ))
                self._last_digest[target] = self.tick
                self.counters["digests_sent"] += 1
                self._emit("digest", target=target, frontier=box.frontier)
        outgoing.extend(self._queued)
        self._queued = []
        return outgoing

    # ------------------------------------------------------------------ #
    # inbound: envelopes, digests, pulls, acks
    # ------------------------------------------------------------------ #

    def apply_envelope(self, message: DeltaEnvelopeMessage) -> List[Effect]:
        """Join an envelope; returns the engine effects of new ops."""
        box = self.inbox(message.sender)
        top = max([message.frontier] + [op.seq for op in message.ops])
        box.observe_frontier(top)
        effects = box.apply_all(message.ops)
        self.counters["envelopes_applied"] += 1
        self.counters["ops_applied"] += len(message.ops)
        self._emit("join", origin=message.sender, ops=len(message.ops),
                   effects=len(effects))
        self._ack_or_pull(message.sender, box, force_pull=False)
        return effects

    def on_digest(self, origin: str, frontier: int) -> None:
        """Handle a producer digest: pull the gaps or (re-)ack completeness."""
        box = self.inbox(origin)
        box.observe_frontier(frontier)
        self._ack_or_pull(origin, box, force_pull=True, force_ack=True)

    def on_pull(self, requester: str, want: Tuple[int, ...]) -> None:
        """Answer a consumer pull from the op log (queued for the next flush)."""
        box = self.outboxes.get(requester)
        if box is None:
            return
        ops = box.ops_for(want)
        if ops:
            self._queued.append(DeltaEnvelopeMessage(
                sender=self.peer, recipient=requester,
                ops=tuple(ops), frontier=box.frontier,
            ))
            self.counters["envelopes_sent"] += 1
            self.counters["ops_sent"] += len(ops)

    def on_ack(self, origin: str, acked: int) -> None:
        """Record a consumer ack: the outbox prunes its log."""
        box = self.outboxes.get(origin)
        if box is not None:
            box.ack(acked)

    def _ack_or_pull(self, origin: str, box: ChannelInbox,
                     force_pull: bool, force_ack: bool = False) -> None:
        if box.is_complete():
            # Ack when the contiguous frontier advanced — or unconditionally
            # on a digest, because the producer digesting a complete channel
            # means the previous ack was lost.
            if box.cc.base > box.acked or (force_ack and box.cc.base > 0):
                box.acked = box.cc.base
                self._queued.append(ReplicationAckMessage(
                    sender=self.peer, recipient=origin, acked=box.cc.base,
                ))
                self.counters["acks_sent"] += 1
            return
        if force_pull or self.tick >= self._pull_after.get(origin, 0):
            want = tuple(box.missing())
            self._queued.append(ReplicationPullMessage(
                sender=self.peer, recipient=origin, want=want,
            ))
            self._pull_after[origin] = self.tick + self.pull_patience
            self.counters["pulls_sent"] += 1
            self._emit("pull", origin=origin, want=len(want))

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def needs_attention(self) -> bool:
        """``True`` while replication still has work for the next stage.

        Event-driven schedulers fold this into the peer's ``needs_stage``:
        unsent ops, unacknowledged channels (digests due), queued control
        messages and incomplete inboxes all keep the peer active, which is
        what forces the anti-entropy protocol to run to completion before
        the system can look converged.
        """
        if self._queued:
            return True
        for box in self.outboxes.values():
            if not box.unreachable and (box.last_sent < box.seq or box.unacked):
                return True
        for box in self.inboxes.values():
            if not box.is_complete() or box.cc.base > box.acked:
                return True
        return False

    # ------------------------------------------------------------------ #
    # persistence (stage-boundary meta records)
    # ------------------------------------------------------------------ #

    def persist(self, backend) -> None:
        """Write dirty channel state through the backend's meta API.

        Called by the peer *before* the engine's stage commit, so the dots
        and the facts they delivered become durable in one transaction.
        """
        for key in self._dropped_keys:
            backend.delete_meta(META_KIND, key)
        self._dropped_keys = []
        for target, box in self.outboxes.items():
            if box.dirty:
                backend.save_meta(META_KIND, f"out:{target}", _encode_outbox(box))
                box.dirty = False
        for origin, box in self.inboxes.items():
            if box.dirty:
                backend.save_meta(META_KIND, f"in:{origin}", _encode_inbox(box))
                box.dirty = False

    def restore(self, backend) -> None:
        """Rebuild channels from persisted meta records (crash recovery).

        Restored outboxes reset their sent watermark to the acknowledged
        frontier: whatever was in flight at the crash may be lost, so every
        unacknowledged op is retransmitted — the receivers' causal contexts
        absorb the duplicates.
        """
        for key, payload in backend.load_meta(META_KIND):
            if key.startswith("out:"):
                self.outboxes[key[4:]] = _decode_outbox(key[4:], payload)
            elif key.startswith("in:"):
                self.inboxes[key[3:]] = _decode_inbox(key[3:], payload)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _emit(self, action: str, **fields) -> None:
        if self.event_log is not None:
            self.event_log.emit(action, self.peer, float(self.tick), **fields)


# --------------------------------------------------------------------------- #
# channel serialisation (JSON-compatible, via the wire codecs)
# --------------------------------------------------------------------------- #

def _encode_outbox(box: ChannelOutbox) -> str:
    return json.dumps({
        "seq": box.seq,
        "acked": box.acked,
        "log": [wire.encode_op(box.log[s]) for s in sorted(box.log)],
        "live": [[wire.encode_fact(fact), sorted(seqs)]
                 for fact, seqs in sorted(box.live.items(), key=lambda e: str(e[0]))],
    })


def _decode_outbox(target: str, encoded: str) -> ChannelOutbox:
    payload = json.loads(encoded)
    box = ChannelOutbox(target)
    box.seq = int(payload.get("seq", 0))
    box.acked = int(payload.get("acked", 0))
    for encoded in payload.get("log", []):
        op = wire.decode_op(encoded)
        box.log[op.seq] = op
    for encoded_fact, seqs in payload.get("live", []):
        box.live[wire.decode_fact(encoded_fact)] = set(int(s) for s in seqs)
    # Everything unacknowledged retransmits: in-flight messages died with us.
    box.last_sent = box.acked
    return box


def _encode_inbox(box: ChannelInbox) -> str:
    return json.dumps({
        "cc": box.cc.encode(),
        "visible": [[wire.encode_fact(fact), sorted(seqs)]
                    for fact, seqs in sorted(box.visible.items(),
                                             key=lambda e: str(e[0]))],
        "tombstoned": sorted(box.tombstoned),
        "delegation_seq": dict(box.delegation_seq),
        "advertised": box.advertised,
        "acked": box.acked,
    })


def _decode_inbox(origin: str, encoded: str) -> ChannelInbox:
    payload = json.loads(encoded)
    box = ChannelInbox(origin)
    box.cc = CausalContext.decode(payload.get("cc", {}))
    for encoded_fact, seqs in payload.get("visible", []):
        box.visible[wire.decode_fact(encoded_fact)] = set(int(s) for s in seqs)
    box.tombstoned = set(int(s) for s in payload.get("tombstoned", []))
    box.delegation_seq = {str(k): int(v)
                          for k, v in payload.get("delegation_seq", {}).items()}
    box.advertised = int(payload.get("advertised", 0))
    box.acked = int(payload.get("acked", 0))
    return box
