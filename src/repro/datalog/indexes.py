"""Join support for the datalog evaluators.

Evaluation of a rule body is a left-to-right sequence of *matches*: each body
atom is matched against the tuples of its predicate under the bindings
accumulated so far.  :class:`RelationIndex` provides hash lookups on the
bound positions so that a match does not need to scan the whole relation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.datalog.program import Database, DatalogAtom, DatalogTerm, Var

#: Bindings accumulated while evaluating a rule body.
Bindings = Dict[Var, object]


class RelationIndex:
    """Hash index over one relation keyed by a subset of positions."""

    def __init__(self, rows: Iterable[Tuple], positions: Tuple[int, ...]):
        self.positions = positions
        self._buckets: Dict[Tuple, List[Tuple]] = {}
        self._count = 0
        for row in rows:
            self.add(row)

    def add(self, row: Tuple) -> None:
        """Add one row to the index (callers must not add duplicates)."""
        key = tuple(row[i] for i in self.positions)
        self._buckets.setdefault(key, []).append(row)
        self._count += 1

    def lookup(self, key: Tuple) -> List[Tuple]:
        """Rows whose indexed positions equal ``key``."""
        return self._buckets.get(tuple(key), [])

    def __len__(self) -> int:
        return self._count


class IndexPool:
    """Cache of :class:`RelationIndex` instances over one database.

    Indexes are keyed by ``(predicate, positions)``, built lazily from the
    database's current contents and maintained incrementally afterwards:
    callers notify the pool of every newly inserted row via :meth:`add_row`,
    so the pool stays valid across fixpoint iterations instead of being
    rebuilt per pass.
    """

    def __init__(self, database: Database):
        self._database = database
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], RelationIndex] = {}
        self._by_predicate: Dict[str, List[RelationIndex]] = {}

    def index(self, predicate: str, positions: Tuple[int, ...]) -> RelationIndex:
        """Return (building if necessary) the index on ``positions`` of ``predicate``."""
        key = (predicate, positions)
        existing = self._indexes.get(key)
        if existing is None:
            existing = RelationIndex(self._database.relation(predicate), positions)
            self._indexes[key] = existing
            self._by_predicate.setdefault(predicate, []).append(existing)
        return existing

    def add_row(self, predicate: str, row: Tuple) -> None:
        """Maintain every cached index of ``predicate`` after an insertion.

        Call exactly once per row that was actually added to the database
        (i.e. when ``database.add`` returned ``True``), so buckets never hold
        duplicates.
        """
        for index in self._by_predicate.get(predicate, ()):
            index.add(row)

    def invalidate(self) -> None:
        """Drop every cached index (call after non-insert database changes)."""
        self._indexes.clear()
        self._by_predicate.clear()


def plan_body_order(body: Tuple[DatalogAtom, ...], database: Database,
                    delta_predicate: Optional[str] = None) -> Optional[Tuple[int, ...]]:
    """Greedy cheap-first ordering of a rule body, as a tuple of body indexes.

    The order keeps a delta-restricted occurrence first (the delta is usually
    far smaller than its full relation), then repeatedly picks the smallest
    remaining positive relation, interleaving each negated literal as soon as
    every one of its variables is bound.  Relative order of occurrences of the
    same predicate is preserved, which the delta bookkeeping of
    :func:`repro.datalog.naive.evaluate_rule` relies on.

    Returns ``None`` when the written order is already the chosen order, so
    callers can skip rebuilding the rule.
    """
    total = len(body)
    if total < 2:
        return None
    order: List[int] = []
    remaining = list(range(total))
    bound: Set[Var] = set()

    def place(position: int) -> None:
        order.append(position)
        remaining.remove(position)
        if not body[position].negated:
            bound.update(body[position].variables())

    if delta_predicate is not None:
        for position in remaining:
            literal = body[position]
            if not literal.negated and literal.predicate == delta_predicate:
                place(position)
                break

    def prior_occurrences_placed(position: int) -> bool:
        predicate = body[position].predicate
        return all(
            body[other].predicate != predicate or body[other].negated
            for other in remaining
            if other < position
        )

    while remaining:
        ready_negations = [
            position for position in remaining
            if body[position].negated
            and all(var in bound for var in body[position].variables())
        ]
        if ready_negations:
            place(ready_negations[0])
            continue
        positives = [
            position for position in remaining
            if not body[position].negated and prior_occurrences_placed(position)
        ]
        if not positives:
            return None
        place(min(positives, key=lambda p: (database.size(body[p].predicate), p)))

    chosen = tuple(order)
    if chosen == tuple(range(total)):
        return None
    return chosen


def match_atom(atom: DatalogAtom, rows_source: Database, bindings: Bindings,
               pool: Optional[IndexPool] = None,
               rows_override: Optional[Iterable[Tuple]] = None) -> Iterator[Bindings]:
    """Yield every extension of ``bindings`` that matches ``atom`` against the database.

    Parameters
    ----------
    atom:
        A positive atom.
    rows_source:
        Database supplying tuples of ``atom.predicate``.
    bindings:
        Bindings accumulated from earlier body literals; not mutated.
    pool:
        Optional :class:`IndexPool`; when provided and at least one position
        of the atom is bound, a hash index is used instead of a scan.
    rows_override:
        When given, match against these rows instead of the database (used by
        seminaive evaluation to restrict one atom to the delta relation).
    """
    if atom.negated:
        raise ValueError("match_atom expects a positive atom")

    bound_positions: List[int] = []
    bound_key: List[object] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Var):
            if term in bindings:
                bound_positions.append(position)
                bound_key.append(bindings[term])
        else:
            bound_positions.append(position)
            bound_key.append(term)

    if rows_override is not None:
        candidate_rows: Iterable[Tuple] = rows_override
    elif pool is not None and bound_positions:
        index = pool.index(atom.predicate, tuple(bound_positions))
        candidate_rows = index.lookup(tuple(bound_key))
    else:
        candidate_rows = rows_source.relation(atom.predicate)

    for row in candidate_rows:
        if len(row) != atom.arity:
            continue
        extended = dict(bindings)
        matched = True
        for term, value in zip(atom.terms, row):
            if isinstance(term, Var):
                existing = extended.get(term, _MISSING)
                if existing is _MISSING:
                    extended[term] = value
                elif existing != value or type(existing) is not type(value):
                    matched = False
                    break
            else:
                if term != value or type(term) is not type(value):
                    matched = False
                    break
        if matched:
            yield extended


class _Missing:
    """Sentinel distinct from any user value (including ``None``)."""

    __repr__ = lambda self: "<missing>"  # noqa: E731  pragma: no cover


_MISSING = _Missing()


def negated_match_exists(atom: DatalogAtom, database: Database, bindings: Bindings,
                         pool: Optional[IndexPool] = None) -> bool:
    """``True`` when the (negated) atom has at least one match under ``bindings``.

    All variables of the atom are expected to be bound (safety guarantees
    this); any unbound variable is treated existentially.
    """
    positive = DatalogAtom(atom.predicate, atom.terms, False)
    for _ in match_atom(positive, database, bindings, pool):
        return True
    return False
