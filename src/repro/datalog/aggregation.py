"""Group-by aggregation for rule heads.

Aggregate rules have heads whose positions may be aggregate terms, e.g.::

    picture_count(?Owner, count(?Id)) :- pictures(?Id, ?Name, ?Owner)

Grouping is on the non-aggregated head variables.  Aggregates are applied to
the *set* of derived ground heads of the rule (duplicates are eliminated
first, consistent with set semantics), after the rule body has been fully
evaluated; recursion through aggregation is not supported, matching standard
stratified-aggregation semantics.

The Wepic application uses aggregation for its "select and rank photos based
on their annotations" feature (average rating, comment counts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datalog.program import AggregateTerm, DatalogAtom, DatalogRule, Var


class Aggregate(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"

    @classmethod
    def from_name(cls, name: str) -> "Aggregate":
        """Look up an aggregate by its lowercase name."""
        try:
            return cls(name.lower())
        except ValueError as exc:
            raise ValueError(f"unknown aggregate function {name!r}") from exc


@dataclass(frozen=True)
class AggregateSpec:
    """A fully-resolved aggregate: which function over which head position."""

    position: int
    function: Aggregate
    variable: Var


def compute_aggregate(function: Aggregate, values: Sequence) -> object:
    """Apply one aggregate function to a sequence of values.

    ``COUNT`` counts the values; the numeric aggregates return ``None`` on an
    empty input.  This is the single evaluation point shared by rule-head
    aggregation, :func:`aggregate_relation` and the live-view read path.
    """
    if function is Aggregate.COUNT:
        return len(values)
    numeric = list(values)
    if not numeric:
        return None
    if function is Aggregate.SUM:
        return sum(numeric)
    if function is Aggregate.MIN:
        return min(numeric)
    if function is Aggregate.MAX:
        return max(numeric)
    if function is Aggregate.AVG:
        return sum(numeric) / len(numeric)
    raise ValueError(f"unsupported aggregate {function}")  # pragma: no cover


#: Backwards-compatible alias of :func:`compute_aggregate` (pre-public name).
_compute = compute_aggregate


def make_aggregate_rule(head: DatalogAtom, body: Sequence[DatalogAtom],
                        aggregates: Dict[int, Tuple[str, Var]]) -> DatalogRule:
    """Build an aggregate rule.

    ``aggregates`` maps head positions to ``(function_name, variable)``;
    the head atom should carry the aggregated variable at those positions
    (it is replaced during evaluation).
    """
    specs = tuple(
        (position, AggregateTerm(Aggregate.from_name(name).value, var))
        for position, (name, var) in sorted(aggregates.items())
    )
    return DatalogRule(head=head, body=tuple(body), head_aggregates=specs)


def apply_head_aggregates(rule: DatalogRule,
                          derived_heads: Iterable[DatalogAtom]) -> List[DatalogAtom]:
    """Collapse the derived ground heads of an aggregate rule into grouped results.

    ``derived_heads`` are the ground instantiations of the head obtained by
    evaluating the body *without* applying aggregation (the aggregate
    positions therefore hold the raw values of the aggregated variables).
    """
    if not rule.head_aggregates:
        return list(derived_heads)

    group_positions = rule.group_positions()

    groups: Dict[Tuple, List[Tuple]] = {}
    seen_rows = set()
    for head in derived_heads:
        row = head.terms
        if row in seen_rows:
            continue
        seen_rows.add(row)
        key = tuple(row[i] for i in group_positions)
        groups.setdefault(key, []).append(row)

    results: List[DatalogAtom] = []
    for key, rows in groups.items():
        output = [None] * rule.head.arity
        for slot, index in enumerate(group_positions):
            output[index] = key[slot]
        for position, term in rule.head_aggregates:
            function = Aggregate.from_name(term.function)
            values = [row[position] for row in rows]
            output[position] = compute_aggregate(function, values)
        results.append(DatalogAtom(rule.head.predicate, tuple(output)))
    return results


def aggregate_relation(rows: Iterable[Tuple], group_by: Sequence[int],
                       aggregates: Sequence[Tuple[int, Aggregate]]) -> List[Tuple]:
    """Standalone group-by over plain tuples.

    Used by the Wepic ranking module and by the benchmark harness to compute
    summary tables without going through a rule.

    Parameters
    ----------
    rows:
        Input tuples.
    group_by:
        Positions forming the group key (kept in the output, in order).
    aggregates:
        ``(position, function)`` pairs computed per group and appended to the
        output row after the group key.
    """
    groups: Dict[Tuple, List[Tuple]] = {}
    for row in rows:
        key = tuple(row[i] for i in group_by)
        groups.setdefault(key, []).append(row)
    output: List[Tuple] = []
    for key, members in groups.items():
        aggregated = tuple(
            compute_aggregate(function, [member[position] for member in members])
            for position, function in aggregates
        )
        output.append(key + aggregated)
    return output
