"""A from-scratch datalog substrate.

The original WebdamLog system runs each peer's local fixpoint on top of the
Bud (Bloom) datalog engine.  This package is the reproduction's equivalent
substrate: a small but complete datalog evaluator with

* naive and seminaive bottom-up evaluation (:mod:`repro.datalog.naive`,
  :mod:`repro.datalog.seminaive`),
* predicate dependency analysis and stratified negation
  (:mod:`repro.datalog.stratification`),
* group-by aggregation (:mod:`repro.datalog.aggregation`), and
* hash-index assisted joins (:mod:`repro.datalog.indexes`).

It is intentionally independent of the WebdamLog-specific term model: a
predicate is just a name, a tuple is a tuple of plain Python values, and a
variable is a :class:`~repro.datalog.program.Var`.  The WebdamLog engine in
:mod:`repro.core` reuses the stratification machinery and mirrors the
seminaive delta discipline, while this package is also usable (and
benchmarked) on its own.
"""

from repro.datalog.program import Var, DatalogAtom, DatalogRule, DatalogProgram, Database
from repro.datalog.naive import NaiveEvaluator
from repro.datalog.seminaive import SeminaiveEvaluator
from repro.datalog.stratification import DependencyGraph, stratify, StratificationError
from repro.datalog.aggregation import Aggregate, AggregateSpec

__all__ = [
    "Var",
    "DatalogAtom",
    "DatalogRule",
    "DatalogProgram",
    "Database",
    "NaiveEvaluator",
    "SeminaiveEvaluator",
    "DependencyGraph",
    "stratify",
    "StratificationError",
    "Aggregate",
    "AggregateSpec",
]
