"""Seminaive bottom-up evaluation.

Seminaive evaluation avoids rederiving the same facts over and over by
restricting, at each iteration, one body occurrence of a recursive predicate
to the *delta* (the facts newly derived in the previous iteration).  For
non-recursive predicates and the first iteration it degenerates to the naive
algorithm.

This is the evaluator the WebdamLog engine uses for each peer's local
fixpoint, mirroring the role of the Bud engine in the original system.  The
``ENGINE`` benchmark compares it against :class:`~repro.datalog.naive.NaiveEvaluator`
on transitive-closure and same-generation workloads.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.datalog.indexes import IndexPool, plan_body_order
from repro.datalog.naive import EvaluationStats, evaluate_rule
from repro.datalog.program import Database, DatalogAtom, DatalogProgram, DatalogRule
from repro.datalog.stratification import DependencyGraph, stratify
from repro.planner import resolve_planner_mode


def _planned_rule(rule: DatalogRule, database: Database,
                  delta_predicate: Optional[str] = None) -> DatalogRule:
    """``rule`` with its body reordered by :func:`plan_body_order`.

    Returns the original rule unchanged when the written order already wins.
    Safety of the reordered rule follows from the planner only emitting a
    negation once its variables are bound by earlier positives.
    """
    order = plan_body_order(rule.body, database, delta_predicate=delta_predicate)
    if order is None:
        return rule
    body = tuple(rule.body[position] for position in order)
    return DatalogRule(rule.head, body, rule.head_aggregates)


class SeminaiveEvaluator:
    """Stratified seminaive fixpoint evaluation.

    ``planner`` selects body ordering: ``"off"`` evaluates bodies in written
    order, any other mode (see :mod:`repro.planner`) reorders each body by
    estimated cost — delta literal first, then smallest relations.  Defaults
    to the ``REPRO_PLANNER`` environment knob.
    """

    def __init__(self, program: DatalogProgram, planner: Optional[str] = None):
        program.check_safety()
        self.program = program
        self._strata = stratify(program)
        self._idb = program.idb_predicates()
        self._planner_mode = resolve_planner_mode(planner)

    def evaluate(self, database: Database) -> EvaluationStats:
        """Run the program to fixpoint, mutating ``database`` in place."""
        stats = EvaluationStats()
        for stratum_rules in self._strata:
            stats.merge(self._fixpoint_stratum(stratum_rules, database))
        return stats

    def run(self, database: Database) -> Database:
        """Evaluate on a copy of ``database`` and return the augmented copy."""
        result = database.copy()
        self.evaluate(result)
        return result

    # ------------------------------------------------------------------ #

    def _fixpoint_stratum(self, rules: List[DatalogRule], database: Database) -> EvaluationStats:
        stats = EvaluationStats()
        stratum_idb: Set[str] = {r.head.predicate for r in rules}

        # One pool for the whole stratum: indexes are built lazily and then
        # maintained from the delta (every accepted insertion is pushed into
        # the cached indexes) instead of being rebuilt every iteration.
        pool = IndexPool(database)

        reorder = self._planner_mode != "off"

        # --- iteration 0: naive pass over all rules --------------------- #
        stats.iterations += 1
        delta: Dict[str, Set[Tuple]] = {}
        for r in rules:
            stats.rule_firings += 1
            planned = _planned_rule(r, database) if reorder else r
            for head in evaluate_rule(planned, database, pool):
                if database.add_atom(head):
                    stats.derived_facts += 1
                    pool.add_row(head.predicate, head.terms)
                    delta.setdefault(head.predicate, set()).add(head.terms)

        # --- subsequent iterations: delta-restricted passes -------------- #
        while delta:
            stats.iterations += 1
            new_delta: Dict[str, Set[Tuple]] = {}
            for r in rules:
                relevant_predicates = {
                    literal.predicate
                    for literal in r.body
                    if not literal.negated and literal.predicate in delta
                    and literal.predicate in stratum_idb
                }
                if not relevant_predicates:
                    continue
                for predicate in relevant_predicates:
                    stats.rule_firings += 1
                    planned = (
                        _planned_rule(r, database, delta_predicate=predicate)
                        if reorder else r
                    )
                    produced = evaluate_rule(
                        planned, database, pool,
                        delta_predicate=predicate,
                        delta_rows=delta[predicate],
                    )
                    for head in produced:
                        if database.add_atom(head):
                            stats.derived_facts += 1
                            pool.add_row(head.predicate, head.terms)
                            new_delta.setdefault(head.predicate, set()).add(head.terms)
            delta = new_delta
        return stats


def incremental_insert(program: DatalogProgram, database: Database,
                       new_facts: Iterable[Tuple[str, Tuple]],
                       planner: Optional[str] = None) -> EvaluationStats:
    """Incrementally maintain ``database`` after inserting EDB facts.

    The new facts are added, then a delta-driven pass propagates their
    consequences.  This is only correct for positive programs (no negation),
    which is checked; programs with negation fall back to full recomputation
    by the caller (the WebdamLog engine recomputes intensional relations at
    every stage anyway, so this helper is an optimisation path, exercised by
    the ENGINE benchmark's incremental series).
    """
    for r in program.rules:
        if r.negative_body():
            raise ValueError("incremental_insert only supports positive programs")

    stats = EvaluationStats()
    delta: Dict[str, Set[Tuple]] = {}
    for predicate, row in new_facts:
        if database.add(predicate, row):
            delta.setdefault(predicate, set()).add(tuple(row))
            stats.derived_facts += 1

    reorder = resolve_planner_mode(planner) != "off"
    pool = IndexPool(database)
    while delta:
        stats.iterations += 1
        new_delta: Dict[str, Set[Tuple]] = {}
        for r in program.rules:
            relevant = {
                literal.predicate
                for literal in r.body
                if not literal.negated and literal.predicate in delta
            }
            for predicate in relevant:
                stats.rule_firings += 1
                planned = (
                    _planned_rule(r, database, delta_predicate=predicate)
                    if reorder else r
                )
                produced = evaluate_rule(
                    planned, database, pool,
                    delta_predicate=predicate,
                    delta_rows=delta[predicate],
                )
                for head in produced:
                    if database.add_atom(head):
                        stats.derived_facts += 1
                        pool.add_row(head.predicate, head.terms)
                        new_delta.setdefault(head.predicate, set()).add(head.terms)
        delta = new_delta
    return stats
